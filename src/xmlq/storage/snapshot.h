#ifndef XMLQ_STORAGE_SNAPSHOT_H_
#define XMLQ_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "xmlq/base/file_io.h"
#include "xmlq/base/status.h"
#include "xmlq/storage/region_index.h"
#include "xmlq/storage/succinct_doc.h"
#include "xmlq/storage/tag_dictionary.h"
#include "xmlq/storage/value_index.h"
#include "xmlq/xml/document.h"

namespace xmlq::storage {

/// "xqpack" — the single-file persistent snapshot format (DESIGN.md §6).
///
/// A snapshot serializes every physical representation of one loaded
/// document — DOM arena, succinct structure (balanced parentheses +
/// rank/select directories), content store, region index, value index and
/// tag dictionary — as individually CRC32-checksummed sections behind a
/// magic/version header. Every payload starts on a 64-byte boundary with
/// zero padding in between, so an mmap'd file can back the succinct
/// structures directly (zero-copy open); integers are little-endian host
/// format (the only platforms the engine targets).
///
/// File layout:
///   [SnapshotHeader : 64 B]
///   [SnapshotSection : 32 B] x kSnapshotSectionCount   (the section table)
///   [zero pad to 64] [section 1 payload] [zero pad] [section 2 payload] ...
///
/// The header stores the total file size; a file whose actual size differs
/// (truncation, trailing garbage) is rejected, as is any section whose CRC,
/// bounds, alignment or cross-section invariants fail — always as an error
/// `Status` with the failing offset and section name, never an exception or
/// a crash.

/// First 8 bytes of every snapshot. CR-LF in the magic catches ASCII-mode
/// transfer mangling, the same trick as the PNG signature.
inline constexpr char kSnapshotMagic[8] = {'X', 'Q', 'P', 'A',
                                           'C', 'K', '\r', '\n'};
inline constexpr uint32_t kSnapshotVersion = 1;

struct SnapshotHeader {
  char magic[8];
  uint32_t version = kSnapshotVersion;
  uint32_t section_count = 0;
  uint64_t file_size = 0;   // must equal the actual on-disk size
  uint32_t table_crc = 0;   // CRC32 of the section table
  uint32_t header_crc = 0;  // CRC32 of this header with this field zeroed
  uint8_t reserved[32] = {};
};
static_assert(sizeof(SnapshotHeader) == 64, "on-disk layout");

/// One section-table entry.
struct SnapshotSection {
  uint32_t id = 0;        // SectionId, == table index + 1
  uint32_t flags = 0;     // reserved, must be 0
  uint64_t offset = 0;    // from file start; 64-byte aligned
  uint64_t size = 0;      // payload bytes (excluding padding)
  uint32_t crc = 0;       // CRC32 of the payload
  uint32_t reserved = 0;  // must be 0
};
static_assert(sizeof(SnapshotSection) == 32, "on-disk layout");

/// Section ids in canonical on-disk order. The kNodeKinds/kNodeNames arrays
/// serve both the DOM and the succinct document (pre-order ranks == NodeIds,
/// so the streams are byte-identical and are stored once).
enum class SectionId : uint32_t {
  kNameOffsets = 1,  // u32[name_count+1] fence into kNameChars
  kNameChars,        // concatenated interned names, id order
  kNodeKinds,        // u8[n] NodeKind per node / pre-order rank
  kNodeNames,        // u32[n] NameId per node / pre-order rank
  kParents,          // u32[n]
  kFirstChildren,    // u32[n]
  kNextSiblings,     // u32[n]
  kFirstAttrs,       // u32[n]
  kTextOffsets,      // u32[n] into kTextBuffer
  kTextLengths,      // u32[n]
  kTextBuffer,       // char[]
  kBpWords,          // u64[ceil(2n/64)] balanced-parentheses bits
  kBpSuperRanks,     // u64[] rank directory over kBpWords
  kBpWordDir,        // ExcessBlock[] per-word excess directory
  kBpSuperDir,       // ExcessBlock[] per-superblock excess directory
  kHasContentWords,  // u64[ceil(n/64)] content-bearing node bitmap
  kHasContentSuperRanks,  // u64[] rank directory over kHasContentWords
  kContentOffsets,        // u64[] start offset per content entry
  kContentBuffer,         // char[] concatenated content strings
  kRegionEnds,            // u32[n] subtree-end per NodeId
  kRegionLevels,          // u32[n] depth per NodeId
  kRegionElements,        // Region[] document order
  kRegionAttributes,      // Region[] document order
  kRegionElementStreams,  // Region[] grouped per tag name
  kRegionElementOffsets,  // u32[name_count+1] fence
  kRegionAttributeStreams,
  kRegionAttributeOffsets,
  kValueElementEntries,  // ValueIndex::PackedEntry[]
  kValueElementOffsets,  // u32[name_count+1] fence
  kValueElementNumeric,  // ValueIndex::NumericEntry[]
  kValueElementNumericOffsets,
  kValueAttributeEntries,
  kValueAttributeOffsets,
  kValueAttributeNumeric,
  kValueAttributeNumericOffsets,
  kTagElementCounts,    // u32[<= name_count]
  kTagAttributeCounts,  // u32[<= name_count]
};
inline constexpr uint32_t kSnapshotSectionCount = 37;

/// Human-readable section name for error messages and stats ("node_kinds",
/// "bp_words", ...); "?" for unknown ids.
const char* SnapshotSectionName(uint32_t id);

/// How to open a snapshot file.
enum class SnapshotOpenMode {
  kCopy,  // read the whole file into an aligned heap buffer (safe path)
  kMap,   // mmap zero-copy; succinct structures point into the mapping
};

/// Layout of one section as written/validated (for stats & tests).
struct SnapshotSectionInfo {
  uint32_t id = 0;
  const char* name = "?";
  uint64_t offset = 0;
  uint64_t size = 0;
};

struct SnapshotWriteInfo {
  uint64_t file_size = 0;
  /// CRC-32C of the entire on-disk image — what the catalog manifest
  /// records so recovery can verify a snapshot byte-for-byte before
  /// serving it.
  uint32_t file_crc = 0;
  std::vector<SnapshotSectionInfo> sections;
};

/// Keeps the snapshot bytes (heap copy or mmap) alive for the components
/// borrowing from them, and remembers the layout for reporting. `path` is
/// the file the bytes came from ("" for in-memory images) — the integrity
/// scrubber uses it to re-read and quarantine the on-disk copy.
class SnapshotBacking {
 public:
  SnapshotBacking(FileBytes bytes, SnapshotOpenMode mode,
                  std::vector<SnapshotSectionInfo> sections,
                  std::string path = {})
      : bytes_(std::move(bytes)), mode_(mode),
        sections_(std::move(sections)), path_(std::move(path)) {}

  SnapshotOpenMode mode() const { return mode_; }
  uint64_t file_size() const { return bytes_.size(); }
  const std::vector<SnapshotSectionInfo>& sections() const {
    return sections_;
  }
  const FileBytes& bytes() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  FileBytes bytes_;
  SnapshotOpenMode mode_;
  std::vector<SnapshotSectionInfo> sections_;
  std::string path_;
};

/// A fully opened snapshot: every component of a loaded document plus the
/// backing bytes they (partially) borrow from. The backing must outlive all
/// components — callers keep the unique_ptrs together (api::Database does).
struct OpenedSnapshot {
  std::unique_ptr<xml::Document> dom;
  std::unique_ptr<SuccinctDocument> succinct;
  std::unique_ptr<RegionIndex> regions;
  std::unique_ptr<ValueIndex> values;
  std::unique_ptr<TagDictionary> tags;
  std::unique_ptr<SnapshotBacking> backing;
};

/// Serializes the components of one document to `path` (atomic write: temp
/// file + rename). Fault site: "store.snapshot.write".
Result<SnapshotWriteInfo> WriteSnapshot(const std::string& path,
                                        const xml::Document& doc,
                                        const SuccinctDocument& succinct,
                                        const RegionIndex& regions,
                                        const ValueIndex& values,
                                        const TagDictionary& tags);

/// Opens a snapshot file. kMap points the succinct structures straight at
/// the mapping; kCopy reads the file into an aligned heap buffer first.
/// Corruption (bad magic/version/CRC, truncation, trailing garbage, invalid
/// cross-section invariants) is reported as kParseError carrying the file
/// path, the failing byte offset and the section name. Fault sites:
/// "store.snapshot.map", "store.snapshot.verify".
Result<OpenedSnapshot> OpenSnapshot(const std::string& path,
                                    SnapshotOpenMode mode);

/// The validation + component-construction core of OpenSnapshot, exposed so
/// tests can feed in-memory (mutated) images without touching disk. `path`
/// (when non-empty) is recorded on the backing and prefixed onto every
/// corruption error.
Result<OpenedSnapshot> OpenSnapshotFromBytes(FileBytes bytes,
                                             SnapshotOpenMode mode,
                                             std::string path = {});

/// Re-validates a snapshot image without constructing components: header,
/// section table, padding and every section CRC; `deep` additionally runs
/// the full structural validation (the integrity scrubber's slow pass).
/// Returns the same positioned kParseError Status family as OpenSnapshot.
Status VerifySnapshotImage(std::span<const char> bytes, bool deep,
                           const std::string& path = {});

/// One per-section checksum work item from SnapshotSectionChecks: the
/// payload bounds (already validated against the file) and the stored CRC.
struct SectionCheck {
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t crc = 0;      // stored section checksum
  uint32_t id = 0;       // SectionId, for the error message
};

/// The structure half of the checksum verification pass: validates header,
/// section table and padding (including the "store.snapshot.verify" fault
/// site — the caller must not check it again) and returns the per-section
/// CRC work items in file order. VerifySectionCheck then verifies one item.
/// Running SnapshotSectionChecks + every VerifySectionCheck (taking the
/// first failure in section order) is byte-for-byte equivalent to
/// VerifySnapshotImage(bytes, /*deep=*/false, path) — the split exists so a
/// parallel scrubber can fan the section CRCs out over worker lanes.
Result<std::vector<SectionCheck>> SnapshotSectionChecks(
    std::span<const char> bytes, const std::string& path = {});

Status VerifySectionCheck(std::span<const char> bytes,
                          const SectionCheck& check,
                          const std::string& path = {});

}  // namespace xmlq::storage

#endif  // XMLQ_STORAGE_SNAPSHOT_H_
