#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "xmlq/base/crc32.h"
#include "xmlq/base/fault_injector.h"
#include "xmlq/storage/snapshot.h"

namespace xmlq::storage {

namespace {

constexpr uint64_t kSectionAlign = 64;

bool IsContentKind(uint8_t kind) {
  const auto k = static_cast<xml::NodeKind>(kind);
  return k == xml::NodeKind::kText || k == xml::NodeKind::kAttribute ||
         k == xml::NodeKind::kComment ||
         k == xml::NodeKind::kProcessingInstruction;
}

/// Every corruption report carries the failing byte offset and the section
/// (or structure) name, so operators can pinpoint the damage with xxd.
Status Corrupt(uint64_t offset, std::string_view where, std::string detail) {
  return Status::ParseError("xqpack: " + std::string(where) + " at offset " +
                            std::to_string(offset) + ": " +
                            std::move(detail));
}

/// The parsed + structurally validated file skeleton.
struct Layout {
  const char* base = nullptr;
  uint64_t file_size = 0;
  SnapshotSection table[kSnapshotSectionCount];

  const SnapshotSection& Entry(SectionId id) const {
    return table[static_cast<uint32_t>(id) - 1];
  }
  std::string_view Payload(SectionId id) const {
    const SnapshotSection& s = Entry(id);
    return {base + s.offset, s.size};
  }
  Status Err(SectionId id, std::string detail) const {
    const SnapshotSection& s = Entry(id);
    return Corrupt(s.offset, SnapshotSectionName(s.id), std::move(detail));
  }
  template <typename T>
  std::span<const T> Typed(SectionId id) const {
    const std::string_view p = Payload(id);
    return {reinterpret_cast<const T*>(p.data()), p.size() / sizeof(T)};
  }
  /// Element count after ElementSized() validated divisibility.
  Status ElementSized(SectionId id, size_t elem_size) const {
    if (Entry(id).size % elem_size != 0) {
      return Err(id, "size " + std::to_string(Entry(id).size) +
                         " is not a multiple of the " +
                         std::to_string(elem_size) + "-byte element");
    }
    return Status::Ok();
  }
};

/// Header + section-table + padding validation; fills `layout`. Does NOT
/// verify the per-section payload CRCs — ParseLayout adds those; the
/// parallel scrubber fans them out instead (SnapshotSectionChecks).
Status ParseLayoutStructure(std::span<const char> bytes, Layout* layout) {
  layout->base = bytes.data();
  if (bytes.size() < sizeof(SnapshotHeader)) {
    return Corrupt(0, "header",
                   "file truncated: " + std::to_string(bytes.size()) +
                       " bytes, need at least " +
                       std::to_string(sizeof(SnapshotHeader)));
  }
  SnapshotHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (std::memcmp(header.magic, kSnapshotMagic, sizeof(header.magic)) != 0) {
    return Corrupt(0, "header", "bad magic (not an xqpack snapshot)");
  }
  SnapshotHeader crc_input = header;
  crc_input.header_crc = 0;
  const uint32_t computed_crc = Crc32(&crc_input, sizeof(crc_input));
  if (computed_crc != header.header_crc) {
    return Corrupt(0, "header",
                   "header checksum mismatch (stored " +
                       std::to_string(header.header_crc) + ", computed " +
                       std::to_string(computed_crc) + ")");
  }
  if (header.version != kSnapshotVersion) {
    return Corrupt(0, "header",
                   "unsupported version " + std::to_string(header.version) +
                       " (expected " + std::to_string(kSnapshotVersion) +
                       ")");
  }
  if (header.file_size != bytes.size()) {
    return Corrupt(0, "header",
                   "file size mismatch: header says " +
                       std::to_string(header.file_size) + ", file has " +
                       std::to_string(bytes.size()) +
                       " bytes (truncated or trailing garbage)");
  }
  if (header.section_count != kSnapshotSectionCount) {
    return Corrupt(0, "header",
                   "unexpected section count " +
                       std::to_string(header.section_count) + " (expected " +
                       std::to_string(kSnapshotSectionCount) + ")");
  }
  layout->file_size = header.file_size;

  const uint64_t table_offset = sizeof(SnapshotHeader);
  const uint64_t table_size =
      kSnapshotSectionCount * sizeof(SnapshotSection);
  if (table_offset + table_size > bytes.size()) {
    return Corrupt(table_offset, "section_table",
                   "file truncated inside the section table");
  }
  std::memcpy(layout->table, bytes.data() + table_offset, table_size);
  const uint32_t table_crc = Crc32(bytes.data() + table_offset, table_size);
  if (table_crc != header.table_crc) {
    return Corrupt(table_offset, "section_table",
                   "section table checksum mismatch (stored " +
                       std::to_string(header.table_crc) + ", computed " +
                       std::to_string(table_crc) + ")");
  }

  uint64_t prev_end = table_offset + table_size;
  for (uint32_t i = 0; i < kSnapshotSectionCount; ++i) {
    const SnapshotSection& s = layout->table[i];
    const char* name = SnapshotSectionName(i + 1);
    if (s.id != i + 1) {
      return Corrupt(table_offset + i * sizeof(SnapshotSection), name,
                     "section table entry " + std::to_string(i) +
                         " has id " + std::to_string(s.id) + ", expected " +
                         std::to_string(i + 1));
    }
    if (s.flags != 0 || s.reserved != 0) {
      return Corrupt(s.offset, name, "reserved section fields are nonzero");
    }
    if (s.offset % kSectionAlign != 0) {
      return Corrupt(s.offset, name, "section payload is not 64-byte aligned");
    }
    if (s.offset < prev_end || s.offset > layout->file_size ||
        s.size > layout->file_size - s.offset) {
      return Corrupt(s.offset, name,
                     "section bounds [" + std::to_string(s.offset) + ", +" +
                         std::to_string(s.size) +
                         ") overlap a neighbor or exceed the file");
    }
    // Inter-section padding must be zero (no smuggled bytes).
    for (uint64_t b = prev_end; b < s.offset; ++b) {
      if (bytes[b] != 0) {
        return Corrupt(b, name, "nonzero padding byte before section");
      }
    }
    prev_end = s.offset + s.size;
  }
  for (uint64_t b = prev_end; b < layout->file_size; ++b) {
    if (bytes[b] != 0) {
      return Corrupt(b, "trailer", "nonzero padding byte after last section");
    }
  }

  if (XMLQ_FAULT("store.snapshot.verify")) {
    return Corrupt(0, "header", "injected verification failure");
  }
  return Status::Ok();
}

Status CheckSectionCrc(std::span<const char> bytes, uint64_t offset,
                       uint64_t size, uint32_t stored, uint32_t id) {
  const uint32_t crc = Crc32(bytes.data() + offset, size);
  if (crc != stored) {
    return Corrupt(offset, SnapshotSectionName(id),
                   "section checksum mismatch (stored " +
                       std::to_string(stored) + ", computed " +
                       std::to_string(crc) + ")");
  }
  return Status::Ok();
}

/// Full checksum validation: structure, then every section CRC in order.
Status ParseLayout(std::span<const char> bytes, Layout* layout) {
  XMLQ_RETURN_IF_ERROR(ParseLayoutStructure(bytes, layout));
  for (uint32_t i = 0; i < kSnapshotSectionCount; ++i) {
    const SnapshotSection& s = layout->table[i];
    XMLQ_RETURN_IF_ERROR(CheckSectionCrc(bytes, s.offset, s.size, s.crc,
                                         s.id));
  }
  return Status::Ok();
}

/// Recomputes the BP word/superblock excess directories and the rank
/// directory from the raw bits and compares them with the stored sections —
/// after this pass, excess search and select over the mapped sections are
/// memory-safe even against a crafted file that beat the CRCs.
Status VerifyBalancedParens(const Layout& layout, size_t node_count) {
  const size_t bits = 2 * node_count;
  const auto words = layout.Typed<uint64_t>(SectionId::kBpWords);
  const auto ranks = layout.Typed<uint64_t>(SectionId::kBpSuperRanks);
  const auto word_dir =
      layout.Typed<BalancedParens::ExcessBlock>(SectionId::kBpWordDir);
  const auto super_dir =
      layout.Typed<BalancedParens::ExcessBlock>(SectionId::kBpSuperDir);
  if (words.size() != BitVector::ExpectedWords(bits)) {
    return layout.Err(SectionId::kBpWords, "word count mismatch");
  }
  if (ranks.size() != BitVector::ExpectedSuperRanks(bits)) {
    return layout.Err(SectionId::kBpSuperRanks, "rank directory size mismatch");
  }
  if (word_dir.size() != BalancedParens::ExpectedWordDir(bits)) {
    return layout.Err(SectionId::kBpWordDir, "word directory size mismatch");
  }
  if (super_dir.size() != BalancedParens::ExpectedSuperDir(bits)) {
    return layout.Err(SectionId::kBpSuperDir,
                      "superblock directory size mismatch");
  }

  uint64_t ones = 0;
  int64_t excess = 0;  // absolute excess before the current word
  int32_t super_run = 0;
  int32_t super_min = std::numeric_limits<int32_t>::max();
  int32_t super_max = std::numeric_limits<int32_t>::min();
  for (size_t w = 0; w < words.size(); ++w) {
    if (w % BitVector::kWordsPerSuper == 0 &&
        ranks[w / BitVector::kWordsPerSuper] != ones) {
      return layout.Err(SectionId::kBpSuperRanks,
                        "rank directory entry " +
                            std::to_string(w / BitVector::kWordsPerSuper) +
                            " disagrees with the bits");
    }
    const size_t valid = std::min<size_t>(64, bits - w * 64);
    const uint64_t word = words[w];
    if (valid < 64 && (word >> valid) != 0) {
      return layout.Err(SectionId::kBpWords,
                        "nonzero tail bits past the sequence end");
    }
    int32_t run = 0;
    int32_t mn = std::numeric_limits<int32_t>::max();
    int32_t mx = std::numeric_limits<int32_t>::min();
    for (size_t b = 0; b < valid; ++b) {
      run += ((word >> b) & 1) ? 1 : -1;
      mn = std::min(mn, run);
      mx = std::max(mx, run);
    }
    const BalancedParens::ExcessBlock& stored = word_dir[w];
    if (stored.total != run || stored.min != mn || stored.max != mx) {
      return layout.Err(SectionId::kBpWordDir,
                        "excess directory entry " + std::to_string(w) +
                            " disagrees with the bits");
    }
    if (excess + mn < 0) {
      return layout.Err(SectionId::kBpWords,
                        "unbalanced parentheses (excess drops below zero in "
                        "word " +
                            std::to_string(w) + ")");
    }
    super_min = std::min(super_min, super_run + mn);
    super_max = std::max(super_max, super_run + mx);
    super_run += run;
    excess += run;
    ones += static_cast<uint64_t>(std::popcount(word));
    const bool super_ends = (w + 1) % BalancedParens::kWordsPerSuper == 0 ||
                            w + 1 == words.size();
    if (super_ends) {
      const size_t s = w / BalancedParens::kWordsPerSuper;
      const BalancedParens::ExcessBlock& sb = super_dir[s];
      if (sb.total != super_run || sb.min != super_min ||
          sb.max != super_max) {
        return layout.Err(SectionId::kBpSuperDir,
                          "superblock directory entry " + std::to_string(s) +
                              " disagrees with the bits");
      }
      super_run = 0;
      super_min = std::numeric_limits<int32_t>::max();
      super_max = std::numeric_limits<int32_t>::min();
    }
  }
  if (ranks[ranks.size() - 1] != ones) {
    return layout.Err(SectionId::kBpSuperRanks,
                      "rank directory total disagrees with the bits");
  }
  if (excess != 0) {
    return layout.Err(SectionId::kBpWords,
                      "unbalanced parentheses (final excess " +
                          std::to_string(excess) + ")");
  }
  if (ones != node_count) {
    return layout.Err(SectionId::kBpWords,
                      "open-paren count " + std::to_string(ones) +
                          " does not match node count " +
                          std::to_string(node_count));
  }
  return Status::Ok();
}

/// Verifies the content-bearing bitmap against the node kinds and its rank
/// directory, and the content offsets against the buffer.
Status VerifyContent(const Layout& layout, std::span<const uint8_t> kinds) {
  const size_t n = kinds.size();
  const auto words = layout.Typed<uint64_t>(SectionId::kHasContentWords);
  const auto ranks = layout.Typed<uint64_t>(SectionId::kHasContentSuperRanks);
  const auto offsets = layout.Typed<uint64_t>(SectionId::kContentOffsets);
  const std::string_view buffer = layout.Payload(SectionId::kContentBuffer);
  if (words.size() != BitVector::ExpectedWords(n)) {
    return layout.Err(SectionId::kHasContentWords, "word count mismatch");
  }
  if (ranks.size() != BitVector::ExpectedSuperRanks(n)) {
    return layout.Err(SectionId::kHasContentSuperRanks,
                      "rank directory size mismatch");
  }
  uint64_t ones = 0;
  for (size_t w = 0; w < words.size(); ++w) {
    if (w % BitVector::kWordsPerSuper == 0 &&
        ranks[w / BitVector::kWordsPerSuper] != ones) {
      return layout.Err(SectionId::kHasContentSuperRanks,
                        "rank directory entry " +
                            std::to_string(w / BitVector::kWordsPerSuper) +
                            " disagrees with the bitmap");
    }
    const size_t valid = std::min<size_t>(64, n - w * 64);
    uint64_t expected = 0;
    for (size_t b = 0; b < valid; ++b) {
      if (IsContentKind(kinds[w * 64 + b])) expected |= uint64_t{1} << b;
    }
    if (words[w] != expected) {
      return layout.Err(SectionId::kHasContentWords,
                        "bitmap word " + std::to_string(w) +
                            " disagrees with the node kinds");
    }
    ones += static_cast<uint64_t>(std::popcount(words[w]));
  }
  if (ranks[ranks.size() - 1] != ones) {
    return layout.Err(SectionId::kHasContentSuperRanks,
                      "rank directory total disagrees with the bitmap");
  }
  if (offsets.size() != ones) {
    return layout.Err(SectionId::kContentOffsets,
                      "entry count " + std::to_string(offsets.size()) +
                          " does not match content-bearing node count " +
                          std::to_string(ones));
  }
  uint64_t prev = 0;
  for (size_t i = 0; i < offsets.size(); ++i) {
    if (offsets[i] < prev || offsets[i] > buffer.size()) {
      return layout.Err(SectionId::kContentOffsets,
                        "offset " + std::to_string(i) +
                            " is not monotone within the content buffer");
    }
    prev = offsets[i];
  }
  return Status::Ok();
}

/// Validates a u32 fence array: size name_count+1, monotone, final == total.
Status VerifyFence(const Layout& layout, SectionId id, size_t name_count,
                   uint64_t total) {
  const auto fence = layout.Typed<uint32_t>(id);
  if (fence.size() != name_count + 1) {
    return layout.Err(id, "fence has " + std::to_string(fence.size()) +
                              " entries, expected name count + 1 = " +
                              std::to_string(name_count + 1));
  }
  uint32_t prev = 0;
  for (const uint32_t f : fence) {
    if (f < prev) return layout.Err(id, "fence is not monotone");
    prev = f;
  }
  if (fence[0] != 0 || fence[name_count] != total) {
    return layout.Err(id, "fence does not cover exactly " +
                              std::to_string(total) + " entries");
  }
  return Status::Ok();
}

/// Validates one region array: every entry must be the canonical region of
/// its start node (pinned to the ends/levels/names arrays), with the right
/// node kind — so stream scans and joins can never index out of bounds.
Status VerifyRegions(const Layout& layout, SectionId id,
                     std::span<const Region> entries,
                     std::span<const uint8_t> kinds,
                     std::span<const xml::NameId> names,
                     std::span<const uint32_t> ends,
                     std::span<const uint32_t> levels,
                     xml::NodeKind want_kind) {
  const size_t n = kinds.size();
  for (size_t i = 0; i < entries.size(); ++i) {
    const Region& r = entries[i];
    const bool attr = want_kind == xml::NodeKind::kAttribute;
    if (r.start >= n ||
        static_cast<xml::NodeKind>(kinds[r.start]) != want_kind ||
        r.end != (attr ? r.start : ends[r.start]) ||
        r.level != levels[r.start] || r.name != names[r.start]) {
      return layout.Err(id, "region " + std::to_string(i) +
                                " does not describe a valid " +
                                std::string(xml::NodeKindName(want_kind)) +
                                " node");
    }
  }
  return Status::Ok();
}

/// Prefixes the file path onto a corruption Status so operators see *which*
/// snapshot is damaged, not just where inside it.
Status AnnotatePath(Status status, const std::string& path) {
  if (status.ok() || path.empty()) return status;
  return Status(status.code(), "snapshot \"" + path + "\": " +
                                   status.message());
}

Result<OpenedSnapshot> OpenSnapshotFromBytesImpl(FileBytes bytes,
                                                 SnapshotOpenMode mode,
                                                 const std::string& path) {
  Layout layout;
  XMLQ_RETURN_IF_ERROR(ParseLayout(bytes.bytes(), &layout));

  // -- Name pool ----------------------------------------------------------
  XMLQ_RETURN_IF_ERROR(
      layout.ElementSized(SectionId::kNameOffsets, sizeof(uint32_t)));
  const auto name_offsets = layout.Typed<uint32_t>(SectionId::kNameOffsets);
  const std::string_view name_chars = layout.Payload(SectionId::kNameChars);
  if (name_offsets.empty()) {
    return layout.Err(SectionId::kNameOffsets, "missing fence");
  }
  const size_t name_count = name_offsets.size() - 1;
  uint32_t prev_off = 0;
  for (const uint32_t off : name_offsets) {
    if (off < prev_off || off > name_chars.size()) {
      return layout.Err(SectionId::kNameOffsets, "fence is not monotone");
    }
    prev_off = off;
  }
  if (name_offsets[0] != 0 || name_offsets[name_count] != name_chars.size()) {
    return layout.Err(SectionId::kNameOffsets,
                      "fence does not cover the name characters");
  }

  // -- Node arrays --------------------------------------------------------
  const auto kinds = layout.Typed<uint8_t>(SectionId::kNodeKinds);
  const size_t n = kinds.size();
  if (n == 0) {
    return layout.Err(SectionId::kNodeKinds, "empty document");
  }
  if (n > std::numeric_limits<uint32_t>::max() / 2) {
    return layout.Err(SectionId::kNodeKinds, "node count overflows NodeId");
  }
  for (const SectionId id :
       {SectionId::kNodeNames, SectionId::kParents, SectionId::kFirstChildren,
        SectionId::kNextSiblings, SectionId::kFirstAttrs,
        SectionId::kTextOffsets, SectionId::kTextLengths}) {
    XMLQ_RETURN_IF_ERROR(layout.ElementSized(id, sizeof(uint32_t)));
    if (layout.Entry(id).size != n * sizeof(uint32_t)) {
      return layout.Err(id, "array length does not match the node count " +
                                std::to_string(n));
    }
  }
  const auto names = layout.Typed<xml::NameId>(SectionId::kNodeNames);
  const auto parents = layout.Typed<xml::NodeId>(SectionId::kParents);
  const auto first_children =
      layout.Typed<xml::NodeId>(SectionId::kFirstChildren);
  const auto next_siblings =
      layout.Typed<xml::NodeId>(SectionId::kNextSiblings);
  const auto first_attrs = layout.Typed<xml::NodeId>(SectionId::kFirstAttrs);
  const auto text_offsets = layout.Typed<uint32_t>(SectionId::kTextOffsets);
  const auto text_lengths = layout.Typed<uint32_t>(SectionId::kTextLengths);
  const std::string_view text_buffer = layout.Payload(SectionId::kTextBuffer);

  if (static_cast<xml::NodeKind>(kinds[0]) != xml::NodeKind::kDocument ||
      parents[0] != xml::kNullNode) {
    return layout.Err(SectionId::kNodeKinds, "node 0 is not a document node");
  }
  for (size_t i = 0; i < n; ++i) {
    if (kinds[i] >
        static_cast<uint8_t>(xml::NodeKind::kProcessingInstruction)) {
      return layout.Err(SectionId::kNodeKinds,
                        "node " + std::to_string(i) + " has invalid kind " +
                            std::to_string(kinds[i]));
    }
    if (names[i] != xml::kInvalidName && names[i] >= name_count) {
      return layout.Err(SectionId::kNodeNames,
                        "node " + std::to_string(i) +
                            " references name id past the pool");
    }
    if (i > 0 && parents[i] >= i) {
      return layout.Err(SectionId::kParents,
                        "node " + std::to_string(i) +
                            " has parent at or after itself");
    }
    if ((first_children[i] != xml::kNullNode && first_children[i] >= n) ||
        (next_siblings[i] != xml::kNullNode && next_siblings[i] >= n) ||
        (first_attrs[i] != xml::kNullNode && first_attrs[i] >= n)) {
      return layout.Err(SectionId::kFirstChildren,
                        "node " + std::to_string(i) +
                            " has a child/sibling/attribute link past the "
                            "node count");
    }
    if (static_cast<uint64_t>(text_offsets[i]) + text_lengths[i] >
        text_buffer.size()) {
      return layout.Err(SectionId::kTextOffsets,
                        "node " + std::to_string(i) +
                            " text slice exceeds the text buffer");
    }
  }

  // -- Succinct structure -------------------------------------------------
  XMLQ_RETURN_IF_ERROR(
      layout.ElementSized(SectionId::kBpWords, sizeof(uint64_t)));
  XMLQ_RETURN_IF_ERROR(
      layout.ElementSized(SectionId::kBpSuperRanks, sizeof(uint64_t)));
  XMLQ_RETURN_IF_ERROR(layout.ElementSized(
      SectionId::kBpWordDir, sizeof(BalancedParens::ExcessBlock)));
  XMLQ_RETURN_IF_ERROR(layout.ElementSized(
      SectionId::kBpSuperDir, sizeof(BalancedParens::ExcessBlock)));
  XMLQ_RETURN_IF_ERROR(VerifyBalancedParens(layout, n));
  XMLQ_RETURN_IF_ERROR(
      layout.ElementSized(SectionId::kHasContentWords, sizeof(uint64_t)));
  XMLQ_RETURN_IF_ERROR(layout.ElementSized(SectionId::kHasContentSuperRanks,
                                           sizeof(uint64_t)));
  XMLQ_RETURN_IF_ERROR(
      layout.ElementSized(SectionId::kContentOffsets, sizeof(uint64_t)));
  XMLQ_RETURN_IF_ERROR(VerifyContent(layout, kinds));

  // -- Region index -------------------------------------------------------
  for (const SectionId id : {SectionId::kRegionEnds, SectionId::kRegionLevels}) {
    XMLQ_RETURN_IF_ERROR(layout.ElementSized(id, sizeof(uint32_t)));
    if (layout.Entry(id).size != n * sizeof(uint32_t)) {
      return layout.Err(id, "array length does not match the node count");
    }
  }
  const auto ends = layout.Typed<uint32_t>(SectionId::kRegionEnds);
  const auto levels = layout.Typed<uint32_t>(SectionId::kRegionLevels);
  for (size_t i = 0; i < n; ++i) {
    if (ends[i] < i || ends[i] >= n) {
      return layout.Err(SectionId::kRegionEnds,
                        "subtree end of node " + std::to_string(i) +
                            " is out of range");
    }
    const uint32_t expected_level =
        i == 0 ? 0 : levels[parents[i]] + 1;  // parents[i] < i, validated
    if (levels[i] != expected_level) {
      return layout.Err(SectionId::kRegionLevels,
                        "level of node " + std::to_string(i) +
                            " disagrees with its parent");
    }
  }
  size_t element_nodes = 0;
  size_t attribute_nodes = 0;
  for (size_t i = 0; i < n; ++i) {
    if (static_cast<xml::NodeKind>(kinds[i]) == xml::NodeKind::kElement) {
      ++element_nodes;
    } else if (static_cast<xml::NodeKind>(kinds[i]) ==
               xml::NodeKind::kAttribute) {
      ++attribute_nodes;
    }
  }
  for (const SectionId id :
       {SectionId::kRegionElements, SectionId::kRegionAttributes,
        SectionId::kRegionElementStreams,
        SectionId::kRegionAttributeStreams}) {
    XMLQ_RETURN_IF_ERROR(layout.ElementSized(id, sizeof(Region)));
  }
  const auto region_elements = layout.Typed<Region>(SectionId::kRegionElements);
  const auto region_attributes =
      layout.Typed<Region>(SectionId::kRegionAttributes);
  const auto element_streams =
      layout.Typed<Region>(SectionId::kRegionElementStreams);
  const auto attribute_streams =
      layout.Typed<Region>(SectionId::kRegionAttributeStreams);
  if (region_elements.size() != element_nodes ||
      element_streams.size() != element_nodes) {
    return layout.Err(SectionId::kRegionElements,
                      "element region count does not match the node kinds");
  }
  if (region_attributes.size() != attribute_nodes ||
      attribute_streams.size() != attribute_nodes) {
    return layout.Err(SectionId::kRegionAttributes,
                      "attribute region count does not match the node kinds");
  }
  XMLQ_RETURN_IF_ERROR(VerifyRegions(layout, SectionId::kRegionElements,
                                     region_elements, kinds, names, ends,
                                     levels, xml::NodeKind::kElement));
  XMLQ_RETURN_IF_ERROR(VerifyRegions(layout, SectionId::kRegionAttributes,
                                     region_attributes, kinds, names, ends,
                                     levels, xml::NodeKind::kAttribute));
  XMLQ_RETURN_IF_ERROR(VerifyRegions(layout, SectionId::kRegionElementStreams,
                                     element_streams, kinds, names, ends,
                                     levels, xml::NodeKind::kElement));
  XMLQ_RETURN_IF_ERROR(VerifyRegions(
      layout, SectionId::kRegionAttributeStreams, attribute_streams, kinds,
      names, ends, levels, xml::NodeKind::kAttribute));
  XMLQ_RETURN_IF_ERROR(layout.ElementSized(SectionId::kRegionElementOffsets,
                                           sizeof(uint32_t)));
  XMLQ_RETURN_IF_ERROR(layout.ElementSized(SectionId::kRegionAttributeOffsets,
                                           sizeof(uint32_t)));
  XMLQ_RETURN_IF_ERROR(VerifyFence(layout, SectionId::kRegionElementOffsets,
                                   name_count, element_streams.size()));
  XMLQ_RETURN_IF_ERROR(VerifyFence(layout, SectionId::kRegionAttributeOffsets,
                                   name_count, attribute_streams.size()));

  // -- Value index --------------------------------------------------------
  const SectionId value_entry_ids[2] = {SectionId::kValueElementEntries,
                                        SectionId::kValueAttributeEntries};
  const SectionId value_offset_ids[2] = {SectionId::kValueElementOffsets,
                                         SectionId::kValueAttributeOffsets};
  const SectionId value_numeric_ids[2] = {SectionId::kValueElementNumeric,
                                          SectionId::kValueAttributeNumeric};
  const SectionId value_numeric_offset_ids[2] = {
      SectionId::kValueElementNumericOffsets,
      SectionId::kValueAttributeNumericOffsets};
  ValueIndex::FamilyParts families[2];
  for (int f = 0; f < 2; ++f) {
    XMLQ_RETURN_IF_ERROR(layout.ElementSized(
        value_entry_ids[f], sizeof(ValueIndex::PackedEntry)));
    XMLQ_RETURN_IF_ERROR(
        layout.ElementSized(value_offset_ids[f], sizeof(uint32_t)));
    XMLQ_RETURN_IF_ERROR(layout.ElementSized(
        value_numeric_ids[f], sizeof(ValueIndex::NumericEntry)));
    XMLQ_RETURN_IF_ERROR(
        layout.ElementSized(value_numeric_offset_ids[f], sizeof(uint32_t)));
    const auto entries =
        layout.Typed<ValueIndex::PackedEntry>(value_entry_ids[f]);
    const auto numeric =
        layout.Typed<ValueIndex::NumericEntry>(value_numeric_ids[f]);
    XMLQ_RETURN_IF_ERROR(VerifyFence(layout, value_offset_ids[f], name_count,
                                     entries.size()));
    XMLQ_RETURN_IF_ERROR(VerifyFence(layout, value_numeric_offset_ids[f],
                                     name_count, numeric.size()));
    for (size_t i = 0; i < entries.size(); ++i) {
      const ValueIndex::PackedEntry& e = entries[i];
      if (static_cast<uint64_t>(e.text_offset) + e.length >
              text_buffer.size() ||
          e.node >= n) {
        return layout.Err(value_entry_ids[f],
                          "entry " + std::to_string(i) +
                              " points outside the text buffer or node set");
      }
    }
    for (size_t i = 0; i < numeric.size(); ++i) {
      if (numeric[i].node >= n) {
        return layout.Err(value_numeric_ids[f],
                          "numeric entry " + std::to_string(i) +
                              " references a node past the node count");
      }
    }
    families[f] = ValueIndex::FamilyParts{
        entries, layout.Typed<uint32_t>(value_offset_ids[f]), numeric,
        layout.Typed<uint32_t>(value_numeric_offset_ids[f])};
  }

  // -- Tag dictionary -----------------------------------------------------
  XMLQ_RETURN_IF_ERROR(
      layout.ElementSized(SectionId::kTagElementCounts, sizeof(uint32_t)));
  XMLQ_RETURN_IF_ERROR(
      layout.ElementSized(SectionId::kTagAttributeCounts, sizeof(uint32_t)));
  const auto tag_elements = layout.Typed<uint32_t>(SectionId::kTagElementCounts);
  const auto tag_attributes =
      layout.Typed<uint32_t>(SectionId::kTagAttributeCounts);
  if (tag_elements.size() > name_count ||
      tag_attributes.size() > name_count) {
    return layout.Err(SectionId::kTagElementCounts,
                      "tag count array longer than the name pool");
  }

  // -- Construction -------------------------------------------------------
  auto pool = std::make_shared<xml::NamePool>();
  for (size_t i = 0; i < name_count; ++i) {
    const std::string_view name = name_chars.substr(
        name_offsets[i], name_offsets[i + 1] - name_offsets[i]);
    if (pool->Intern(name) != i) {
      return layout.Err(SectionId::kNameChars,
                        "duplicate interned name at id " + std::to_string(i));
    }
  }

  auto dom = std::make_unique<xml::Document>(xml::Document::FromParts(
      pool, kinds, names, parents, first_children, next_siblings, first_attrs,
      text_offsets, text_lengths, text_buffer));
  if (!dom->IsPreorder()) {
    return layout.Err(SectionId::kFirstChildren,
                      "node links do not form a consistent pre-order tree");
  }

  BitVector bp_bits =
      BitVector::FromExternal(layout.Typed<uint64_t>(SectionId::kBpWords),
                              2 * n,
                              layout.Typed<uint64_t>(SectionId::kBpSuperRanks),
                              n);
  BalancedParens bp = BalancedParens::FromExternal(
      std::move(bp_bits),
      layout.Typed<BalancedParens::ExcessBlock>(SectionId::kBpWordDir),
      layout.Typed<BalancedParens::ExcessBlock>(SectionId::kBpSuperDir));
  const auto content_offsets =
      layout.Typed<uint64_t>(SectionId::kContentOffsets);
  BitVector has_content = BitVector::FromExternal(
      layout.Typed<uint64_t>(SectionId::kHasContentWords), n,
      layout.Typed<uint64_t>(SectionId::kHasContentSuperRanks),
      content_offsets.size());
  ContentStore content = ContentStore::FromExternal(
      layout.Payload(SectionId::kContentBuffer), content_offsets);
  auto succinct = std::make_unique<SuccinctDocument>(
      SuccinctDocument::FromParts(std::move(bp), kinds, names,
                                  std::move(has_content), std::move(content),
                                  pool));

  const Region document_region{0, ends[0], 0, xml::kInvalidName};
  auto regions = std::make_unique<RegionIndex>(RegionIndex::FromExternal(
      document_region, ends, levels, region_elements, region_attributes,
      element_streams, layout.Typed<uint32_t>(SectionId::kRegionElementOffsets),
      attribute_streams,
      layout.Typed<uint32_t>(SectionId::kRegionAttributeOffsets)));

  auto values = std::make_unique<ValueIndex>(ValueIndex::FromParts(
      dom->TextBufferView(), families[0], families[1]));
  auto tags = std::make_unique<TagDictionary>(
      TagDictionary::FromParts(tag_elements, tag_attributes));

  std::vector<SnapshotSectionInfo> infos;
  infos.reserve(kSnapshotSectionCount);
  for (const SnapshotSection& s : layout.table) {
    infos.push_back(SnapshotSectionInfo{s.id, SnapshotSectionName(s.id),
                                        s.offset, s.size});
  }

  OpenedSnapshot out;
  out.dom = std::move(dom);
  out.succinct = std::move(succinct);
  out.regions = std::move(regions);
  out.values = std::move(values);
  out.tags = std::move(tags);
  out.backing = std::make_unique<SnapshotBacking>(std::move(bytes), mode,
                                                  std::move(infos), path);
  return out;
}

}  // namespace

Result<OpenedSnapshot> OpenSnapshotFromBytes(FileBytes bytes,
                                             SnapshotOpenMode mode,
                                             std::string path) {
  auto opened = OpenSnapshotFromBytesImpl(std::move(bytes), mode, path);
  if (!opened.ok()) return AnnotatePath(opened.status(), path);
  return opened;
}

Result<std::vector<SectionCheck>> SnapshotSectionChecks(
    std::span<const char> bytes, const std::string& path) {
  Layout layout;
  if (Status st = ParseLayoutStructure(bytes, &layout); !st.ok()) {
    return AnnotatePath(std::move(st), path);
  }
  std::vector<SectionCheck> checks;
  checks.reserve(kSnapshotSectionCount);
  for (uint32_t i = 0; i < kSnapshotSectionCount; ++i) {
    const SnapshotSection& s = layout.table[i];
    checks.push_back(SectionCheck{s.offset, s.size, s.crc, s.id});
  }
  return checks;
}

Status VerifySectionCheck(std::span<const char> bytes,
                          const SectionCheck& check, const std::string& path) {
  return AnnotatePath(
      CheckSectionCrc(bytes, check.offset, check.size, check.crc, check.id),
      path);
}

Status VerifySnapshotImage(std::span<const char> bytes, bool deep,
                           const std::string& path) {
  if (!deep) {
    Layout layout;
    return AnnotatePath(ParseLayout(bytes, &layout), path);
  }
  // The deep pass re-runs every structural invariant the open path checks,
  // on a defensive copy so a concurrently rotting mapping cannot shift
  // under the validators.
  auto full = OpenSnapshotFromBytes(
      FileBytes::Copy(std::string_view(bytes.data(), bytes.size())),
      SnapshotOpenMode::kCopy, path);
  return full.ok() ? Status::Ok() : full.status();
}

Result<OpenedSnapshot> OpenSnapshot(const std::string& path,
                                    SnapshotOpenMode mode) {
  FileBytes bytes;
  if (mode == SnapshotOpenMode::kMap) {
    if (XMLQ_FAULT("store.snapshot.map")) {
      return Status::Internal("injected mmap failure opening snapshot \"" +
                              path + "\"");
    }
    XMLQ_ASSIGN_OR_RETURN(bytes, FileBytes::Map(path));
  } else {
    XMLQ_ASSIGN_OR_RETURN(bytes, FileBytes::ReadWhole(path));
  }
  return OpenSnapshotFromBytes(std::move(bytes), mode, path);
}

}  // namespace xmlq::storage
