#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "xmlq/base/crc32.h"
#include "xmlq/base/fault_injector.h"
#include "xmlq/storage/snapshot.h"

namespace xmlq::storage {

namespace {

constexpr uint64_t kSectionAlign = 64;

uint64_t Align64(uint64_t x) {
  return (x + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

template <typename T>
std::string_view AsBytes(std::span<const T> data) {
  return std::string_view(reinterpret_cast<const char*>(data.data()),
                          data.size() * sizeof(T));
}

}  // namespace

const char* SnapshotSectionName(uint32_t id) {
  switch (static_cast<SectionId>(id)) {
    case SectionId::kNameOffsets: return "name_offsets";
    case SectionId::kNameChars: return "name_chars";
    case SectionId::kNodeKinds: return "node_kinds";
    case SectionId::kNodeNames: return "node_names";
    case SectionId::kParents: return "parents";
    case SectionId::kFirstChildren: return "first_children";
    case SectionId::kNextSiblings: return "next_siblings";
    case SectionId::kFirstAttrs: return "first_attrs";
    case SectionId::kTextOffsets: return "text_offsets";
    case SectionId::kTextLengths: return "text_lengths";
    case SectionId::kTextBuffer: return "text_buffer";
    case SectionId::kBpWords: return "bp_words";
    case SectionId::kBpSuperRanks: return "bp_super_ranks";
    case SectionId::kBpWordDir: return "bp_word_dir";
    case SectionId::kBpSuperDir: return "bp_super_dir";
    case SectionId::kHasContentWords: return "has_content_words";
    case SectionId::kHasContentSuperRanks: return "has_content_super_ranks";
    case SectionId::kContentOffsets: return "content_offsets";
    case SectionId::kContentBuffer: return "content_buffer";
    case SectionId::kRegionEnds: return "region_ends";
    case SectionId::kRegionLevels: return "region_levels";
    case SectionId::kRegionElements: return "region_elements";
    case SectionId::kRegionAttributes: return "region_attributes";
    case SectionId::kRegionElementStreams: return "region_element_streams";
    case SectionId::kRegionElementOffsets: return "region_element_offsets";
    case SectionId::kRegionAttributeStreams:
      return "region_attribute_streams";
    case SectionId::kRegionAttributeOffsets:
      return "region_attribute_offsets";
    case SectionId::kValueElementEntries: return "value_element_entries";
    case SectionId::kValueElementOffsets: return "value_element_offsets";
    case SectionId::kValueElementNumeric: return "value_element_numeric";
    case SectionId::kValueElementNumericOffsets:
      return "value_element_numeric_offsets";
    case SectionId::kValueAttributeEntries: return "value_attribute_entries";
    case SectionId::kValueAttributeOffsets: return "value_attribute_offsets";
    case SectionId::kValueAttributeNumeric: return "value_attribute_numeric";
    case SectionId::kValueAttributeNumericOffsets:
      return "value_attribute_numeric_offsets";
    case SectionId::kTagElementCounts: return "tag_element_counts";
    case SectionId::kTagAttributeCounts: return "tag_attribute_counts";
  }
  return "?";
}

Result<SnapshotWriteInfo> WriteSnapshot(const std::string& path,
                                        const xml::Document& doc,
                                        const SuccinctDocument& succinct,
                                        const RegionIndex& regions,
                                        const ValueIndex& values,
                                        const TagDictionary& tags) {
  if (XMLQ_FAULT("store.snapshot.write")) {
    return Status::Internal("injected I/O failure writing snapshot \"" +
                            path + "\"");
  }

  // Scratch payloads that only exist in serialized form.
  const xml::NamePool& pool = doc.pool();
  std::vector<uint32_t> name_offsets;
  std::string name_chars;
  name_offsets.reserve(pool.size() + 1);
  for (size_t i = 0; i < pool.size(); ++i) {
    name_offsets.push_back(static_cast<uint32_t>(name_chars.size()));
    name_chars.append(pool.NameOf(static_cast<xml::NameId>(i)));
  }
  name_offsets.push_back(static_cast<uint32_t>(name_chars.size()));

  const char* text_base = doc.TextBufferView().data();
  const std::vector<ValueIndex::PackedEntry> elem_entries =
      values.PackEntries(/*attribute=*/false, text_base);
  const std::vector<ValueIndex::PackedEntry> attr_entries =
      values.PackEntries(/*attribute=*/true, text_base);

  const BalancedParens& bp = succinct.bp();
  const BitVector& has_content = succinct.has_content();
  const ContentStore& content = succinct.content();

  // Payloads in canonical SectionId order (index == id - 1).
  const std::string_view payloads[kSnapshotSectionCount] = {
      AsBytes(std::span<const uint32_t>(name_offsets)),
      std::string_view(name_chars),
      AsBytes(std::span<const xml::NodeKind>(doc.KindSpan())),
      AsBytes(doc.NameSpan()),
      AsBytes(doc.ParentSpan()),
      AsBytes(doc.FirstChildSpan()),
      AsBytes(doc.NextSiblingSpan()),
      AsBytes(doc.FirstAttrSpan()),
      AsBytes(doc.TextOffsetSpan()),
      AsBytes(doc.TextLengthSpan()),
      doc.TextBufferView(),
      AsBytes(bp.bits().WordSpan()),
      AsBytes(bp.bits().SuperRankSpan()),
      AsBytes(bp.WordDirSpan()),
      AsBytes(bp.SuperDirSpan()),
      AsBytes(has_content.WordSpan()),
      AsBytes(has_content.SuperRankSpan()),
      AsBytes(content.OffsetSpan()),
      content.BufferView(),
      AsBytes(regions.EndSpan()),
      AsBytes(regions.LevelSpan()),
      AsBytes(regions.elements()),
      AsBytes(regions.attributes()),
      AsBytes(regions.ElementStreamsSpan()),
      AsBytes(regions.ElementOffsetSpan()),
      AsBytes(regions.AttributeStreamsSpan()),
      AsBytes(regions.AttributeOffsetSpan()),
      AsBytes(std::span<const ValueIndex::PackedEntry>(elem_entries)),
      AsBytes(values.OffsetSpan(/*attribute=*/false)),
      AsBytes(values.NumericSpan(/*attribute=*/false)),
      AsBytes(values.NumericOffsetSpan(/*attribute=*/false)),
      AsBytes(std::span<const ValueIndex::PackedEntry>(attr_entries)),
      AsBytes(values.OffsetSpan(/*attribute=*/true)),
      AsBytes(values.NumericSpan(/*attribute=*/true)),
      AsBytes(values.NumericOffsetSpan(/*attribute=*/true)),
      AsBytes(tags.ElementCountSpan()),
      AsBytes(tags.AttributeCountSpan()),
  };

  // Lay out: header, table, then 64-byte-aligned payloads.
  SnapshotSection table[kSnapshotSectionCount];
  uint64_t cursor =
      Align64(sizeof(SnapshotHeader) +
              kSnapshotSectionCount * sizeof(SnapshotSection));
  for (uint32_t i = 0; i < kSnapshotSectionCount; ++i) {
    table[i].id = i + 1;
    table[i].offset = cursor;
    table[i].size = payloads[i].size();
    table[i].crc = Crc32(payloads[i].data(), payloads[i].size());
    cursor = Align64(cursor + table[i].size);
  }
  const uint64_t file_size = cursor;

  SnapshotHeader header;
  std::memcpy(header.magic, kSnapshotMagic, sizeof(header.magic));
  header.version = kSnapshotVersion;
  header.section_count = kSnapshotSectionCount;
  header.file_size = file_size;
  header.table_crc = Crc32(table, sizeof(table));
  header.header_crc = 0;
  header.header_crc = Crc32(&header, sizeof(header));

  std::string image(file_size, '\0');
  std::memcpy(image.data(), &header, sizeof(header));
  std::memcpy(image.data() + sizeof(header), table, sizeof(table));
  SnapshotWriteInfo info;
  info.file_size = file_size;
  info.sections.reserve(kSnapshotSectionCount);
  for (uint32_t i = 0; i < kSnapshotSectionCount; ++i) {
    if (table[i].size != 0) {
      std::memcpy(image.data() + table[i].offset, payloads[i].data(),
                  payloads[i].size());
    }
    info.sections.push_back(SnapshotSectionInfo{
        table[i].id, SnapshotSectionName(table[i].id), table[i].offset,
        table[i].size});
  }
  info.file_crc = Crc32(image.data(), image.size());

  XMLQ_RETURN_IF_ERROR(WriteFileAtomic(path, image));
  return info;
}

}  // namespace xmlq::storage
