#include "xmlq/storage/succinct_doc.h"

#include <cassert>
#include <utility>

#include "xmlq/base/fault_injector.h"

namespace xmlq::storage {

Result<SuccinctDocument> SuccinctDocument::TryBuild(const xml::Document& doc) {
  if (XMLQ_FAULT("storage.succinct.build")) {
    return Status::ResourceExhausted(
        "injected allocation failure building succinct document");
  }
  return Build(doc);
}

SuccinctDocument SuccinctDocument::FromParts(
    BalancedParens bp, std::span<const uint8_t> kinds,
    std::span<const xml::NameId> labels, BitVector has_content,
    ContentStore content, std::shared_ptr<xml::NamePool> pool) {
  assert(kinds.size() == labels.size());
  assert(bp.NodeCount() == kinds.size());
  SuccinctDocument out;
  out.bp_ = std::move(bp);
  out.kinds_ = ArrayRef<uint8_t>::View(kinds);
  out.labels_ = ArrayRef<xml::NameId>::View(labels);
  out.has_content_ = std::move(has_content);
  out.content_ = std::move(content);
  out.pool_ = std::move(pool);
  return out;
}

SuccinctDocument SuccinctDocument::Build(const xml::Document& doc) {
  assert(doc.IsPreorder() &&
         "SuccinctDocument requires pre-order node ids (parser/generator "
         "built documents satisfy this)");
  SuccinctDocument out;
  out.pool_ = doc.shared_pool();
  const size_t n = doc.NodeCount();
  out.kinds_.Reserve(n);
  out.labels_.Reserve(n);

  // Iterative pre-order emit: (node, is_close) work stack. Attributes are
  // visited before element children so ranks equal NodeIds.
  std::vector<std::pair<xml::NodeId, bool>> work;
  work.emplace_back(doc.root(), false);
  std::vector<xml::NodeId> reverse_buf;
  while (!work.empty()) {
    auto [node, closing] = work.back();
    work.pop_back();
    if (closing) {
      out.bp_.PushBack(false);
      continue;
    }
    out.bp_.PushBack(true);
    const xml::NodeKind kind = doc.Kind(node);
    out.kinds_.PushBack(static_cast<uint8_t>(kind));
    out.labels_.PushBack(doc.Name(node));
    const bool has_content = kind == xml::NodeKind::kText ||
                             kind == xml::NodeKind::kAttribute ||
                             kind == xml::NodeKind::kComment ||
                             kind == xml::NodeKind::kProcessingInstruction;
    out.has_content_.PushBack(has_content);
    if (has_content) out.content_.Add(doc.Text(node));

    work.emplace_back(node, true);
    // Children pushed in reverse so they pop in document order; attributes
    // pushed last so they pop first.
    reverse_buf.clear();
    for (xml::NodeId c = doc.FirstChild(node); c != xml::kNullNode;
         c = doc.NextSibling(c)) {
      reverse_buf.push_back(c);
    }
    for (size_t i = reverse_buf.size(); i-- > 0;) {
      work.emplace_back(reverse_buf[i], false);
    }
    reverse_buf.clear();
    for (xml::NodeId a = doc.FirstAttr(node); a != xml::kNullNode;
         a = doc.NextSibling(a)) {
      reverse_buf.push_back(a);
    }
    for (size_t i = reverse_buf.size(); i-- > 0;) {
      work.emplace_back(reverse_buf[i], false);
    }
  }
  out.bp_.Freeze();
  out.has_content_.Freeze();
  assert(out.kinds_.size() == n);
  return out;
}

std::string_view SuccinctDocument::LabelStr(uint32_t rank) const {
  const xml::NameId id = labels_[rank];
  return id == xml::kInvalidName ? std::string_view() : pool_->NameOf(id);
}

std::string_view SuccinctDocument::Text(uint32_t rank) const {
  if (!HasContent(rank)) return {};
  return content_.Get(ContentIdOf(rank));
}

std::string SuccinctDocument::StringValue(uint32_t rank) const {
  if (Kind(rank) != xml::NodeKind::kElement &&
      Kind(rank) != xml::NodeKind::kDocument) {
    return std::string(Text(rank));
  }
  std::string out;
  const uint32_t end = rank + SubtreeSize(rank);
  for (uint32_t r = rank + 1; r < end; ++r) {
    if (Kind(r) == xml::NodeKind::kText) {
      out.append(content_.Get(ContentIdOf(r)));
    }
  }
  return out;
}

uint32_t SuccinctDocument::FirstChild(uint32_t rank) const {
  size_t pos = PosOf(rank) + 1;
  uint32_t child = rank + 1;
  // Skip the attribute run (attributes are single-node "()" leaves).
  while (pos < bp_.size() && bp_.IsOpen(pos) &&
         Kind(child) == xml::NodeKind::kAttribute) {
    pos += 2;
    ++child;
  }
  if (pos >= bp_.size() || !bp_.IsOpen(pos)) return kNoNode;
  return child;
}

uint32_t SuccinctDocument::FirstAttr(uint32_t rank) const {
  const size_t pos = PosOf(rank) + 1;
  if (pos >= bp_.size() || !bp_.IsOpen(pos)) return kNoNode;
  const uint32_t child = rank + 1;
  return Kind(child) == xml::NodeKind::kAttribute ? child : kNoNode;
}

uint32_t SuccinctDocument::NextSibling(uint32_t rank) const {
  if (Kind(rank) == xml::NodeKind::kAttribute) {
    const uint32_t next = rank + 1;
    if (next < kinds_.size() && Kind(next) == xml::NodeKind::kAttribute) {
      return next;
    }
    return kNoNode;
  }
  const size_t pos = PosOf(rank);
  const size_t close = bp_.FindClose(pos);
  const size_t next = close + 1;
  if (next >= bp_.size() || !bp_.IsOpen(next)) return kNoNode;
  return rank + static_cast<uint32_t>((close - pos + 1) / 2);
}

uint32_t SuccinctDocument::Parent(uint32_t rank) const {
  if (rank == 0) return kNoNode;
  const size_t pos = bp_.Enclose(PosOf(rank));
  if (pos == kNoPos) return kNoNode;
  return RankOf(pos);
}

size_t SuccinctDocument::StructureBytes() const {
  return bp_.MemoryUsage() + kinds_.size() * sizeof(uint8_t) +
         labels_.size() * sizeof(xml::NameId) + has_content_.MemoryUsage();
}

size_t SuccinctDocument::ContentBytes() const { return content_.MemoryUsage(); }

size_t SuccinctDocument::HeapBytes() const {
  return bp_.HeapBytes() + kinds_.OwnedBytes() + labels_.OwnedBytes() +
         has_content_.HeapBytes() + content_.HeapBytes();
}

}  // namespace xmlq::storage
