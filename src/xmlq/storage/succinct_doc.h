#ifndef XMLQ_STORAGE_SUCCINCT_DOC_H_
#define XMLQ_STORAGE_SUCCINCT_DOC_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "xmlq/base/array_ref.h"
#include "xmlq/base/status.h"
#include "xmlq/storage/bp.h"
#include "xmlq/storage/content_store.h"
#include "xmlq/xml/document.h"

namespace xmlq::storage {

/// The succinct physical storage scheme of paper §4.2: the tree structure is
/// a pre-order balanced-parentheses sequence (2 bits/node) with per-node kind
/// and label streams, while element contents live in a separate ContentStore.
///
/// Node identity: the *pre-order rank* of a node, which by construction
/// equals its NodeId in the source `Document` (attributes ranked immediately
/// after their owner element). All query results over the succinct engine are
/// therefore directly comparable to DOM-based engines.
class SuccinctDocument {
 public:
  /// Builds from a DOM tree. `doc.IsPreorder()` must hold (true for all
  /// parser-/generator-built documents).
  static SuccinctDocument Build(const xml::Document& doc);

  /// Build with a fault-injection hook ("storage.succinct.build") so tests
  /// can force the build-failure path; identical to Build otherwise.
  static Result<SuccinctDocument> TryBuild(const xml::Document& doc);

  /// Assembles a document from restored/mapped parts — the snapshot open
  /// path. `kinds`/`labels` may point into a mapped section (they are
  /// byte-identical to the DOM kind/name arrays, so snapshots store them
  /// once); ownership of the backing memory stays with the caller.
  static SuccinctDocument FromParts(BalancedParens bp,
                                    std::span<const uint8_t> kinds,
                                    std::span<const xml::NameId> labels,
                                    BitVector has_content,
                                    ContentStore content,
                                    std::shared_ptr<xml::NamePool> pool);

  // -- Identity / streams ---------------------------------------------------

  /// Number of tree nodes (document node + elements + attributes + text +
  /// comments + PIs).
  size_t NodeCount() const { return kinds_.size(); }

  xml::NodeKind Kind(uint32_t rank) const {
    return static_cast<xml::NodeKind>(kinds_[rank]);
  }
  bool IsElement(uint32_t rank) const {
    return Kind(rank) == xml::NodeKind::kElement;
  }
  /// NameId of an element/attribute/PI; kInvalidName otherwise.
  xml::NameId Label(uint32_t rank) const { return labels_[rank]; }
  std::string_view LabelStr(uint32_t rank) const;

  /// Own text of a text/comment/PI/attribute node; empty for others.
  std::string_view Text(uint32_t rank) const;

  /// XPath string-value: concatenated text of the subtree. O(subtree size).
  std::string StringValue(uint32_t rank) const;

  // -- Navigation (pre-order ranks) ----------------------------------------

  static constexpr uint32_t kNoNode = UINT32_MAX;

  /// BP open-paren position of the node with pre-order rank `rank`.
  size_t PosOf(uint32_t rank) const { return bp_.Select1(rank); }
  /// Pre-order rank of the node whose open paren sits at `pos`.
  uint32_t RankOf(size_t pos) const {
    return static_cast<uint32_t>(bp_.Rank1(pos));
  }

  /// First child in document order, *skipping attribute nodes*.
  uint32_t FirstChild(uint32_t rank) const;
  /// First attribute (attributes precede element children in rank order).
  uint32_t FirstAttr(uint32_t rank) const;
  /// Next sibling (for attributes: next attribute of the same element, then
  /// kNoNode at the end of the attribute run).
  uint32_t NextSibling(uint32_t rank) const;
  uint32_t Parent(uint32_t rank) const;

  /// Number of nodes in the subtree of `rank` (including itself; attributes
  /// count as subtree members).
  uint32_t SubtreeSize(uint32_t rank) const {
    return static_cast<uint32_t>(bp_.SubtreeSize(PosOf(rank)));
  }
  /// Depth (document node = 0).
  uint32_t Depth(uint32_t rank) const {
    return static_cast<uint32_t>(bp_.DepthAt(PosOf(rank)));
  }
  /// True iff `anc` is a proper ancestor of `desc`. O(1) amortized: subtree
  /// ranks are contiguous, so this is an interval test.
  bool IsAncestor(uint32_t anc, uint32_t desc) const {
    return anc < desc && desc < anc + SubtreeSize(anc);
  }

  const BalancedParens& bp() const { return bp_; }
  const ContentStore& content() const { return content_; }
  const xml::NamePool& pool() const { return *pool_; }
  std::shared_ptr<xml::NamePool> shared_pool() const { return pool_; }

  /// Content id of a content-bearing node (text/attr/comment/PI), i.e. its
  /// rank among content-bearing nodes. Requires `HasContent(rank)`.
  ContentId ContentIdOf(uint32_t rank) const {
    return static_cast<ContentId>(has_content_.Rank1(rank));
  }
  bool HasContent(uint32_t rank) const { return has_content_.Get(rank); }

  /// Bytes of structure (BP + directories + kind/label streams) — the
  /// "schema information" half of the paper's separation.
  size_t StructureBytes() const;
  /// Bytes of content (text store + content-rank directory).
  size_t ContentBytes() const;
  size_t MemoryUsage() const { return StructureBytes() + ContentBytes(); }
  /// Heap bytes actually owned (0 for fully mapped snapshot opens, except
  /// directories rebuilt locally — see snapshot_reader).
  size_t HeapBytes() const;

  // -- Snapshot serialization hooks ----------------------------------------

  std::span<const uint8_t> KindSpan() const { return kinds_.span(); }
  std::span<const xml::NameId> LabelSpan() const { return labels_.span(); }
  const BitVector& has_content() const { return has_content_; }

 private:
  SuccinctDocument() = default;

  BalancedParens bp_;
  ArrayRef<uint8_t> kinds_;       // NodeKind per pre-order rank
  ArrayRef<xml::NameId> labels_;  // NameId per pre-order rank
  BitVector has_content_;         // 1 iff node owns a content string
  ContentStore content_;
  std::shared_ptr<xml::NamePool> pool_;
};

}  // namespace xmlq::storage

#endif  // XMLQ_STORAGE_SUCCINCT_DOC_H_
