#include "xmlq/storage/tag_dictionary.h"

namespace xmlq::storage {

namespace {

void Bump(std::vector<uint32_t>* counts, xml::NameId id) {
  if (id >= counts->size()) counts->resize(id + 1, 0);
  ++(*counts)[id];
}

}  // namespace

TagDictionary TagDictionary::FromParts(
    std::span<const uint32_t> element_counts,
    std::span<const uint32_t> attribute_counts) {
  TagDictionary out;
  out.element_counts_.assign(element_counts.begin(), element_counts.end());
  out.attribute_counts_.assign(attribute_counts.begin(),
                               attribute_counts.end());
  for (uint32_t c : out.element_counts_) {
    out.total_elements_ += c;
    if (c > 0) ++out.distinct_element_names_;
  }
  for (uint32_t c : out.attribute_counts_) out.total_attributes_ += c;
  return out;
}

TagDictionary::TagDictionary(const xml::Document& doc) {
  const size_t n = doc.NodeCount();
  for (xml::NodeId id = 0; id < n; ++id) {
    switch (doc.Kind(id)) {
      case xml::NodeKind::kElement:
        Bump(&element_counts_, doc.Name(id));
        ++total_elements_;
        break;
      case xml::NodeKind::kAttribute:
        Bump(&attribute_counts_, doc.Name(id));
        ++total_attributes_;
        break;
      default:
        break;
    }
  }
  for (uint32_t c : element_counts_) {
    if (c > 0) ++distinct_element_names_;
  }
}

}  // namespace xmlq::storage
