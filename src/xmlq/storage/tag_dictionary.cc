#include "xmlq/storage/tag_dictionary.h"

namespace xmlq::storage {

namespace {

void Bump(std::vector<uint32_t>* counts, xml::NameId id) {
  if (id >= counts->size()) counts->resize(id + 1, 0);
  ++(*counts)[id];
}

}  // namespace

TagDictionary::TagDictionary(const xml::Document& doc) {
  const size_t n = doc.NodeCount();
  for (xml::NodeId id = 0; id < n; ++id) {
    switch (doc.Kind(id)) {
      case xml::NodeKind::kElement:
        Bump(&element_counts_, doc.Name(id));
        ++total_elements_;
        break;
      case xml::NodeKind::kAttribute:
        Bump(&attribute_counts_, doc.Name(id));
        ++total_attributes_;
        break;
      default:
        break;
    }
  }
  for (uint32_t c : element_counts_) {
    if (c > 0) ++distinct_element_names_;
  }
}

}  // namespace xmlq::storage
