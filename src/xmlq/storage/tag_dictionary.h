#ifndef XMLQ_STORAGE_TAG_DICTIONARY_H_
#define XMLQ_STORAGE_TAG_DICTIONARY_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "xmlq/xml/document.h"

namespace xmlq::storage {

/// Per-document statistics over the tag vocabulary: how many elements and
/// attributes carry each interned name. Built once at load time; consumed by
/// the region index (stream sizing), the path synopsis and the cost model.
class TagDictionary {
 public:
  TagDictionary() = default;

  /// Scans `doc` and tallies element/attribute counts per NameId.
  explicit TagDictionary(const xml::Document& doc);

  /// Rebuilds from serialized count arrays (snapshot open path). The counts
  /// are copied — the dictionary is tiny (one u32 pair per distinct name),
  /// so it is always materialized; totals are recomputed, not trusted.
  static TagDictionary FromParts(std::span<const uint32_t> element_counts,
                                 std::span<const uint32_t> attribute_counts);

  /// Number of elements named `id` (0 for unknown ids).
  size_t ElementCount(xml::NameId id) const {
    return id < element_counts_.size() ? element_counts_[id] : 0;
  }
  /// Number of attributes named `id`.
  size_t AttributeCount(xml::NameId id) const {
    return id < attribute_counts_.size() ? attribute_counts_[id] : 0;
  }

  /// Total elements / attributes seen.
  size_t TotalElements() const { return total_elements_; }
  size_t TotalAttributes() const { return total_attributes_; }

  /// Number of distinct element names that occur at least once.
  size_t DistinctElementNames() const { return distinct_element_names_; }

  /// Heap bytes owned by the count arrays.
  size_t HeapBytes() const {
    return (element_counts_.capacity() + attribute_counts_.capacity()) *
           sizeof(uint32_t);
  }

  // -- Snapshot serialization hooks ----------------------------------------

  std::span<const uint32_t> ElementCountSpan() const {
    return element_counts_;
  }
  std::span<const uint32_t> AttributeCountSpan() const {
    return attribute_counts_;
  }

 private:
  std::vector<uint32_t> element_counts_;    // indexed by NameId
  std::vector<uint32_t> attribute_counts_;  // indexed by NameId
  size_t total_elements_ = 0;
  size_t total_attributes_ = 0;
  size_t distinct_element_names_ = 0;
};

}  // namespace xmlq::storage

#endif  // XMLQ_STORAGE_TAG_DICTIONARY_H_
