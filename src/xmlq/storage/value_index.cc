#include "xmlq/storage/value_index.h"

#include <algorithm>

#include "xmlq/base/fault_injector.h"
#include "xmlq/base/strings.h"

namespace xmlq::storage {

Result<ValueIndex> ValueIndex::TryBuild(const xml::Document& doc) {
  if (XMLQ_FAULT("storage.value.build")) {
    return Status::ResourceExhausted(
        "injected allocation failure building value index");
  }
  return ValueIndex(doc);
}

ValueIndex::Family ValueIndex::UnpackFamily(std::string_view text,
                                            const FamilyParts& parts) {
  Family out;
  out.offsets.assign(parts.offsets.begin(), parts.offsets.end());
  out.numeric_offsets.assign(parts.numeric_offsets.begin(),
                             parts.numeric_offsets.end());
  out.entries.reserve(parts.entries.size());
  for (const PackedEntry& pe : parts.entries) {
    out.entries.push_back(Entry{
        std::string_view(text.data() + pe.text_offset, pe.length), pe.node});
  }
  out.numeric.assign(parts.numeric.begin(), parts.numeric.end());
  return out;
}

ValueIndex ValueIndex::FromParts(std::string_view text,
                                 const FamilyParts& elements,
                                 const FamilyParts& attributes) {
  ValueIndex out;
  out.elements_ = UnpackFamily(text, elements);
  out.attributes_ = UnpackFamily(text, attributes);
  return out;
}

std::vector<ValueIndex::PackedEntry> ValueIndex::PackEntries(
    bool attribute, const char* text_base) const {
  const Family& family = FamilyFor(attribute);
  std::vector<PackedEntry> out;
  out.reserve(family.entries.size());
  for (const Entry& e : family.entries) {
    out.push_back(PackedEntry{
        static_cast<uint32_t>(e.value.data() - text_base),
        static_cast<uint32_t>(e.value.size()), e.node});
  }
  return out;
}

void ValueIndex::BuildFamily(std::vector<std::pair<xml::NameId, Entry>>* raw,
                             size_t name_count, Family* family) {
  std::stable_sort(raw->begin(), raw->end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first < b.first;
                     if (a.second.value != b.second.value) {
                       return a.second.value < b.second.value;
                     }
                     return a.second.node < b.second.node;
                   });
  family->offsets.assign(name_count + 1, 0);
  family->numeric_offsets.assign(name_count + 1, 0);
  for (const auto& [name, entry] : *raw) {
    ++family->offsets[name + 1];
    if (ParseDouble(entry.value).has_value()) {
      ++family->numeric_offsets[name + 1];
    }
  }
  for (size_t i = 1; i <= name_count; ++i) {
    family->offsets[i] += family->offsets[i - 1];
    family->numeric_offsets[i] += family->numeric_offsets[i - 1];
  }
  family->entries.reserve(raw->size());
  for (const auto& [name, entry] : *raw) {
    family->entries.push_back(entry);
    if (auto num = ParseDouble(entry.value)) {
      family->numeric.push_back(NumericEntry{*num, entry.node});
    }
  }
  // Sort each per-name numeric run by value (string order != numeric order).
  for (size_t name = 0; name < name_count; ++name) {
    auto begin = family->numeric.begin() + family->numeric_offsets[name];
    auto end = family->numeric.begin() + family->numeric_offsets[name + 1];
    std::sort(begin, end, [](const NumericEntry& a, const NumericEntry& b) {
      if (a.value != b.value) return a.value < b.value;
      return a.node < b.node;
    });
  }
}

ValueIndex::ValueIndex(const xml::Document& doc) {
  std::vector<std::pair<xml::NameId, Entry>> element_raw;
  std::vector<std::pair<xml::NameId, Entry>> attribute_raw;
  const size_t n = doc.NodeCount();
  for (xml::NodeId i = 0; i < n; ++i) {
    if (doc.Kind(i) == xml::NodeKind::kElement) {
      // Data element: exactly one child, and it is a text node.
      const xml::NodeId child = doc.FirstChild(i);
      if (child != xml::kNullNode &&
          doc.Kind(child) == xml::NodeKind::kText &&
          doc.NextSibling(child) == xml::kNullNode) {
        element_raw.push_back({doc.Name(i), Entry{doc.Text(child), i}});
      }
    } else if (doc.Kind(i) == xml::NodeKind::kAttribute) {
      attribute_raw.push_back({doc.Name(i), Entry{doc.Text(i), i}});
    }
  }
  BuildFamily(&element_raw, doc.pool().size(), &elements_);
  BuildFamily(&attribute_raw, doc.pool().size(), &attributes_);
}

std::vector<xml::NodeId> ValueIndex::Lookup(xml::NameId name,
                                            std::string_view value,
                                            bool attribute) const {
  const Family& family = FamilyFor(attribute);
  std::vector<xml::NodeId> out;
  if (name == xml::kInvalidName || name + 1 >= family.offsets.size()) {
    return out;
  }
  const auto begin = family.entries.begin() + family.offsets[name];
  const auto end = family.entries.begin() + family.offsets[name + 1];
  auto lo = std::lower_bound(begin, end, value,
                             [](const Entry& e, std::string_view v) {
                               return e.value < v;
                             });
  for (; lo != end && lo->value == value; ++lo) out.push_back(lo->node);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<xml::NodeId> ValueIndex::LookupNumericRange(
    xml::NameId name, double lo, bool lo_inclusive, double hi,
    bool hi_inclusive, bool attribute) const {
  const Family& family = FamilyFor(attribute);
  std::vector<xml::NodeId> out;
  if (name == xml::kInvalidName ||
      name + 1 >= family.numeric_offsets.size()) {
    return out;
  }
  const auto begin = family.numeric.begin() + family.numeric_offsets[name];
  const auto end = family.numeric.begin() + family.numeric_offsets[name + 1];
  for (auto it = begin; it != end; ++it) {
    const bool above = lo_inclusive ? it->value >= lo : it->value > lo;
    const bool below = hi_inclusive ? it->value <= hi : it->value < hi;
    if (above && below) out.push_back(it->node);
    if (!below && it->value > hi) break;  // runs are sorted by value
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t ValueIndex::size() const {
  return elements_.entries.size() + attributes_.entries.size();
}

size_t ValueIndex::MemoryUsage() const {
  auto family_bytes = [](const Family& f) {
    return f.entries.capacity() * sizeof(Entry) +
           f.numeric.capacity() * sizeof(NumericEntry) +
           (f.offsets.capacity() + f.numeric_offsets.capacity()) *
               sizeof(uint32_t);
  };
  return family_bytes(elements_) + family_bytes(attributes_);
}

}  // namespace xmlq::storage
