#ifndef XMLQ_STORAGE_VALUE_INDEX_H_
#define XMLQ_STORAGE_VALUE_INDEX_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "xmlq/base/status.h"
#include "xmlq/xml/document.h"

namespace xmlq::storage {

/// Content-based index over the separated content store (paper §4.2: "
/// content-based indexes (such as B+ trees ...) can be created only on the
/// content information"). Two keyed families are indexed:
///
///   * data elements — elements whose children are a single text node; key
///     is (element name, text), payload is the element's NodeId;
///   * attributes — key is (attribute name, value), payload is the
///     *attribute node's* NodeId (callers take Parent() for the owner).
///
/// Each family is a per-name sorted run over (value, node), supporting exact
/// lookups and, for values that parse as numbers, numeric range scans.
///
/// The index is always materialized in heap memory (entries are string_views
/// into the document's text buffer, which snapshots restore first); snapshot
/// files store entries in packed {text_offset, length, node} form so the load
/// path is a flat unpack with no re-sorting.
class ValueIndex {
 public:
  struct Entry {
    std::string_view value;
    xml::NodeId node;
  };
  /// Explicit `pad` keeps the struct free of uninitialized padding bytes so
  /// runs can be serialized with memcpy deterministically.
  struct NumericEntry {
    double value;
    xml::NodeId node;
    uint32_t pad = 0;
  };
  static_assert(sizeof(NumericEntry) == 16, "serialized layout");
  /// On-disk form of Entry: the value as a (offset, length) slice of the
  /// document's text buffer.
  struct PackedEntry {
    uint32_t text_offset = 0;
    uint32_t length = 0;
    uint32_t node = 0;
  };
  static_assert(sizeof(PackedEntry) == 12, "serialized layout");

  /// Borrowed views of one family's four arrays (snapshot sections on load,
  /// live vectors on save).
  struct FamilyParts {
    std::span<const PackedEntry> entries;
    std::span<const uint32_t> offsets;  // per NameId, size+1 fence
    std::span<const NumericEntry> numeric;
    std::span<const uint32_t> numeric_offsets;
  };

  ValueIndex() = default;

  /// Builds from a DOM tree; the index holds string_views into `doc`'s text
  /// buffer, so `doc` must outlive the index.
  explicit ValueIndex(const xml::Document& doc);

  /// Build with a fault-injection hook ("storage.value.build") so tests can
  /// force the build-failure path; identical to the constructor otherwise.
  static Result<ValueIndex> TryBuild(const xml::Document& doc);

  /// Materializes from packed snapshot sections. `text` is the restored
  /// document's text buffer; every packed slice must lie inside it (callers
  /// validate — see snapshot_reader) and `text` must outlive the index.
  static ValueIndex FromParts(std::string_view text,
                              const FamilyParts& elements,
                              const FamilyParts& attributes);

  /// Nodes whose indexed value equals `value`, in document order.
  std::vector<xml::NodeId> Lookup(xml::NameId name, std::string_view value,
                                  bool attribute) const;

  /// Nodes whose indexed value parses as a double in [lo, hi] (inclusive
  /// bounds chosen by flags), in document order.
  std::vector<xml::NodeId> LookupNumericRange(xml::NameId name, double lo,
                                              bool lo_inclusive, double hi,
                                              bool hi_inclusive,
                                              bool attribute) const;

  /// Number of indexed entries (both families).
  size_t size() const;

  size_t MemoryUsage() const;
  /// Heap bytes owned (the index is always materialized, so this equals
  /// MemoryUsage; present for the uniform per-component accounting API).
  size_t HeapBytes() const { return MemoryUsage(); }

  // -- Snapshot serialization hooks ----------------------------------------

  /// Entries of one family packed for serialization; `text_base` is the
  /// start of the document text buffer the entry values point into.
  std::vector<PackedEntry> PackEntries(bool attribute,
                                       const char* text_base) const;
  std::span<const uint32_t> OffsetSpan(bool attribute) const {
    return FamilyFor(attribute).offsets;
  }
  std::span<const NumericEntry> NumericSpan(bool attribute) const {
    return FamilyFor(attribute).numeric;
  }
  std::span<const uint32_t> NumericOffsetSpan(bool attribute) const {
    return FamilyFor(attribute).numeric_offsets;
  }

 private:
  struct Family {
    // Entries grouped by NameId, each group sorted by (value, node).
    std::vector<Entry> entries;
    std::vector<uint32_t> offsets;  // per NameId, size+1 fence
    std::vector<NumericEntry> numeric;
    std::vector<uint32_t> numeric_offsets;
  };

  static void BuildFamily(std::vector<std::pair<xml::NameId, Entry>>* raw,
                          size_t name_count, Family* family);
  static Family UnpackFamily(std::string_view text, const FamilyParts& parts);

  const Family& FamilyFor(bool attribute) const {
    return attribute ? attributes_ : elements_;
  }

  Family elements_;
  Family attributes_;
};

}  // namespace xmlq::storage

#endif  // XMLQ_STORAGE_VALUE_INDEX_H_
