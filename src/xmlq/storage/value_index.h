#ifndef XMLQ_STORAGE_VALUE_INDEX_H_
#define XMLQ_STORAGE_VALUE_INDEX_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "xmlq/base/status.h"
#include "xmlq/xml/document.h"

namespace xmlq::storage {

/// Content-based index over the separated content store (paper §4.2: "
/// content-based indexes (such as B+ trees ...) can be created only on the
/// content information"). Two keyed families are indexed:
///
///   * data elements — elements whose children are a single text node; key
///     is (element name, text), payload is the element's NodeId;
///   * attributes — key is (attribute name, value), payload is the
///     *attribute node's* NodeId (callers take Parent() for the owner).
///
/// Each family is a per-name sorted run over (value, node), supporting exact
/// lookups and, for values that parse as numbers, numeric range scans.
class ValueIndex {
 public:
  ValueIndex() = default;

  /// Builds from a DOM tree; the index holds string_views into `doc`'s text
  /// buffer, so `doc` must outlive the index.
  explicit ValueIndex(const xml::Document& doc);

  /// Build with a fault-injection hook ("storage.value.build") so tests can
  /// force the build-failure path; identical to the constructor otherwise.
  static Result<ValueIndex> TryBuild(const xml::Document& doc);

  /// Nodes whose indexed value equals `value`, in document order.
  std::vector<xml::NodeId> Lookup(xml::NameId name, std::string_view value,
                                  bool attribute) const;

  /// Nodes whose indexed value parses as a double in [lo, hi] (inclusive
  /// bounds chosen by flags), in document order.
  std::vector<xml::NodeId> LookupNumericRange(xml::NameId name, double lo,
                                              bool lo_inclusive, double hi,
                                              bool hi_inclusive,
                                              bool attribute) const;

  /// Number of indexed entries (both families).
  size_t size() const;

  size_t MemoryUsage() const;

 private:
  struct Entry {
    std::string_view value;
    xml::NodeId node;
  };
  struct NumericEntry {
    double value;
    xml::NodeId node;
  };
  struct Family {
    // Entries grouped by NameId, each group sorted by (value, node).
    std::vector<Entry> entries;
    std::vector<uint32_t> offsets;  // per NameId, size+1 fence
    std::vector<NumericEntry> numeric;
    std::vector<uint32_t> numeric_offsets;
  };

  static void BuildFamily(std::vector<std::pair<xml::NameId, Entry>>* raw,
                          size_t name_count, Family* family);

  const Family& FamilyFor(bool attribute) const {
    return attribute ? attributes_ : elements_;
  }

  Family elements_;
  Family attributes_;
};

}  // namespace xmlq::storage

#endif  // XMLQ_STORAGE_VALUE_INDEX_H_
