#include "xmlq/xml/document.h"

#include <cassert>

namespace xmlq::xml {

std::string_view NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDocument:
      return "document";
    case NodeKind::kElement:
      return "element";
    case NodeKind::kAttribute:
      return "attribute";
    case NodeKind::kText:
      return "text";
    case NodeKind::kComment:
      return "comment";
    case NodeKind::kProcessingInstruction:
      return "processing-instruction";
  }
  return "unknown";
}

Document::Document() : Document(std::make_shared<NamePool>()) {}

Document::Document(std::shared_ptr<NamePool> pool) : pool_(std::move(pool)) {
  assert(pool_ != nullptr);
  NewNode(NodeKind::kDocument, kInvalidName, kNullNode);
}

Document Document::FromParts(std::shared_ptr<NamePool> pool,
                             std::span<const uint8_t> kinds,
                             std::span<const NameId> names,
                             std::span<const NodeId> parents,
                             std::span<const NodeId> first_children,
                             std::span<const NodeId> next_siblings,
                             std::span<const NodeId> first_attrs,
                             std::span<const uint32_t> text_offsets,
                             std::span<const uint32_t> text_lengths,
                             std::string_view text_buffer) {
  const size_t n = kinds.size();
  assert(names.size() == n && parents.size() == n &&
         first_children.size() == n && next_siblings.size() == n &&
         first_attrs.size() == n && text_offsets.size() == n &&
         text_lengths.size() == n);
  Document out(std::move(pool));
  out.kinds_.assign(reinterpret_cast<const NodeKind*>(kinds.data()),
                    reinterpret_cast<const NodeKind*>(kinds.data()) + n);
  out.names_.assign(names.begin(), names.end());
  out.parents_.assign(parents.begin(), parents.end());
  out.first_children_.assign(first_children.begin(), first_children.end());
  out.next_siblings_.assign(next_siblings.begin(), next_siblings.end());
  out.first_attrs_.assign(first_attrs.begin(), first_attrs.end());
  out.text_offsets_.assign(text_offsets.begin(), text_offsets.end());
  out.text_lengths_.assign(text_lengths.begin(), text_lengths.end());
  out.text_buffer_.assign(text_buffer.data(), text_buffer.size());
  // Tail pointers are rebuilt, not stored: children appear in increasing id
  // order, so the last assignment per parent wins.
  out.last_children_.assign(n, kNullNode);
  out.last_attrs_.assign(n, kNullNode);
  out.element_count_ = 0;
  for (NodeId i = 1; i < n; ++i) {
    const NodeId parent = out.parents_[i];
    if (parent == kNullNode || parent >= n) continue;
    if (out.kinds_[i] == NodeKind::kAttribute) {
      out.last_attrs_[parent] = i;
    } else {
      out.last_children_[parent] = i;
    }
  }
  for (NodeKind k : out.kinds_) {
    if (k == NodeKind::kElement) ++out.element_count_;
  }
  return out;
}

NodeId Document::NewNode(NodeKind kind, NameId name, NodeId parent) {
  NodeId id = static_cast<NodeId>(kinds_.size());
  kinds_.push_back(kind);
  names_.push_back(name);
  parents_.push_back(parent);
  first_children_.push_back(kNullNode);
  last_children_.push_back(kNullNode);
  next_siblings_.push_back(kNullNode);
  first_attrs_.push_back(kNullNode);
  last_attrs_.push_back(kNullNode);
  text_offsets_.push_back(0);
  text_lengths_.push_back(0);
  return id;
}

void Document::AppendChild(NodeId parent, NodeId child) {
  if (first_children_[parent] == kNullNode) {
    first_children_[parent] = child;
  } else {
    next_siblings_[last_children_[parent]] = child;
  }
  last_children_[parent] = child;
}

void Document::SetText(NodeId n, std::string_view text) {
  text_offsets_[n] = static_cast<uint32_t>(text_buffer_.size());
  text_lengths_[n] = static_cast<uint32_t>(text.size());
  text_buffer_.append(text);
}

NodeId Document::AddElement(NodeId parent, std::string_view name) {
  NodeId id = NewNode(NodeKind::kElement, pool_->Intern(name), parent);
  AppendChild(parent, id);
  ++element_count_;
  return id;
}

NodeId Document::AddText(NodeId parent, std::string_view text) {
  NodeId id = NewNode(NodeKind::kText, kInvalidName, parent);
  AppendChild(parent, id);
  SetText(id, text);
  return id;
}

NodeId Document::AddComment(NodeId parent, std::string_view text) {
  NodeId id = NewNode(NodeKind::kComment, kInvalidName, parent);
  AppendChild(parent, id);
  SetText(id, text);
  return id;
}

NodeId Document::AddProcessingInstruction(NodeId parent,
                                          std::string_view target,
                                          std::string_view text) {
  NodeId id = NewNode(NodeKind::kProcessingInstruction,
                      pool_->Intern(target), parent);
  AppendChild(parent, id);
  SetText(id, text);
  return id;
}

NodeId Document::AddAttribute(NodeId element, std::string_view name,
                              std::string_view value) {
  assert(IsElement(element));
  NodeId id = NewNode(NodeKind::kAttribute, pool_->Intern(name), element);
  if (first_attrs_[element] == kNullNode) {
    first_attrs_[element] = id;
  } else {
    next_siblings_[last_attrs_[element]] = id;
  }
  last_attrs_[element] = id;
  SetText(id, value);
  return id;
}

NodeId Document::RootElement() const {
  for (NodeId c = FirstChild(root()); c != kNullNode; c = NextSibling(c)) {
    if (IsElement(c)) return c;
  }
  return kNullNode;
}

std::string_view Document::NameStr(NodeId n) const {
  NameId id = names_[n];
  return id == kInvalidName ? std::string_view() : pool_->NameOf(id);
}

std::string_view Document::Text(NodeId n) const {
  return std::string_view(text_buffer_).substr(text_offsets_[n],
                                               text_lengths_[n]);
}

std::string_view Document::AttributeValue(NodeId element,
                                          std::string_view name,
                                          bool* found) const {
  NameId want = pool_->Find(name);
  if (want != kInvalidName) {
    for (NodeId a = FirstAttr(element); a != kNullNode; a = NextSibling(a)) {
      if (names_[a] == want) {
        if (found != nullptr) *found = true;
        return Text(a);
      }
    }
  }
  if (found != nullptr) *found = false;
  return {};
}

std::string Document::StringValue(NodeId n) const {
  switch (Kind(n)) {
    case NodeKind::kText:
    case NodeKind::kComment:
    case NodeKind::kProcessingInstruction:
    case NodeKind::kAttribute:
      return std::string(Text(n));
    case NodeKind::kDocument:
    case NodeKind::kElement:
      break;
  }
  std::string out;
  // Iterative pre-order walk of the subtree rooted at n.
  NodeId cur = FirstChild(n);
  while (cur != kNullNode) {
    if (Kind(cur) == NodeKind::kText) out.append(Text(cur));
    // Descend, else advance, else climb until a next sibling inside n.
    if (FirstChild(cur) != kNullNode) {
      cur = FirstChild(cur);
    } else {
      while (cur != kNullNode && cur != n && NextSibling(cur) == kNullNode) {
        cur = Parent(cur);
      }
      cur = (cur == kNullNode || cur == n) ? kNullNode : NextSibling(cur);
    }
  }
  return out;
}

uint32_t Document::Depth(NodeId n) const {
  uint32_t d = 0;
  for (NodeId p = Parent(n); p != kNullNode; p = Parent(p)) ++d;
  return d;
}

NodeId Document::PreorderNext(NodeId n) const {
  if (FirstChild(n) != kNullNode) return FirstChild(n);
  return PreorderSkipSubtree(n);
}

NodeId Document::PreorderSkipSubtree(NodeId n) const {
  while (n != kNullNode) {
    if (NextSibling(n) != kNullNode) return NextSibling(n);
    n = Parent(n);
  }
  return kNullNode;
}

bool Document::IsPreorder() const {
  // Pre-order with attributes visited immediately after their element.
  NodeId expected = 0;
  NodeId cur = root();
  while (cur != kNullNode) {
    if (cur != expected) return false;
    ++expected;
    for (NodeId a = FirstAttr(cur); a != kNullNode; a = NextSibling(a)) {
      if (a != expected) return false;
      ++expected;
    }
    cur = PreorderNext(cur);
  }
  return expected == kinds_.size();
}

size_t Document::MemoryUsage() const {
  size_t per_node = sizeof(NodeKind) + sizeof(NameId) + 6 * sizeof(NodeId) +
                    2 * sizeof(uint32_t);
  return kinds_.size() * per_node + text_buffer_.size();
}

}  // namespace xmlq::xml
