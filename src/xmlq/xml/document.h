#ifndef XMLQ_XML_DOCUMENT_H_
#define XMLQ_XML_DOCUMENT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "xmlq/xml/name_pool.h"

namespace xmlq::xml {

/// Index of a node inside its Document's arena. The document node itself is
/// always node 0.
using NodeId = uint32_t;

/// Sentinel for "no node" (end of sibling chains, missing parents, ...).
inline constexpr NodeId kNullNode = UINT32_MAX;

/// Node kinds of the XQuery data model subset the paper uses: documents are
/// labeled, ordered, rooted trees (sort `Tree` in the algebra).
enum class NodeKind : uint8_t {
  kDocument = 0,
  kElement,
  kAttribute,
  kText,
  kComment,
  kProcessingInstruction,
};

std::string_view NodeKindName(NodeKind kind);

/// In-memory XML tree stored as a struct-of-arrays arena.
///
/// This is the `Tree` sort of the logical algebra and the substrate every
/// physical representation (succinct store, region index) is built from.
/// Nodes are identified by dense `NodeId`s in *document order* of creation;
/// builders that construct trees top-down therefore produce pre-order ids,
/// which the storage layer relies on (and `IsPreorder()` verifies).
///
/// Attributes hang off a separate per-element chain (`FirstAttr` /
/// `NextSibling`), matching the XPath data model where attributes are not
/// children.
class Document {
 public:
  /// Creates an empty document owning a fresh NamePool.
  Document();
  /// Creates an empty document sharing `pool` (so queries compiled against
  /// one pool work across a corpus of documents).
  explicit Document(std::shared_ptr<NamePool> pool);

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  /// Rebuilds a document from serialized arena arrays (snapshot open path).
  /// All arrays must have the same length; `last_children`/`last_attrs` tail
  /// pointers and the element count are recomputed rather than stored.
  /// Callers validate id ranges and text slices beforehand (snapshot_reader).
  static Document FromParts(std::shared_ptr<NamePool> pool,
                            std::span<const uint8_t> kinds,
                            std::span<const NameId> names,
                            std::span<const NodeId> parents,
                            std::span<const NodeId> first_children,
                            std::span<const NodeId> next_siblings,
                            std::span<const NodeId> first_attrs,
                            std::span<const uint32_t> text_offsets,
                            std::span<const uint32_t> text_lengths,
                            std::string_view text_buffer);

  // -- Construction ---------------------------------------------------------

  /// Appends a new element named `name` as the last child of `parent`.
  NodeId AddElement(NodeId parent, std::string_view name);
  /// Appends a new text node with content `text` as the last child of
  /// `parent`. Adjacent text children are not merged.
  NodeId AddText(NodeId parent, std::string_view text);
  /// Appends a comment node.
  NodeId AddComment(NodeId parent, std::string_view text);
  /// Appends a processing instruction with target `target` and body `text`.
  NodeId AddProcessingInstruction(NodeId parent, std::string_view target,
                                  std::string_view text);
  /// Adds attribute `name`=`value` to element `element`. Does not check for
  /// duplicates (the parser rejects them before calling this).
  NodeId AddAttribute(NodeId element, std::string_view name,
                      std::string_view value);

  // -- Structure accessors --------------------------------------------------

  NodeId root() const { return 0; }
  /// First element child of the document node (the root element), or
  /// kNullNode for an empty document.
  NodeId RootElement() const;

  size_t NodeCount() const { return kinds_.size(); }

  NodeKind Kind(NodeId n) const { return kinds_[n]; }
  bool IsElement(NodeId n) const { return kinds_[n] == NodeKind::kElement; }

  /// Name id of an element/attribute/PI node; kInvalidName otherwise.
  NameId Name(NodeId n) const { return names_[n]; }
  /// Name string; empty for unnamed kinds.
  std::string_view NameStr(NodeId n) const;

  NodeId Parent(NodeId n) const { return parents_[n]; }
  NodeId FirstChild(NodeId n) const { return first_children_[n]; }
  NodeId NextSibling(NodeId n) const { return next_siblings_[n]; }
  /// Head of the attribute chain of an element (kNullNode if none). Walk
  /// with NextSibling.
  NodeId FirstAttr(NodeId n) const { return first_attrs_[n]; }

  /// Text content of a text/comment/PI/attribute node (not the XPath
  /// string-value; see StringValue).
  std::string_view Text(NodeId n) const;

  /// Value of attribute `name` on `element`, or empty view + found=false.
  std::string_view AttributeValue(NodeId element, std::string_view name,
                                  bool* found = nullptr) const;

  /// XPath string-value: concatenation of all descendant text nodes (for
  /// attributes/text/comments, their own content).
  std::string StringValue(NodeId n) const;

  /// Depth of `n` (document node = 0).
  uint32_t Depth(NodeId n) const;

  /// Next node in pre-order (document order), skipping attribute chains;
  /// kNullNode after the last node.
  NodeId PreorderNext(NodeId n) const;
  /// Pre-order successor that does not descend into `n`'s subtree.
  NodeId PreorderSkipSubtree(NodeId n) const;

  /// True iff node ids coincide with pre-order ranks (attributes counted
  /// right after their owner element, before its children). Holds for all
  /// documents built by the parser and the generators.
  bool IsPreorder() const;

  /// Number of element nodes.
  size_t ElementCount() const { return element_count_; }

  const NamePool& pool() const { return *pool_; }
  NamePool& mutable_pool() { return *pool_; }
  std::shared_ptr<NamePool> shared_pool() const { return pool_; }

  /// Approximate heap footprint in bytes (arena arrays + text buffer);
  /// used by the storage-size experiment (E2).
  size_t MemoryUsage() const;

  // -- Snapshot serialization hooks ----------------------------------------

  /// Raw arena arrays, all of length NodeCount(). The kind array doubles as
  /// the succinct document's kind stream (ranks == NodeIds), so snapshots
  /// store it once.
  std::span<const NodeKind> KindSpan() const { return kinds_; }
  std::span<const NameId> NameSpan() const { return names_; }
  std::span<const NodeId> ParentSpan() const { return parents_; }
  std::span<const NodeId> FirstChildSpan() const { return first_children_; }
  std::span<const NodeId> NextSiblingSpan() const { return next_siblings_; }
  std::span<const NodeId> FirstAttrSpan() const { return first_attrs_; }
  std::span<const uint32_t> TextOffsetSpan() const { return text_offsets_; }
  std::span<const uint32_t> TextLengthSpan() const { return text_lengths_; }
  std::string_view TextBufferView() const { return text_buffer_; }

 private:
  NodeId NewNode(NodeKind kind, NameId name, NodeId parent);
  void AppendChild(NodeId parent, NodeId child);
  void SetText(NodeId n, std::string_view text);

  std::shared_ptr<NamePool> pool_;

  // Struct-of-arrays node storage; all indexed by NodeId.
  std::vector<NodeKind> kinds_;
  std::vector<NameId> names_;
  std::vector<NodeId> parents_;
  std::vector<NodeId> first_children_;
  std::vector<NodeId> last_children_;   // building-time tail pointers
  std::vector<NodeId> next_siblings_;
  std::vector<NodeId> first_attrs_;
  std::vector<NodeId> last_attrs_;
  std::vector<uint32_t> text_offsets_;  // into text_buffer_
  std::vector<uint32_t> text_lengths_;

  std::string text_buffer_;
  size_t element_count_ = 0;
};

}  // namespace xmlq::xml

#endif  // XMLQ_XML_DOCUMENT_H_
