#include "xmlq/xml/name_pool.h"

namespace xmlq::xml {

NameId NamePool::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  NameId id = static_cast<NameId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

NameId NamePool::Find(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidName : it->second;
}

}  // namespace xmlq::xml
