#ifndef XMLQ_XML_NAME_POOL_H_
#define XMLQ_XML_NAME_POOL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace xmlq::xml {

/// Dense identifier for an interned element/attribute name.
using NameId = uint32_t;

/// Sentinel for "no name" (text/comment nodes, unknown lookups).
inline constexpr NameId kInvalidName = UINT32_MAX;

/// Interning table mapping element/attribute names to dense 32-bit ids.
///
/// A `Document` owns one pool; the storage layer reuses the same ids so that
/// tag comparisons across the DOM, the succinct store and the region index
/// are integer compares. Lookup of a missing name is non-mutating
/// (`Find`) so query compilation over a fixed document can cheaply conclude
/// "this tag never occurs".
class NamePool {
 public:
  NamePool() = default;
  NamePool(const NamePool&) = delete;
  NamePool& operator=(const NamePool&) = delete;

  /// Returns the id for `name`, interning it if new.
  NameId Intern(std::string_view name);

  /// Returns the id for `name` or kInvalidName if it was never interned.
  NameId Find(std::string_view name) const;

  /// Returns the name for a valid id. `id` must be < size().
  std::string_view NameOf(NameId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  // Deque so already-interned strings never move: the unordered_map keys are
  // string_views into these elements (SSO data would move in a vector).
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, NameId> index_;
};

}  // namespace xmlq::xml

#endif  // XMLQ_XML_NAME_POOL_H_
