#include "xmlq/xml/parser.h"

#include <cctype>
#include <cstdio>

#include "xmlq/base/fault_injector.h"
#include "xmlq/base/strings.h"

namespace xmlq::xml {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '-' || c == '.';
}

/// Appends the UTF-8 encoding of `cp` to `out`. Invalid code points are
/// replaced with U+FFFD.
void AppendCodepoint(uint32_t cp, std::string* out) {
  if (cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) cp = 0xFFFD;
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

StreamParser::StreamParser(std::string_view input, ParseOptions options)
    : input_(input), options_(options) {
  // Skip a UTF-8 BOM if present.
  if (input_.size() >= 3 && static_cast<unsigned char>(input_[0]) == 0xEF &&
      static_cast<unsigned char>(input_[1]) == 0xBB &&
      static_cast<unsigned char>(input_[2]) == 0xBF) {
    pos_ = 3;
  }
  if (options_.max_input_bytes != 0 &&
      input_.size() > options_.max_input_bytes) {
    error_ = Error("input of " + std::to_string(input_.size()) +
                   " bytes exceeds max_input_bytes=" +
                   std::to_string(options_.max_input_bytes));
  }
}

Status StreamParser::Error(std::string message) const {
  char prefix[48];
  std::snprintf(prefix, sizeof(prefix), "line %d, column %d: ", line_,
                column_);
  return Status::ParseError(prefix + std::move(message));
}

void StreamParser::Advance() {
  if (input_[pos_] == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  ++pos_;
}

void StreamParser::SkipWhitespace() {
  while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\r' ||
                      Peek() == '\n')) {
    Advance();
  }
}

bool StreamParser::ConsumeLiteral(std::string_view lit) {
  if (input_.substr(pos_, lit.size()) != lit) return false;
  for (size_t i = 0; i < lit.size(); ++i) Advance();
  return true;
}

Result<std::string_view> StreamParser::ReadName() {
  if (AtEnd() || !IsNameStartChar(Peek())) {
    return Error("expected a name");
  }
  size_t start = pos_;
  while (!AtEnd() && IsNameChar(Peek())) Advance();
  return input_.substr(start, pos_ - start);
}

Result<std::string_view> StreamParser::ReadText(char terminator) {
  size_t start = pos_;
  bool needs_decode = false;
  size_t scan = pos_;
  while (scan < input_.size() && input_[scan] != terminator) {
    char c = input_[scan];
    if (c == '&' || c == '\r') needs_decode = true;
    if (terminator != '<' && c == '<') {
      // '<' is illegal inside attribute values.
      while (pos_ < scan) Advance();
      return Error("'<' not allowed in attribute value");
    }
    ++scan;
  }
  if (scan >= input_.size() && terminator != '<') {
    return Error("unterminated attribute value");
  }
  if (!needs_decode) {
    std::string_view raw = input_.substr(start, scan - start);
    while (pos_ < scan) Advance();
    return raw;
  }
  // Slow path: decode into scratch.
  text_scratch_.clear();
  while (!AtEnd() && Peek() != terminator) {
    char c = Peek();
    if (c == '&') {
      Advance();
      if (options_.max_entity_expansions != 0 &&
          ++entity_expansions_ > options_.max_entity_expansions) {
        return Error("entity expansion count exceeds max_entity_expansions=" +
                     std::to_string(options_.max_entity_expansions));
      }
      if (ConsumeLiteral("lt;")) {
        text_scratch_.push_back('<');
      } else if (ConsumeLiteral("gt;")) {
        text_scratch_.push_back('>');
      } else if (ConsumeLiteral("amp;")) {
        text_scratch_.push_back('&');
      } else if (ConsumeLiteral("apos;")) {
        text_scratch_.push_back('\'');
      } else if (ConsumeLiteral("quot;")) {
        text_scratch_.push_back('"');
      } else if (!AtEnd() && Peek() == '#') {
        Advance();
        int base = 10;
        if (!AtEnd() && (Peek() == 'x' || Peek() == 'X')) {
          base = 16;
          Advance();
        }
        uint32_t cp = 0;
        size_t digits = 0;
        while (!AtEnd() && Peek() != ';') {
          char d = Peek();
          int v;
          if (d >= '0' && d <= '9') {
            v = d - '0';
          } else if (base == 16 && d >= 'a' && d <= 'f') {
            v = d - 'a' + 10;
          } else if (base == 16 && d >= 'A' && d <= 'F') {
            v = d - 'A' + 10;
          } else {
            return Error("malformed character reference");
          }
          cp = cp * base + static_cast<uint32_t>(v);
          if (cp > 0x10FFFF) cp = 0x110000;  // clamp; flagged by Append
          ++digits;
          Advance();
        }
        if (digits == 0 || AtEnd()) {
          return Error("malformed character reference");
        }
        Advance();  // ';'
        AppendCodepoint(cp, &text_scratch_);
      } else {
        return Error("unknown entity reference");
      }
    } else if (c == '\r') {
      // Normalize CRLF and bare CR to LF per XML 1.0 §2.11.
      Advance();
      if (!AtEnd() && Peek() == '\n') Advance();
      text_scratch_.push_back('\n');
    } else {
      text_scratch_.push_back(c);
      Advance();
    }
  }
  if (AtEnd() && terminator != '<') {
    return Error("unterminated attribute value");
  }
  return std::string_view(text_scratch_);
}

Status StreamParser::ReadAttributes() {
  attributes_.clear();
  attr_scratch_.clear();
  while (true) {
    SkipWhitespace();
    if (AtEnd()) return Error("unterminated start tag");
    char c = Peek();
    if (c == '>' || c == '/') return Status::Ok();
    XMLQ_ASSIGN_OR_RETURN(std::string_view name, ReadName());
    SkipWhitespace();
    if (AtEnd() || Peek() != '=') return Error("expected '=' after attribute name");
    Advance();
    SkipWhitespace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    char quote = Peek();
    Advance();
    XMLQ_ASSIGN_OR_RETURN(std::string_view value, ReadText(quote));
    // ReadText leaves the view either into the input or into text_scratch_;
    // copy decoded values so multiple attributes don't clobber each other.
    if (value.data() == text_scratch_.data()) {
      attr_scratch_.push_back(std::string(value));
      value = attr_scratch_.back();
    }
    if (AtEnd() || Peek() != quote) return Error("unterminated attribute value");
    Advance();
    for (const Attribute& prev : attributes_) {
      if (prev.name == name) {
        return Error("duplicate attribute '" + std::string(name) + "'");
      }
    }
    if (options_.max_attributes != 0 &&
        attributes_.size() >= options_.max_attributes) {
      return Error("element has more than max_attributes=" +
                   std::to_string(options_.max_attributes) + " attributes");
    }
    attributes_.push_back(Attribute{name, value});
  }
}

Status StreamParser::SkipDoctype() {
  // We are positioned just past "<!DOCTYPE". Skip to the matching '>',
  // honouring an internal subset in [...].
  int bracket_depth = 0;
  while (!AtEnd()) {
    char c = Peek();
    if (c == '[') {
      ++bracket_depth;
    } else if (c == ']') {
      --bracket_depth;
    } else if (c == '>' && bracket_depth == 0) {
      Advance();
      return Status::Ok();
    }
    Advance();
  }
  return Error("unterminated DOCTYPE");
}

Result<ParseEvent> StreamParser::Next() {
  if (!error_.ok()) return error_;
  if (pending_end_) {
    pending_end_ = false;
    ParseEvent ev;
    ev.kind = ParseEvent::Kind::kEndElement;
    ev.name = pending_end_name_;
    return ev;
  }
  if (done_) {
    ParseEvent ev;
    ev.kind = ParseEvent::Kind::kEndDocument;
    return ev;
  }

  auto fail = [this](Status st) -> Result<ParseEvent> {
    error_ = std::move(st);
    return error_;
  };

  // Test-only fault hooks (no-ops unless a test armed them): simulate an
  // allocation failure inside the parser, or truncate the input at the
  // current position so the normal unexpected-EOF paths fire mid-document.
  if (XMLQ_FAULT("xml.parser.alloc")) {
    return fail(Status::ResourceExhausted(
        "injected allocation failure in parser"));
  }
  if (XMLQ_FAULT("xml.parser.eof")) {
    input_ = input_.substr(0, pos_);
  }

  while (true) {
    if (AtEnd()) {
      if (!open_elements_.empty()) {
        return fail(Error("unexpected end of input: <" + open_elements_.back() +
                          "> is not closed"));
      }
      done_ = true;
      ParseEvent ev;
      ev.kind = ParseEvent::Kind::kEndDocument;
      return ev;
    }
    if (Peek() != '<') {
      auto text = ReadText('<');
      if (!text.ok()) return fail(text.status());
      std::string_view value = text.value();
      if (options_.drop_whitespace_text && IsAllWhitespace(value)) continue;
      if (open_elements_.empty()) {
        if (!IsAllWhitespace(value)) {
          return fail(Error("character data outside the root element"));
        }
        continue;
      }
      ParseEvent ev;
      ev.kind = ParseEvent::Kind::kText;
      ev.text = value;
      return ev;
    }

    // Markup.
    Advance();  // '<'
    if (AtEnd()) return fail(Error("unexpected end of input after '<'"));
    char c = Peek();
    if (c == '!') {
      Advance();
      if (ConsumeLiteral("--")) {
        size_t end = input_.find("-->", pos_);
        if (end == std::string_view::npos) {
          return fail(Error("unterminated comment"));
        }
        size_t start = pos_;
        while (pos_ < end) Advance();
        for (int i = 0; i < 3; ++i) Advance();  // "-->"
        if (options_.keep_comments && !open_elements_.empty()) {
          ParseEvent ev;
          ev.kind = ParseEvent::Kind::kComment;
          ev.text = input_.substr(start, end - start);
          return ev;
        }
        continue;
      }
      if (ConsumeLiteral("[CDATA[")) {
        size_t end = input_.find("]]>", pos_);
        if (end == std::string_view::npos) {
          return fail(Error("unterminated CDATA section"));
        }
        size_t start = pos_;
        while (pos_ < end) Advance();
        for (int i = 0; i < 3; ++i) Advance();  // "]]>"
        if (open_elements_.empty()) {
          return fail(Error("CDATA outside the root element"));
        }
        std::string_view value = input_.substr(start, end - start);
        if (options_.drop_whitespace_text && IsAllWhitespace(value)) continue;
        ParseEvent ev;
        ev.kind = ParseEvent::Kind::kText;
        ev.text = value;
        return ev;
      }
      if (ConsumeLiteral("DOCTYPE")) {
        Status st = SkipDoctype();
        if (!st.ok()) return fail(std::move(st));
        continue;
      }
      return fail(Error("unrecognized markup declaration"));
    }
    if (c == '?') {
      Advance();
      auto target = ReadName();
      if (!target.ok()) return fail(target.status());
      size_t end = input_.find("?>", pos_);
      if (end == std::string_view::npos) {
        return fail(Error("unterminated processing instruction"));
      }
      size_t start = pos_;
      while (pos_ < end) Advance();
      Advance();
      Advance();  // "?>"
      if (target.value() == "xml") continue;  // XML declaration
      if (options_.keep_processing_instructions && !open_elements_.empty()) {
        ParseEvent ev;
        ev.kind = ParseEvent::Kind::kProcessingInstruction;
        ev.name = target.value();
        ev.text = TrimWhitespace(input_.substr(start, end - start));
        return ev;
      }
      continue;
    }
    if (c == '/') {
      Advance();
      auto name = ReadName();
      if (!name.ok()) return fail(name.status());
      SkipWhitespace();
      if (AtEnd() || Peek() != '>') return fail(Error("expected '>'"));
      Advance();
      if (open_elements_.empty()) {
        return fail(Error("unmatched end tag </" + std::string(name.value()) +
                          ">"));
      }
      if (open_elements_.back() != name.value()) {
        return fail(Error("mismatched end tag: expected </" +
                          open_elements_.back() + ">, found </" +
                          std::string(name.value()) + ">"));
      }
      open_elements_.pop_back();
      ParseEvent ev;
      ev.kind = ParseEvent::Kind::kEndElement;
      ev.name = name.value();
      return ev;
    }

    // Start tag.
    auto name = ReadName();
    if (!name.ok()) return fail(name.status());
    if (open_elements_.empty() && root_seen_) {
      return fail(Error("multiple root elements"));
    }
    if (options_.max_depth != 0 &&
        open_elements_.size() >= options_.max_depth) {
      return fail(Error("element <" + std::string(name.value()) +
                        "> nested deeper than max_depth=" +
                        std::to_string(options_.max_depth)));
    }
    Status st = ReadAttributes();
    if (!st.ok()) return fail(std::move(st));
    bool self_closing = false;
    if (!AtEnd() && Peek() == '/') {
      self_closing = true;
      Advance();
    }
    if (AtEnd() || Peek() != '>') return fail(Error("expected '>'"));
    Advance();
    root_seen_ = true;
    if (self_closing) {
      pending_end_ = true;
      pending_end_name_ = std::string(name.value());
    } else {
      open_elements_.push_back(std::string(name.value()));
    }
    ParseEvent ev;
    ev.kind = ParseEvent::Kind::kStartElement;
    ev.name = name.value();
    return ev;
  }
}

Result<Document> ParseDocument(std::string_view input, ParseOptions options) {
  return ParseDocument(input, std::make_shared<NamePool>(), options);
}

Result<Document> ParseDocument(std::string_view input,
                               std::shared_ptr<NamePool> pool,
                               ParseOptions options) {
  StreamParser parser(input, options);
  Document doc(std::move(pool));
  std::vector<NodeId> stack = {doc.root()};
  bool saw_root = false;
  while (true) {
    XMLQ_ASSIGN_OR_RETURN(ParseEvent ev, parser.Next());
    switch (ev.kind) {
      case ParseEvent::Kind::kStartElement: {
        NodeId elem = doc.AddElement(stack.back(), ev.name);
        for (const StreamParser::Attribute& attr : parser.attributes()) {
          doc.AddAttribute(elem, attr.name, attr.value);
        }
        stack.push_back(elem);
        saw_root = true;
        break;
      }
      case ParseEvent::Kind::kEndElement:
        stack.pop_back();
        break;
      case ParseEvent::Kind::kText:
        doc.AddText(stack.back(), ev.text);
        break;
      case ParseEvent::Kind::kComment:
        doc.AddComment(stack.back(), ev.text);
        break;
      case ParseEvent::Kind::kProcessingInstruction:
        doc.AddProcessingInstruction(stack.back(), ev.name, ev.text);
        break;
      case ParseEvent::Kind::kEndDocument:
        if (!saw_root) {
          return Status::ParseError("document has no root element");
        }
        return doc;
    }
  }
}

}  // namespace xmlq::xml
