#ifndef XMLQ_XML_PARSER_H_
#define XMLQ_XML_PARSER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "xmlq/base/status.h"
#include "xmlq/xml/document.h"

namespace xmlq::xml {

/// Parser behaviour knobs.
struct ParseOptions {
  /// Drop text nodes that are entirely XML whitespace (typical for
  /// data-centric documents; the paper's workloads are data-centric).
  bool drop_whitespace_text = true;
  /// Keep comment nodes in the tree.
  bool keep_comments = false;
  /// Keep processing-instruction nodes in the tree.
  bool keep_processing_instructions = false;

  // Hardening limits. Each is enforced in StreamParser with line/column in
  // the error message; 0 means "unlimited". The defaults are generous
  // enough for any sane document while bounding the damage a hostile input
  // can do (deep-nesting stack/arena blowup, attribute floods,
  // billion-laughs-style entity amplification, oversized payloads).

  /// Maximum element nesting depth.
  size_t max_depth = 1 << 20;
  /// Maximum attributes on a single element.
  size_t max_attributes = 65535;
  /// Maximum entity references + character references decoded across the
  /// whole parse.
  uint64_t max_entity_expansions = 1 << 24;
  /// Maximum input size in bytes (checked up front). Default unlimited.
  uint64_t max_input_bytes = 0;
};

/// One event of the streaming (pull) parser. Events reference the input
/// buffer where possible; `text` is decoded into an internal scratch buffer
/// when entities are present, so views are valid until the next Next() call.
struct ParseEvent {
  enum class Kind {
    kStartElement,   // name set; attributes available via reader
    kEndElement,     // name set
    kText,           // text set (entity-decoded)
    kComment,        // text set
    kProcessingInstruction,  // name = target, text = body
    kEndDocument,
  };
  Kind kind = Kind::kEndDocument;
  std::string_view name;
  std::string_view text;
};

/// Streaming pull parser over an in-memory XML buffer.
///
/// The succinct storage scheme linearizes nodes in pre-order, which
/// "coincides with the streaming XML element arrival order" (paper §4.2);
/// this reader is the streaming source for both document loading and the
/// streaming NoK evaluation experiment (E3).
class StreamParser {
 public:
  /// `input` must outlive the parser.
  explicit StreamParser(std::string_view input, ParseOptions options = {});

  /// Advances to the next event. After kEndDocument (or an error) further
  /// calls keep returning the same outcome.
  Result<ParseEvent> Next();

  /// Attributes of the most recent kStartElement event, in document order.
  /// Views are valid until the next Next() call.
  struct Attribute {
    std::string_view name;
    std::string_view value;
  };
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// 1-based position of the current parse point (for error messages).
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  Status Error(std::string message) const;
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < input_.size() ? input_[pos_ + off] : '\0';
  }
  void Advance();
  void SkipWhitespace();
  bool ConsumeLiteral(std::string_view lit);
  Result<std::string_view> ReadName();
  /// Decodes character data up to (not including) the next '<'. Handles the
  /// five predefined entities and numeric character references.
  Result<std::string_view> ReadText(char terminator);
  Status ReadAttributes();
  Result<ParseEvent> ReadMarkup();
  Status SkipDoctype();

  std::string_view input_;
  ParseOptions options_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;

  std::vector<Attribute> attributes_;
  std::vector<std::string> open_elements_;
  // Scratch buffers for entity-decoded text and attribute values. The deque
  // keeps earlier decoded values stable while later attributes are decoded.
  std::string text_scratch_;
  std::deque<std::string> attr_scratch_;
  bool pending_end_ = false;  // self-closing tag: emit End after Start
  std::string pending_end_name_;
  bool root_seen_ = false;
  bool done_ = false;
  uint64_t entity_expansions_ = 0;
  Status error_;
};

/// Parses a complete document into a DOM tree. On success the returned
/// document satisfies `IsPreorder()`.
Result<Document> ParseDocument(std::string_view input,
                               ParseOptions options = {});

/// Parses using a caller-supplied shared NamePool (for multi-document
/// corpora sharing one query vocabulary).
Result<Document> ParseDocument(std::string_view input,
                               std::shared_ptr<NamePool> pool,
                               ParseOptions options = {});

}  // namespace xmlq::xml

#endif  // XMLQ_XML_PARSER_H_
