#include "xmlq/xml/serializer.h"

#include <vector>

namespace xmlq::xml {

namespace {

void AppendEscapedText(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '&':
        out->append("&amp;");
        break;
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      default:
        out->push_back(c);
    }
  }
}

void AppendEscapedAttribute(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '&':
        out->append("&amp;");
        break;
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      case '"':
        out->append("&quot;");
        break;
      case '\n':
        out->append("&#10;");
        break;
      case '\t':
        out->append("&#9;");
        break;
      default:
        out->push_back(c);
    }
  }
}

class Writer {
 public:
  Writer(const Document& doc, SerializeOptions options, std::string* out)
      : doc_(doc), options_(options), out_(out) {}

  /// Iterative pre-order emit with an explicit task stack — recursion here
  /// would overflow the call stack on very deep documents (the engine
  /// accepts documents up to ParseOptions::max_depth deep, far beyond what
  /// the C++ stack can absorb at ~100 bytes/frame).
  void WriteNode(NodeId start, int start_depth) {
    struct Task {
      enum class Kind { kNode, kCloseElement, kNewlineIndent } kind;
      NodeId node = kNullNode;
      int depth = 0;
      bool pretty = false;
    };
    std::vector<Task> stack;
    stack.push_back({Task::Kind::kNode, start, start_depth, false});
    std::vector<NodeId> children;  // scratch, consumed per task
    while (!stack.empty()) {
      const Task t = stack.back();
      stack.pop_back();
      if (t.kind == Task::Kind::kNewlineIndent) {
        out_->push_back('\n');
        Indent(t.depth);
        continue;
      }
      if (t.kind == Task::Kind::kCloseElement) {
        if (t.pretty) {
          out_->push_back('\n');
          Indent(t.depth);
        }
        out_->append("</");
        out_->append(doc_.NameStr(t.node));
        out_->push_back('>');
        continue;
      }
      const NodeId n = t.node;
      switch (doc_.Kind(n)) {
        case NodeKind::kDocument: {
          children.clear();
          for (NodeId c = doc_.FirstChild(n); c != kNullNode;
               c = doc_.NextSibling(c)) {
            children.push_back(c);
          }
          // Each child is followed by a newline when indenting; push in
          // reverse so the stack pops in document order.
          for (size_t i = children.size(); i-- > 0;) {
            if (options_.indent) {
              stack.push_back({Task::Kind::kNewlineIndent, kNullNode, 0,
                               false});
            }
            stack.push_back({Task::Kind::kNode, children[i], t.depth, false});
          }
          break;
        }
        case NodeKind::kElement: {
          out_->push_back('<');
          out_->append(doc_.NameStr(n));
          for (NodeId a = doc_.FirstAttr(n); a != kNullNode;
               a = doc_.NextSibling(a)) {
            out_->push_back(' ');
            out_->append(doc_.NameStr(a));
            out_->append("=\"");
            AppendEscapedAttribute(doc_.Text(a), out_);
            out_->push_back('"');
          }
          NodeId first = doc_.FirstChild(n);
          if (first == kNullNode) {
            out_->append("/>");
            break;
          }
          out_->push_back('>');
          const bool pretty = options_.indent && ElementOnlyContent(n);
          stack.push_back({Task::Kind::kCloseElement, n, t.depth, pretty});
          children.clear();
          for (NodeId c = first; c != kNullNode; c = doc_.NextSibling(c)) {
            children.push_back(c);
          }
          // Pretty children are each preceded by newline+indent; push the
          // node first so its newline pops before it.
          for (size_t i = children.size(); i-- > 0;) {
            stack.push_back(
                {Task::Kind::kNode, children[i], t.depth + 1, false});
            if (pretty) {
              stack.push_back({Task::Kind::kNewlineIndent, kNullNode,
                               t.depth + 1, false});
            }
          }
          break;
        }
        case NodeKind::kText:
          AppendEscapedText(doc_.Text(n), out_);
          break;
        case NodeKind::kComment:
          out_->append("<!--");
          out_->append(doc_.Text(n));
          out_->append("-->");
          break;
        case NodeKind::kProcessingInstruction:
          out_->append("<?");
          out_->append(doc_.NameStr(n));
          if (!doc_.Text(n).empty()) {
            out_->push_back(' ');
            out_->append(doc_.Text(n));
          }
          out_->append("?>");
          break;
        case NodeKind::kAttribute:
          // Attributes are serialized as part of their owner element;
          // writing one directly yields its value text (useful in query
          // output).
          AppendEscapedText(doc_.Text(n), out_);
          break;
      }
    }
  }

 private:
  void Indent(int depth) {
    for (int i = 0; i < depth; ++i) out_->append("  ");
  }

  /// True if every child of `n` is an element/comment/PI (no text), so
  /// pretty-printing may add whitespace without changing the string-value.
  bool ElementOnlyContent(NodeId n) {
    for (NodeId c = doc_.FirstChild(n); c != kNullNode;
         c = doc_.NextSibling(c)) {
      if (doc_.Kind(c) == NodeKind::kText) return false;
    }
    return true;
  }

  const Document& doc_;
  SerializeOptions options_;
  std::string* out_;
};

}  // namespace

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  AppendEscapedText(text, &out);
  return out;
}

std::string EscapeAttribute(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  AppendEscapedAttribute(text, &out);
  return out;
}

std::string Serialize(const Document& doc, NodeId node,
                      SerializeOptions options) {
  std::string out;
  if (options.xml_declaration) {
    out.append("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    if (options.indent) out.push_back('\n');
  }
  Writer writer(doc, options, &out);
  writer.WriteNode(node, 0);
  // Drop a trailing newline the document-node case may leave behind.
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

std::string Serialize(const Document& doc, SerializeOptions options) {
  return Serialize(doc, doc.root(), options);
}

}  // namespace xmlq::xml
