#ifndef XMLQ_XML_SERIALIZER_H_
#define XMLQ_XML_SERIALIZER_H_

#include <string>
#include <string_view>

#include "xmlq/xml/document.h"

namespace xmlq::xml {

/// Serialization knobs.
struct SerializeOptions {
  /// Pretty-print with two-space indentation; element-only content gets one
  /// node per line. Mixed content is left untouched to preserve value.
  bool indent = false;
  /// Emit an `<?xml version="1.0" encoding="UTF-8"?>` declaration first.
  bool xml_declaration = false;
};

/// Escapes `text` for use as element character data (&, <, >).
std::string EscapeText(std::string_view text);

/// Escapes `text` for use inside a double-quoted attribute value
/// (&, <, >, ", plus newline/tab as character references).
std::string EscapeAttribute(std::string_view text);

/// Serializes the subtree rooted at `node` (an element, or the document node
/// for the whole document) to XML text.
std::string Serialize(const Document& doc, NodeId node,
                      SerializeOptions options = {});

/// Serializes the whole document.
std::string Serialize(const Document& doc, SerializeOptions options = {});

}  // namespace xmlq::xml

#endif  // XMLQ_XML_SERIALIZER_H_
