#ifndef XMLQ_XPATH_AST_H_
#define XMLQ_XPATH_AST_H_

#include <string>
#include <vector>

#include "xmlq/algebra/pattern_graph.h"

namespace xmlq::xpath {

struct StepAst;

/// One predicate `[...]` attached to a step. Conjunctions (`p1 and p2`)
/// are flattened into multiple PredAst entries by the parser. A predicate is
/// either an existence test on a relative path, or a comparison between a
/// relative path's value (possibly the context node itself, for `.`) and a
/// literal.
struct PredAst {
  /// Relative path from the context node; empty means the context node
  /// itself (`.`) is compared.
  std::vector<StepAst> path;
  bool has_comparison = false;
  algebra::CompareOp op = algebra::CompareOp::kEq;
  std::string literal;
  bool numeric = false;  // literal was a number token
};

/// One location step: axis, name test and predicates.
struct StepAst {
  algebra::Axis axis = algebra::Axis::kChild;
  std::string name;           // "*" for the wildcard test
  bool is_attribute = false;  // `@name` steps
  std::vector<PredAst> predicates;
};

/// A parsed path expression. Only absolute paths (starting with `/` or
/// `//`) are accepted at the top level; relative paths occur inside
/// predicates.
struct PathAst {
  std::vector<StepAst> steps;
};

}  // namespace xmlq::xpath

#endif  // XMLQ_XPATH_AST_H_
