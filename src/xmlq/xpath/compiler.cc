#include "xmlq/xpath/compiler.h"

#include "xmlq/xpath/parser.h"

namespace xmlq::xpath {

namespace {

using algebra::Axis;
using algebra::PatternGraph;
using algebra::ValuePredicate;
using algebra::VertexId;

/// Adds the vertices for one step (and its predicates) under `parent`;
/// returns the new step vertex.
Result<VertexId> AddStep(PatternGraph* graph, VertexId parent,
                         const StepAst& step);

Status AddPredicates(PatternGraph* graph, VertexId vertex,
                     const std::vector<PredAst>& predicates) {
  for (const PredAst& pred : predicates) {
    if (pred.path.empty()) {
      // `. ⊙ literal` — constraint on the step vertex itself.
      graph->AddPredicate(vertex, ValuePredicate{pred.op, pred.literal,
                                                 pred.numeric});
      continue;
    }
    VertexId cur = vertex;
    for (const StepAst& step : pred.path) {
      XMLQ_ASSIGN_OR_RETURN(cur, AddStep(graph, cur, step));
    }
    if (pred.has_comparison) {
      graph->AddPredicate(cur, ValuePredicate{pred.op, pred.literal,
                                              pred.numeric});
    }
  }
  return Status::Ok();
}

Result<VertexId> AddStep(PatternGraph* graph, VertexId parent,
                         const StepAst& step) {
  const VertexId v =
      graph->AddVertex(parent, step.axis, step.name, step.is_attribute);
  XMLQ_RETURN_IF_ERROR(AddPredicates(graph, v, step.predicates));
  return v;
}

}  // namespace

Result<VertexId> AppendSteps(PatternGraph* graph, VertexId from,
                             std::span<const StepAst> steps) {
  VertexId cur = from;
  for (const StepAst& step : steps) {
    XMLQ_ASSIGN_OR_RETURN(cur, AddStep(graph, cur, step));
  }
  return cur;
}

Status AppendPredicates(PatternGraph* graph, VertexId at,
                        const std::vector<PredAst>& predicates) {
  return AddPredicates(graph, at, predicates);
}

Result<algebra::PatternGraph> CompileToPattern(const PathAst& path) {
  PatternGraph graph;
  XMLQ_ASSIGN_OR_RETURN(VertexId cur,
                        AppendSteps(&graph, graph.root(), path.steps));
  graph.SetOutput(cur);
  XMLQ_RETURN_IF_ERROR(graph.Validate());
  return graph;
}

Result<algebra::LogicalExprPtr> CompileToNavigationChain(
    const PathAst& path, std::string doc_name) {
  algebra::LogicalExprPtr plan = algebra::MakeDocScan(std::move(doc_name));
  for (const StepAst& step : path.steps) {
    plan = algebra::MakeNavigate(std::move(plan), step.axis, step.name,
                                 step.is_attribute);
    for (const PredAst& pred : step.predicates) {
      if (!pred.path.empty() || !pred.has_comparison) {
        return Status::Unsupported(
            "navigation-chain form cannot express structural predicates; "
            "use CompileToPattern");
      }
      plan = algebra::MakeSelectValue(
          std::move(plan),
          ValuePredicate{pred.op, pred.literal, pred.numeric});
    }
    if (step.axis == Axis::kDescendant) {
      // `//` can reach the same node along several paths; the naive chain
      // needs an explicit sort/dedup to stay set-valued.
      plan = algebra::MakeDocOrderDedup(std::move(plan));
    }
  }
  return plan;
}

Result<algebra::LogicalExprPtr> CompilePath(std::string_view path,
                                            std::string doc_name) {
  XMLQ_ASSIGN_OR_RETURN(PathAst ast, ParsePath(path));
  XMLQ_ASSIGN_OR_RETURN(algebra::PatternGraph graph, CompileToPattern(ast));
  return algebra::MakeTreePattern(algebra::MakeDocScan(std::move(doc_name)),
                                  std::move(graph));
}

}  // namespace xmlq::xpath
