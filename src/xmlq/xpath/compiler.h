#ifndef XMLQ_XPATH_COMPILER_H_
#define XMLQ_XPATH_COMPILER_H_

#include <span>
#include <string>
#include <string_view>

#include "xmlq/algebra/logical_plan.h"
#include "xmlq/algebra/pattern_graph.h"
#include "xmlq/xpath/ast.h"

namespace xmlq::xpath {

/// Appends the vertices for `steps` (including their predicate branches)
/// under `from`; returns the final step's vertex. Shared by CompileToPattern
/// and the XQuery translator (which builds patterns from FLWOR paths and
/// per-step predicate filters).
Result<algebra::VertexId> AppendSteps(algebra::PatternGraph* graph,
                                      algebra::VertexId from,
                                      std::span<const StepAst> steps);

/// Attaches a predicate conjunction (branches + value constraints) to
/// vertex `at`.
Status AppendPredicates(algebra::PatternGraph* graph, algebra::VertexId at,
                        const std::vector<PredAst>& predicates);

/// Compiles a parsed path into a tree-shaped PatternGraph (Definition 1):
/// location steps become the spine, predicates become side branches, value
/// comparisons become vertex constraints, and the last spine vertex is the
/// sole output vertex.
Result<algebra::PatternGraph> CompileToPattern(const PathAst& path);

/// Compiles a path into the *naive* logical plan — a chain of πs (Navigate)
/// steps over a DocScan, with σv selections for value predicates where
/// expressible. Predicate structure that a navigation chain cannot express
/// (existence branches, nested predicate paths) makes this return
/// kUnsupported; callers then use CompileToPattern. This form exists so the
/// rewrite rules (navigation folding, σv pushdown) have real input.
Result<algebra::LogicalExprPtr> CompileToNavigationChain(
    const PathAst& path, std::string doc_name);

/// Parses and compiles in one step: produces a TreePattern logical plan
/// over `doc_name`.
Result<algebra::LogicalExprPtr> CompilePath(std::string_view path,
                                            std::string doc_name);

}  // namespace xmlq::xpath

#endif  // XMLQ_XPATH_COMPILER_H_
