#include "xmlq/xpath/lexer.h"

#include <cctype>

namespace xmlq::xpath {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kDoubleSlash:
      return "'//'";
    case TokenKind::kAt:
      return "'@'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kAnd:
      return "'and'";
    case TokenKind::kOr:
      return "'or'";
    case TokenKind::kName:
      return "name";
    case TokenKind::kAxisName:
      return "axis";
    case TokenKind::kString:
      return "string literal";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

Status LexError(size_t offset, std::string message) {
  return Status::ParseError("xpath offset " + std::to_string(offset) + ": " +
                            std::move(message));
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      ++i;
      continue;
    }
    const size_t start = i;
    switch (c) {
      case '/':
        if (i + 1 < n && input[i + 1] == '/') {
          tokens.push_back({TokenKind::kDoubleSlash, "//", start});
          i += 2;
        } else {
          tokens.push_back({TokenKind::kSlash, "/", start});
          ++i;
        }
        continue;
      case '@':
        tokens.push_back({TokenKind::kAt, "@", start});
        ++i;
        continue;
      case '*':
        tokens.push_back({TokenKind::kStar, "*", start});
        ++i;
        continue;
      case '[':
        tokens.push_back({TokenKind::kLBracket, "[", start});
        ++i;
        continue;
      case ']':
        tokens.push_back({TokenKind::kRBracket, "]", start});
        ++i;
        continue;
      case '=':
        tokens.push_back({TokenKind::kEq, "=", start});
        ++i;
        continue;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          tokens.push_back({TokenKind::kNe, "!=", start});
          i += 2;
          continue;
        }
        return LexError(start, "expected '=' after '!'");
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          tokens.push_back({TokenKind::kLe, "<=", start});
          i += 2;
        } else {
          tokens.push_back({TokenKind::kLt, "<", start});
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          tokens.push_back({TokenKind::kGe, ">=", start});
          i += 2;
        } else {
          tokens.push_back({TokenKind::kGt, ">", start});
          ++i;
        }
        continue;
      case '\'':
      case '"': {
        const char quote = c;
        ++i;
        std::string value;
        while (i < n && input[i] != quote) {
          value.push_back(input[i]);
          ++i;
        }
        if (i >= n) return LexError(start, "unterminated string literal");
        ++i;  // closing quote
        tokens.push_back({TokenKind::kString, std::move(value), start});
        continue;
      }
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string value;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        value.push_back(input[i]);
        ++i;
      }
      tokens.push_back({TokenKind::kNumber, std::move(value), start});
      continue;
    }
    if (c == '.') {
      tokens.push_back({TokenKind::kDot, ".", start});
      ++i;
      continue;
    }
    if (IsNameStart(c)) {
      std::string name;
      while (i < n && IsNameChar(input[i])) {
        // A "::" axis separator is not part of the name (single ':' is,
        // for QName-style names).
        if (input[i] == ':' && i + 1 < n && input[i + 1] == ':') break;
        name.push_back(input[i]);
        ++i;
      }
      if (i + 1 < n && input[i] == ':' && input[i + 1] == ':') {
        i += 2;
        tokens.push_back({TokenKind::kAxisName, std::move(name), start});
      } else if (name == "and") {
        tokens.push_back({TokenKind::kAnd, std::move(name), start});
      } else if (name == "or") {
        tokens.push_back({TokenKind::kOr, std::move(name), start});
      } else {
        tokens.push_back({TokenKind::kName, std::move(name), start});
      }
      continue;
    }
    return LexError(start, std::string("unexpected character '") + c + "'");
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace xmlq::xpath
