#ifndef XMLQ_XPATH_LEXER_H_
#define XMLQ_XPATH_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "xmlq/base/status.h"

namespace xmlq::xpath {

enum class TokenKind : uint8_t {
  kSlash,        // /
  kDoubleSlash,  // //
  kAt,           // @
  kStar,         // *
  kDot,          // .
  kLBracket,     // [
  kRBracket,     // ]
  kEq,           // =
  kNe,           // !=
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  kAnd,          // and
  kOr,           // or
  kName,         // NCName
  kAxisName,     // "axis::" prefix (text = axis name, '::' consumed)
  kString,       // 'lit' or "lit"
  kNumber,       // 123, 1.5
  kEnd,
};

std::string_view TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // name / decoded string / number spelling
  size_t offset = 0;  // byte offset in the source (for error messages)
};

/// Tokenizes an XPath expression. Whitespace separates tokens and is
/// otherwise ignored.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace xmlq::xpath

#endif  // XMLQ_XPATH_LEXER_H_
