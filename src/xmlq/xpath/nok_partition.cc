#include "xmlq/xpath/nok_partition.h"

namespace xmlq::xpath {

using algebra::Axis;
using algebra::IsNokAxis;
using algebra::kNoVertex;
using algebra::PatternGraph;
using algebra::VertexId;

NokPartition PartitionNok(const PatternGraph& graph) {
  NokPartition out;
  out.part_of.assign(graph.VertexCount(), -1);

  // Pre-order DFS from the root; vertex ids are already topologically
  // ordered, so iterating in id order visits parents before children.
  for (VertexId v = 0; v < graph.VertexCount(); ++v) {
    const algebra::PatternVertex& vertex = graph.vertex(v);
    // NoK and self arcs keep the vertex in its parent's part; everything
    // else (a cut descendant arc, or the root) starts a new part.
    if (v != graph.root() && (IsNokAxis(vertex.incoming_axis) ||
                              vertex.incoming_axis == Axis::kSelf)) {
      const int part = out.part_of[vertex.parent];
      out.part_of[v] = part;
      out.parts[part].vertices.push_back(v);
      continue;
    }
    NokPart part;
    part.head = v;
    part.vertices.push_back(v);
    if (v != graph.root()) {
      part.attach_vertex = vertex.parent;
      part.parent_part = out.part_of[vertex.parent];
    }
    out.part_of[v] = static_cast<int>(out.parts.size());
    out.parts.push_back(std::move(part));
  }
  return out;
}

std::string NokPartition::ToString(const PatternGraph& graph) const {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    const NokPart& part = parts[i];
    out += "part " + std::to_string(i) + " (head ";
    out += part.head == graph.root() ? "root"
                                     : graph.vertex(part.head).label;
    out += ")";
    if (part.parent_part >= 0) {
      out += " under part " + std::to_string(part.parent_part) + " at ";
      out += graph.vertex(part.attach_vertex).is_root
                 ? "root"
                 : graph.vertex(part.attach_vertex).label;
    }
    out += ":";
    for (VertexId v : part.vertices) {
      out += " ";
      out += graph.vertex(v).is_root ? "root" : graph.vertex(v).label;
    }
    out += "\n";
  }
  return out;
}

}  // namespace xmlq::xpath
