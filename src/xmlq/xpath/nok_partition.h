#ifndef XMLQ_XPATH_NOK_PARTITION_H_
#define XMLQ_XPATH_NOK_PARTITION_H_

#include <string>
#include <vector>

#include "xmlq/algebra/pattern_graph.h"

namespace xmlq::xpath {

/// One maximal next-of-kin (NoK) fragment of a pattern graph: a connected
/// set of vertices whose internal arcs are all local relations (child /
/// attribute / following-sibling). Each fragment can be matched with a
/// single pre-order scan and *no structural joins* (paper §4.2).
struct NokPart {
  /// Topmost vertex of this part in the original graph.
  algebra::VertexId head = algebra::kNoVertex;
  /// All vertices of the part (head first, then pre-order).
  std::vector<algebra::VertexId> vertices;
  /// Index of the part containing `head`'s parent vertex; -1 for the part
  /// holding the pattern root.
  int parent_part = -1;
  /// The vertex (in the original graph) that `head` attaches to via the cut
  /// descendant arc; kNoVertex for the root part.
  algebra::VertexId attach_vertex = algebra::kNoVertex;
};

/// Partition of a pattern graph into NoK fragments connected by the cut
/// descendant arcs. Evaluating a general path expression then becomes: match
/// every part navigationally, and stitch the parts together with structural
/// (ancestor-descendant) joins on the seams — the paper's hybrid strategy.
struct NokPartition {
  std::vector<NokPart> parts;       // topologically ordered, root part first
  std::vector<int> part_of;         // vertex id -> part index

  std::string ToString(const algebra::PatternGraph& graph) const;
};

/// Computes the partition. Every arc that is a NoK axis keeps its endpoints
/// in one part; every kDescendant (and kSelf) arc starts a new part headed
/// by its target.
NokPartition PartitionNok(const algebra::PatternGraph& graph);

}  // namespace xmlq::xpath

#endif  // XMLQ_XPATH_NOK_PARTITION_H_
