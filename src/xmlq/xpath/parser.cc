#include "xmlq/xpath/parser.h"

#include "xmlq/xpath/lexer.h"

namespace xmlq::xpath {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<PredAst>> ParsePredicateList() {
    std::vector<PredAst> out;
    XMLQ_RETURN_IF_ERROR(ParseConjunction(&out));
    if (!AtKind(TokenKind::kEnd)) {
      return Error("trailing tokens after predicate expression");
    }
    return out;
  }

  Result<PathAst> ParseAbsolutePath() {
    PathAst path;
    if (!AtKind(TokenKind::kSlash) && !AtKind(TokenKind::kDoubleSlash)) {
      return Error("path must start with '/' or '//'");
    }
    while (AtKind(TokenKind::kSlash) || AtKind(TokenKind::kDoubleSlash)) {
      const bool descendant = AtKind(TokenKind::kDoubleSlash);
      ++pos_;
      XMLQ_ASSIGN_OR_RETURN(StepAst step, ParseStep(descendant));
      path.steps.push_back(std::move(step));
    }
    if (!AtKind(TokenKind::kEnd)) {
      return Error("trailing tokens after path expression");
    }
    if (path.steps.empty()) return Error("empty path expression");
    return path;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  bool AtKind(TokenKind kind) const { return Peek().kind == kind; }

  Status Error(std::string message) const {
    return Status::ParseError("xpath offset " +
                              std::to_string(Peek().offset) + ": " +
                              std::move(message));
  }

  Result<StepAst> ParseStep(bool descendant) {
    StepAst step;
    step.axis =
        descendant ? algebra::Axis::kDescendant : algebra::Axis::kChild;
    if (AtKind(TokenKind::kAxisName)) {
      if (descendant) {
        return Error("'//' cannot be combined with an explicit axis");
      }
      const std::string& axis = Peek().text;
      if (axis == "child") {
        step.axis = algebra::Axis::kChild;
      } else if (axis == "descendant") {
        step.axis = algebra::Axis::kDescendant;
      } else if (axis == "attribute") {
        step.axis = algebra::Axis::kAttribute;
        step.is_attribute = true;
      } else if (axis == "following-sibling") {
        step.axis = algebra::Axis::kFollowingSibling;
      } else if (axis == "self") {
        step.axis = algebra::Axis::kSelf;
      } else {
        return Status::Unsupported("axis '" + axis +
                                   "' is outside the supported subset");
      }
      ++pos_;
    } else if (AtKind(TokenKind::kAt)) {
      ++pos_;
      step.is_attribute = true;
      step.axis = algebra::Axis::kAttribute;
      if (descendant) {
        // `//@a` means any attribute named a anywhere; model as
        // descendant-or-self::*/@a — not in the NoK subset but fine for the
        // pattern graph: we encode it as a descendant arc to an attribute
        // vertex, which matchers interpret as "attribute of any descendant".
        step.axis = algebra::Axis::kDescendant;
      }
    }
    if (AtKind(TokenKind::kName)) {
      step.name = Peek().text;
      ++pos_;
    } else if (AtKind(TokenKind::kStar)) {
      step.name = "*";
      ++pos_;
    } else {
      return Error("expected a name test, found " +
                   std::string(TokenKindName(Peek().kind)));
    }
    while (AtKind(TokenKind::kLBracket)) {
      ++pos_;
      XMLQ_RETURN_IF_ERROR(ParseConjunction(&step.predicates));
      if (!AtKind(TokenKind::kRBracket)) {
        return Error("expected ']' to close predicate");
      }
      ++pos_;
    }
    return step;
  }

  Status ParseConjunction(std::vector<PredAst>* out) {
    while (true) {
      XMLQ_ASSIGN_OR_RETURN(PredAst pred, ParseTerm());
      out->push_back(std::move(pred));
      if (AtKind(TokenKind::kAnd)) {
        ++pos_;
        continue;
      }
      if (AtKind(TokenKind::kOr)) {
        return Status::Unsupported(
            "'or' in predicates is outside the supported XPath subset");
      }
      return Status::Ok();
    }
  }

  Result<PredAst> ParseTerm() {
    PredAst pred;
    if (AtKind(TokenKind::kDot)) {
      ++pos_;
      if (AtKind(TokenKind::kSlash) || AtKind(TokenKind::kDoubleSlash)) {
        // `.//path` / `./path`: a relative path from the context node.
        bool descendant = AtKind(TokenKind::kDoubleSlash);
        ++pos_;
        while (true) {
          XMLQ_ASSIGN_OR_RETURN(StepAst step, ParseStep(descendant));
          pred.path.push_back(std::move(step));
          if (AtKind(TokenKind::kSlash)) {
            descendant = false;
            ++pos_;
            continue;
          }
          if (AtKind(TokenKind::kDoubleSlash)) {
            descendant = true;
            ++pos_;
            continue;
          }
          break;
        }
        XMLQ_RETURN_IF_ERROR(ParseComparison(&pred, /*required=*/false));
        return pred;
      }
      // Bare `.` must be followed by a comparison.
      XMLQ_RETURN_IF_ERROR(ParseComparison(&pred, /*required=*/true));
      return pred;
    }
    if (AtKind(TokenKind::kNumber)) {
      return Status::Unsupported(
          "positional predicates are outside the supported XPath subset");
    }
    // Relative path: step ((/ | //) step)*.
    bool descendant = false;
    while (true) {
      XMLQ_ASSIGN_OR_RETURN(StepAst step, ParseStep(descendant));
      pred.path.push_back(std::move(step));
      if (AtKind(TokenKind::kSlash)) {
        descendant = false;
        ++pos_;
        continue;
      }
      if (AtKind(TokenKind::kDoubleSlash)) {
        descendant = true;
        ++pos_;
        continue;
      }
      break;
    }
    XMLQ_RETURN_IF_ERROR(ParseComparison(&pred, /*required=*/false));
    return pred;
  }

  Status ParseComparison(PredAst* pred, bool required) {
    algebra::CompareOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = algebra::CompareOp::kEq;
        break;
      case TokenKind::kNe:
        op = algebra::CompareOp::kNe;
        break;
      case TokenKind::kLt:
        op = algebra::CompareOp::kLt;
        break;
      case TokenKind::kLe:
        op = algebra::CompareOp::kLe;
        break;
      case TokenKind::kGt:
        op = algebra::CompareOp::kGt;
        break;
      case TokenKind::kGe:
        op = algebra::CompareOp::kGe;
        break;
      default:
        if (required) return Error("expected a comparison operator");
        return Status::Ok();  // pure existence predicate
    }
    ++pos_;
    if (AtKind(TokenKind::kString)) {
      pred->literal = Peek().text;
      pred->numeric = false;
    } else if (AtKind(TokenKind::kNumber)) {
      pred->literal = Peek().text;
      pred->numeric = true;
    } else {
      return Error("expected a string or number literal after comparison");
    }
    ++pos_;
    pred->has_comparison = true;
    pred->op = op;
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<PathAst> ParsePath(std::string_view input) {
  XMLQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseAbsolutePath();
}

Result<std::vector<PredAst>> ParsePredicateExpression(std::string_view input) {
  XMLQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParsePredicateList();
}

}  // namespace xmlq::xpath
