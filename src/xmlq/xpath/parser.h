#ifndef XMLQ_XPATH_PARSER_H_
#define XMLQ_XPATH_PARSER_H_

#include <string_view>

#include "xmlq/base/status.h"
#include "xmlq/xpath/ast.h"

namespace xmlq::xpath {

/// Parses an absolute path expression over the supported subset:
///
///   Path      := ('/' | '//') Step (('/' | '//') Step)*
///   Step      := '@'? (Name | '*') Predicate*
///   Predicate := '[' Conj ']'
///   Conj      := Term ('and' Term)*
///   Term      := RelPath (CmpOp Literal)?  |  '.' CmpOp Literal
///   RelPath   := Step (('/' | '//') Step)*
///   CmpOp     := '=' | '!=' | '<' | '<=' | '>' | '>='
///
/// Positional predicates, the `or` connective and reverse axes are outside
/// the subset and yield kUnsupported, matching the paper's scoping of a
/// complete-but-safe fragment (§3.1).
Result<PathAst> ParsePath(std::string_view input);

/// Parses the *inside* of a predicate bracket — `Conj` in the grammar above
/// (e.g. `author/last = 'Stevens' and @year`), returning the flattened
/// conjunction. Used by the XQuery front end, whose path steps delegate
/// their `[...]` bodies to this grammar.
Result<std::vector<PredAst>> ParsePredicateExpression(std::string_view input);

}  // namespace xmlq::xpath

#endif  // XMLQ_XPATH_PARSER_H_
