#ifndef XMLQ_XQUERY_AST_H_
#define XMLQ_XQUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "xmlq/algebra/logical_plan.h"
#include "xmlq/algebra/pattern_graph.h"
#include "xmlq/xpath/ast.h"

namespace xmlq::xquery {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : uint8_t {
  kStringLiteral,  // str
  kNumberLiteral,  // number
  kVarRef,         // str = variable name (without '$')
  kFunctionCall,   // str = function name, children = arguments
  kSequence,       // children = comma-separated expressions
  kBinary,         // binop, children[0..1]
  kIf,             // children = condition, then, else
  kFlwor,          // clauses; children = clause exprs + return (last)
  kPath,           // children[0] = base (null => absolute over default doc),
                   // steps = location steps
  kConstructor,    // str = element name, attrs, content
};

/// One location step of an XQuery path expression. Steps reuse the XPath
/// front end's representation, so `[...]` predicates (existence branches and
/// value comparisons) are available in FLWOR paths too.
using PathStep = xpath::StepAst;

/// for/let/where/order-by clause; `expr_child` indexes into Expr::children.
struct ClauseAst {
  enum class Kind : uint8_t { kFor, kLet, kWhere, kOrderBy };
  Kind kind = Kind::kFor;
  std::string var;
  size_t expr_child = 0;
  bool descending = false;
};

/// A constructed attribute: literal text or a single `{expr}`
/// (`expr_child` indexes into Expr::children; kNoChild for literals).
struct AttrAst {
  static constexpr size_t kNoChild = SIZE_MAX;
  std::string name;
  std::string literal;
  size_t expr_child = kNoChild;
};

/// One content item of a direct element constructor: literal text
/// (expr_child == kNoChild) or an embedded expression / nested constructor.
struct ContentAst {
  static constexpr size_t kNoChild = SIZE_MAX;
  std::string text;
  size_t expr_child = kNoChild;
};

struct Expr {
  explicit Expr(ExprKind kind) : kind(kind) {}

  ExprKind kind;
  std::string str;
  double number = 0;
  algebra::BinaryOp binop = algebra::BinaryOp::kEq;
  std::vector<ExprPtr> children;
  std::vector<ClauseAst> clauses;    // kFlwor
  std::vector<PathStep> steps;       // kPath
  std::vector<AttrAst> attrs;        // kConstructor
  std::vector<ContentAst> content;   // kConstructor
};

}  // namespace xmlq::xquery

#endif  // XMLQ_XQUERY_AST_H_
