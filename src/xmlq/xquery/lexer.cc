#include "xmlq/xquery/lexer.h"

#include <cctype>

namespace xmlq::xquery {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

}  // namespace

void Scanner::SkipWhitespace() {
  while (!AtEnd()) {
    const char c = Peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      Advance();
      continue;
    }
    if (c == '(' && Peek(1) == ':') {
      // XQuery comment, possibly nested.
      Advance(2);
      int depth = 1;
      while (!AtEnd() && depth > 0) {
        if (Peek() == '(' && Peek(1) == ':') {
          ++depth;
          Advance(2);
        } else if (Peek() == ':' && Peek(1) == ')') {
          --depth;
          Advance(2);
        } else {
          Advance();
        }
      }
      continue;
    }
    break;
  }
}

bool Scanner::MatchSymbol(std::string_view literal) {
  SkipWhitespace();
  if (input_.substr(pos_, literal.size()) != literal) return false;
  pos_ += literal.size();
  return true;
}

bool Scanner::MatchKeyword(std::string_view keyword) {
  SkipWhitespace();
  if (input_.substr(pos_, keyword.size()) != keyword) return false;
  const size_t after = pos_ + keyword.size();
  if (after < input_.size() && IsNameChar(input_[after])) return false;
  pos_ = after;
  return true;
}

bool Scanner::PeekKeyword(std::string_view keyword) {
  const size_t saved = pos_;
  const bool matched = MatchKeyword(keyword);
  pos_ = saved;
  return matched;
}

Result<std::string> Scanner::ReadName() {
  SkipWhitespace();
  if (AtEnd() || !IsNameStart(Peek())) return Error("expected a name");
  std::string name;
  while (!AtEnd() && IsNameChar(Peek())) {
    // A "::" axis separator is not part of the name (single ':' is).
    if (Peek() == ':' && Peek(1) == ':') break;
    name.push_back(Peek());
    Advance();
  }
  return name;
}

Result<std::string> Scanner::ReadStringLiteral() {
  SkipWhitespace();
  if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
    return Error("expected a string literal");
  }
  const char quote = Peek();
  Advance();
  std::string value;
  while (!AtEnd()) {
    const char c = Peek();
    if (c == quote) {
      if (Peek(1) == quote) {  // doubled-quote escape
        value.push_back(quote);
        Advance(2);
        continue;
      }
      Advance();
      return value;
    }
    value.push_back(c);
    Advance();
  }
  return Error("unterminated string literal");
}

Result<double> Scanner::ReadNumber() {
  SkipWhitespace();
  if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
    return Error("expected a number");
  }
  std::string digits;
  while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                      Peek() == '.')) {
    digits.push_back(Peek());
    Advance();
  }
  char* end = nullptr;
  const double value = std::strtod(digits.c_str(), &end);
  if (end != digits.c_str() + digits.size()) {
    return Error("malformed number '" + digits + "'");
  }
  return value;
}

bool Scanner::AtNameStart() const { return !AtEnd() && IsNameStart(Peek()); }

bool Scanner::AtDigit() const {
  return !AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()));
}

Status Scanner::Error(std::string message) const {
  return Status::ParseError("xquery offset " + std::to_string(pos_) + ": " +
                            std::move(message));
}

}  // namespace xmlq::xquery
