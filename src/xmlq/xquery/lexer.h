#ifndef XMLQ_XQUERY_LEXER_H_
#define XMLQ_XQUERY_LEXER_H_

#include <string>
#include <string_view>

#include "xmlq/base/status.h"

namespace xmlq::xquery {

/// Character-level scanner for the XQuery parser. XQuery's grammar is
/// context-sensitive ('<' starts a constructor in expression position but is
/// a comparison elsewhere; constructor content has its own lexical rules),
/// so the parser drives a raw cursor instead of a flat token stream.
class Scanner {
 public:
  explicit Scanner(std::string_view input) : input_(input) {}

  size_t pos() const { return pos_; }
  void set_pos(size_t pos) { pos_ = pos; }
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  void Advance(size_t n = 1) { pos_ += n; }

  /// Skips whitespace and `(: ... :)` comments (nested).
  void SkipWhitespace();

  /// After skipping whitespace, consumes `literal` if present (no word
  /// boundary check — use MatchKeyword for identifiers).
  bool MatchSymbol(std::string_view literal);
  /// Like MatchSymbol but requires a non-name character after the keyword.
  bool MatchKeyword(std::string_view keyword);
  /// Peeks whether `keyword` is next (without consuming).
  bool PeekKeyword(std::string_view keyword);

  /// Reads an NCName; errors if none present.
  Result<std::string> ReadName();
  /// Reads a quoted string literal ('...' or "...", doubled-quote escape).
  Result<std::string> ReadStringLiteral();
  /// Reads a number (digits with optional fraction).
  Result<double> ReadNumber();

  bool AtNameStart() const;
  bool AtDigit() const;

  /// Parse error annotated with the current offset.
  Status Error(std::string message) const;

 private:
  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace xmlq::xquery

#endif  // XMLQ_XQUERY_LEXER_H_
