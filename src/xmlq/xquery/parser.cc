#include "xmlq/xquery/parser.h"

#include "xmlq/base/strings.h"
#include "xmlq/xpath/parser.h"
#include "xmlq/xquery/lexer.h"

namespace xmlq::xquery {

namespace {

using algebra::Axis;
using algebra::BinaryOp;

/// Decodes the five predefined entities in constructor text.
std::string DecodeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size();) {
    if (text[i] == '&') {
      if (text.substr(i, 4) == "&lt;") {
        out.push_back('<');
        i += 4;
        continue;
      }
      if (text.substr(i, 4) == "&gt;") {
        out.push_back('>');
        i += 4;
        continue;
      }
      if (text.substr(i, 5) == "&amp;") {
        out.push_back('&');
        i += 5;
        continue;
      }
      if (text.substr(i, 6) == "&apos;") {
        out.push_back('\'');
        i += 6;
        continue;
      }
      if (text.substr(i, 6) == "&quot;") {
        out.push_back('"');
        i += 6;
        continue;
      }
    }
    out.push_back(text[i]);
    ++i;
  }
  return out;
}

class Parser {
 public:
  explicit Parser(std::string_view input) : scan_(input) {}

  Result<ExprPtr> Parse() {
    XMLQ_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
    scan_.SkipWhitespace();
    if (!scan_.AtEnd()) {
      return scan_.Error("trailing input after query");
    }
    return expr;
  }

 private:
  // Expr := ExprSingle ("," ExprSingle)*
  Result<ExprPtr> ParseExpr() {
    XMLQ_ASSIGN_OR_RETURN(ExprPtr first, ParseExprSingle());
    if (!scan_.MatchSymbol(",")) return first;
    auto seq = std::make_unique<Expr>(ExprKind::kSequence);
    seq->children.push_back(std::move(first));
    do {
      XMLQ_ASSIGN_OR_RETURN(ExprPtr next, ParseExprSingle());
      seq->children.push_back(std::move(next));
    } while (scan_.MatchSymbol(","));
    return seq;
  }

  Result<ExprPtr> ParseExprSingle() {
    scan_.SkipWhitespace();
    if (scan_.PeekKeyword("for") || scan_.PeekKeyword("let")) {
      return ParseFlwor();
    }
    if (scan_.PeekKeyword("if")) {
      // Distinguish `if (...)` from a hypothetical path starting with "if".
      const size_t saved = scan_.pos();
      scan_.MatchKeyword("if");
      scan_.SkipWhitespace();
      if (scan_.Peek() == '(') {
        return ParseIf();
      }
      scan_.set_pos(saved);
    }
    if (scan_.PeekKeyword("declare")) {
      return Status::Unsupported(
          "user-defined functions/declarations are outside the subset "
          "(recursive functions would make the algebra unsafe, paper §3.1)");
    }
    return ParseOr();
  }

  Result<ExprPtr> ParseFlwor() {
    auto flwor = std::make_unique<Expr>(ExprKind::kFlwor);
    bool saw_binding = false;
    while (true) {
      if (scan_.MatchKeyword("for")) {
        do {
          if (!scan_.MatchSymbol("$")) {
            return scan_.Error("expected '$variable' after 'for'");
          }
          XMLQ_ASSIGN_OR_RETURN(std::string var, scan_.ReadName());
          if (!scan_.MatchKeyword("in")) {
            return scan_.Error("expected 'in' in for clause");
          }
          XMLQ_ASSIGN_OR_RETURN(ExprPtr expr, ParseExprSingle());
          ClauseAst clause;
          clause.kind = ClauseAst::Kind::kFor;
          clause.var = std::move(var);
          clause.expr_child = flwor->children.size();
          flwor->children.push_back(std::move(expr));
          flwor->clauses.push_back(std::move(clause));
        } while (scan_.MatchSymbol(","));
        saw_binding = true;
        continue;
      }
      if (scan_.MatchKeyword("let")) {
        do {
          if (!scan_.MatchSymbol("$")) {
            return scan_.Error("expected '$variable' after 'let'");
          }
          XMLQ_ASSIGN_OR_RETURN(std::string var, scan_.ReadName());
          if (!scan_.MatchSymbol(":=")) {
            return scan_.Error("expected ':=' in let clause");
          }
          XMLQ_ASSIGN_OR_RETURN(ExprPtr expr, ParseExprSingle());
          ClauseAst clause;
          clause.kind = ClauseAst::Kind::kLet;
          clause.var = std::move(var);
          clause.expr_child = flwor->children.size();
          flwor->children.push_back(std::move(expr));
          flwor->clauses.push_back(std::move(clause));
        } while (scan_.MatchSymbol(","));
        saw_binding = true;
        continue;
      }
      break;
    }
    if (!saw_binding) {
      return scan_.Error("FLWOR expression without for/let bindings");
    }
    if (scan_.MatchKeyword("where")) {
      XMLQ_ASSIGN_OR_RETURN(ExprPtr expr, ParseExprSingle());
      ClauseAst clause;
      clause.kind = ClauseAst::Kind::kWhere;
      clause.expr_child = flwor->children.size();
      flwor->children.push_back(std::move(expr));
      flwor->clauses.push_back(std::move(clause));
    }
    if (scan_.MatchKeyword("order")) {
      if (!scan_.MatchKeyword("by")) {
        return scan_.Error("expected 'by' after 'order'");
      }
      do {
        XMLQ_ASSIGN_OR_RETURN(ExprPtr expr, ParseExprSingle());
        ClauseAst clause;
        clause.kind = ClauseAst::Kind::kOrderBy;
        clause.expr_child = flwor->children.size();
        if (scan_.MatchKeyword("descending")) {
          clause.descending = true;
        } else {
          scan_.MatchKeyword("ascending");
        }
        flwor->children.push_back(std::move(expr));
        flwor->clauses.push_back(std::move(clause));
      } while (scan_.MatchSymbol(","));
    }
    if (!scan_.MatchKeyword("return")) {
      return scan_.Error("expected 'return' in FLWOR expression");
    }
    XMLQ_ASSIGN_OR_RETURN(ExprPtr ret, ParseExprSingle());
    flwor->children.push_back(std::move(ret));
    return flwor;
  }

  Result<ExprPtr> ParseIf() {
    if (!scan_.MatchSymbol("(")) return scan_.Error("expected '(' after 'if'");
    XMLQ_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
    if (!scan_.MatchSymbol(")")) return scan_.Error("expected ')'");
    if (!scan_.MatchKeyword("then")) return scan_.Error("expected 'then'");
    XMLQ_ASSIGN_OR_RETURN(ExprPtr then_expr, ParseExprSingle());
    if (!scan_.MatchKeyword("else")) return scan_.Error("expected 'else'");
    XMLQ_ASSIGN_OR_RETURN(ExprPtr else_expr, ParseExprSingle());
    auto expr = std::make_unique<Expr>(ExprKind::kIf);
    expr->children.push_back(std::move(cond));
    expr->children.push_back(std::move(then_expr));
    expr->children.push_back(std::move(else_expr));
    return expr;
  }

  Result<ExprPtr> ParseOr() {
    XMLQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (scan_.MatchKeyword("or")) {
      XMLQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    XMLQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
    while (scan_.MatchKeyword("and")) {
      XMLQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseComparison() {
    XMLQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    BinaryOp op;
    if (scan_.MatchSymbol("!=")) {
      op = BinaryOp::kNe;
    } else if (scan_.MatchSymbol("<=")) {
      op = BinaryOp::kLe;
    } else if (scan_.MatchSymbol(">=")) {
      op = BinaryOp::kGe;
    } else if (scan_.MatchSymbol("=")) {
      op = BinaryOp::kEq;
    } else if (scan_.MatchSymbol("<")) {
      op = BinaryOp::kLt;
    } else if (scan_.MatchSymbol(">")) {
      op = BinaryOp::kGt;
    } else if (scan_.MatchKeyword("eq")) {
      op = BinaryOp::kEq;
    } else if (scan_.MatchKeyword("ne")) {
      op = BinaryOp::kNe;
    } else if (scan_.MatchKeyword("lt")) {
      op = BinaryOp::kLt;
    } else if (scan_.MatchKeyword("le")) {
      op = BinaryOp::kLe;
    } else if (scan_.MatchKeyword("gt")) {
      op = BinaryOp::kGt;
    } else if (scan_.MatchKeyword("ge")) {
      op = BinaryOp::kGe;
    } else {
      return lhs;
    }
    XMLQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return MakeBinary(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdditive() {
    XMLQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      if (scan_.MatchSymbol("+")) {
        XMLQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = MakeBinary(BinaryOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (scan_.MatchSymbol("-")) {
        XMLQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = MakeBinary(BinaryOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    XMLQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      if (scan_.MatchSymbol("*")) {
        XMLQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = MakeBinary(BinaryOp::kMul, std::move(lhs), std::move(rhs));
      } else if (scan_.MatchKeyword("div")) {
        XMLQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = MakeBinary(BinaryOp::kDiv, std::move(lhs), std::move(rhs));
      } else if (scan_.MatchKeyword("mod")) {
        XMLQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = MakeBinary(BinaryOp::kMod, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (scan_.MatchSymbol("-")) {
      XMLQ_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      auto zero = std::make_unique<Expr>(ExprKind::kNumberLiteral);
      zero->number = 0;
      return MakeBinary(BinaryOp::kSub, std::move(zero), std::move(operand));
    }
    return ParsePath();
  }

  Result<ExprPtr> ParsePath() {
    scan_.SkipWhitespace();
    ExprPtr base;
    bool leading_descendant = false;
    bool absolute = false;
    if (scan_.Peek() == '/') {
      absolute = true;
      if (scan_.MatchSymbol("//")) {
        leading_descendant = true;
      } else {
        scan_.MatchSymbol("/");
      }
    } else {
      XMLQ_ASSIGN_OR_RETURN(base, ParsePrimary());
      if (scan_.SkipWhitespace(), scan_.Peek() != '/') return base;
    }
    auto path = std::make_unique<Expr>(ExprKind::kPath);
    if (base != nullptr) path->children.push_back(std::move(base));
    if (absolute) {
      XMLQ_ASSIGN_OR_RETURN(PathStep step,
                            ParseStep(leading_descendant));
      path->steps.push_back(std::move(step));
    }
    while (true) {
      scan_.SkipWhitespace();
      bool descendant;
      if (scan_.MatchSymbol("//")) {
        descendant = true;
      } else if (scan_.MatchSymbol("/")) {
        descendant = false;
      } else {
        break;
      }
      XMLQ_ASSIGN_OR_RETURN(PathStep step, ParseStep(descendant));
      path->steps.push_back(std::move(step));
    }
    if (path->steps.empty()) {
      return scan_.Error("path expression without steps");
    }
    return path;
  }

  Result<PathStep> ParseStep(bool descendant) {
    scan_.SkipWhitespace();
    PathStep step;
    step.axis = descendant ? Axis::kDescendant : Axis::kChild;
    if (scan_.MatchSymbol("@")) {
      step.is_attribute = true;
      if (!descendant) step.axis = Axis::kAttribute;
    }
    if (scan_.MatchSymbol("*")) {
      step.name = "*";
    } else {
      XMLQ_ASSIGN_OR_RETURN(step.name, scan_.ReadName());
      if (scan_.MatchSymbol("::")) {
        // The name was an explicit axis; the real name test follows.
        if (descendant || step.is_attribute) {
          return scan_.Error("'//' or '@' cannot combine with an axis");
        }
        if (step.name == "child") {
          step.axis = Axis::kChild;
        } else if (step.name == "descendant") {
          step.axis = Axis::kDescendant;
        } else if (step.name == "attribute") {
          step.axis = Axis::kAttribute;
          step.is_attribute = true;
        } else if (step.name == "following-sibling") {
          step.axis = Axis::kFollowingSibling;
        } else if (step.name == "self") {
          step.axis = Axis::kSelf;
        } else {
          return Status::Unsupported("axis '" + step.name +
                                     "' is outside the supported subset");
        }
        if (scan_.MatchSymbol("*")) {
          step.name = "*";
        } else {
          XMLQ_ASSIGN_OR_RETURN(step.name, scan_.ReadName());
        }
      }
    }
    // `[...]` predicates delegate to the XPath predicate grammar.
    while (true) {
      scan_.SkipWhitespace();
      if (scan_.Peek() != '[') break;
      XMLQ_ASSIGN_OR_RETURN(std::string body, ReadBracketBody());
      XMLQ_ASSIGN_OR_RETURN(std::vector<xpath::PredAst> preds,
                            xpath::ParsePredicateExpression(body));
      for (xpath::PredAst& pred : preds) {
        step.predicates.push_back(std::move(pred));
      }
    }
    return step;
  }

  /// Consumes a balanced `[...]` (honouring nested brackets and quoted
  /// strings) and returns the body text.
  Result<std::string> ReadBracketBody() {
    scan_.Advance();  // '['
    std::string body;
    int depth = 1;
    while (!scan_.AtEnd()) {
      const char c = scan_.Peek();
      if (c == '\'' || c == '"') {
        const char quote = c;
        body.push_back(c);
        scan_.Advance();
        while (!scan_.AtEnd() && scan_.Peek() != quote) {
          body.push_back(scan_.Peek());
          scan_.Advance();
        }
        if (scan_.AtEnd()) return scan_.Error("unterminated string literal");
        body.push_back(quote);
        scan_.Advance();
        continue;
      }
      if (c == '[') ++depth;
      if (c == ']') {
        --depth;
        if (depth == 0) {
          scan_.Advance();
          return body;
        }
      }
      body.push_back(c);
      scan_.Advance();
    }
    return scan_.Error("unterminated '[' predicate");
  }

  Result<ExprPtr> ParsePrimary() {
    scan_.SkipWhitespace();
    const char c = scan_.Peek();
    if (c == '$') {
      scan_.Advance();
      XMLQ_ASSIGN_OR_RETURN(std::string name, scan_.ReadName());
      auto expr = std::make_unique<Expr>(ExprKind::kVarRef);
      expr->str = std::move(name);
      return expr;
    }
    if (c == '(') {
      scan_.Advance();
      scan_.SkipWhitespace();
      if (scan_.MatchSymbol(")")) {
        return std::make_unique<Expr>(ExprKind::kSequence);  // empty ()
      }
      XMLQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      if (!scan_.MatchSymbol(")")) return scan_.Error("expected ')'");
      return inner;
    }
    if (c == '"' || c == '\'') {
      XMLQ_ASSIGN_OR_RETURN(std::string value, scan_.ReadStringLiteral());
      auto expr = std::make_unique<Expr>(ExprKind::kStringLiteral);
      expr->str = std::move(value);
      return expr;
    }
    if (scan_.AtDigit()) {
      XMLQ_ASSIGN_OR_RETURN(double value, scan_.ReadNumber());
      auto expr = std::make_unique<Expr>(ExprKind::kNumberLiteral);
      expr->number = value;
      return expr;
    }
    if (c == '<') {
      return ParseConstructor();
    }
    if (scan_.AtNameStart()) {
      XMLQ_ASSIGN_OR_RETURN(std::string name, scan_.ReadName());
      scan_.SkipWhitespace();
      if (scan_.Peek() == '(') {
        scan_.Advance();
        auto call = std::make_unique<Expr>(ExprKind::kFunctionCall);
        call->str = std::move(name);
        scan_.SkipWhitespace();
        if (!scan_.MatchSymbol(")")) {
          do {
            XMLQ_ASSIGN_OR_RETURN(ExprPtr arg, ParseExprSingle());
            call->children.push_back(std::move(arg));
          } while (scan_.MatchSymbol(","));
          if (!scan_.MatchSymbol(")")) {
            return scan_.Error("expected ')' after function arguments");
          }
        }
        return call;
      }
      return scan_.Error(
          "relative path '" + name +
          "' has no context item; start from a $variable or doc(...)");
    }
    return scan_.Error("expected an expression");
  }

  Result<ExprPtr> ParseConstructor() {
    // positioned at '<'
    scan_.Advance();
    XMLQ_ASSIGN_OR_RETURN(std::string name, scan_.ReadName());
    auto ctor = std::make_unique<Expr>(ExprKind::kConstructor);
    ctor->str = std::move(name);
    // Attributes.
    while (true) {
      scan_.SkipWhitespace();
      if (scan_.Peek() == '/' || scan_.Peek() == '>') break;
      XMLQ_ASSIGN_OR_RETURN(std::string attr_name, scan_.ReadName());
      if (!scan_.MatchSymbol("=")) {
        return scan_.Error("expected '=' after attribute name");
      }
      scan_.SkipWhitespace();
      const char quote = scan_.Peek();
      if (quote != '"' && quote != '\'') {
        return scan_.Error("expected quoted attribute value");
      }
      scan_.Advance();
      AttrAst attr;
      attr.name = std::move(attr_name);
      scan_.SkipWhitespace();
      if (scan_.Peek() == '{') {
        scan_.Advance();
        XMLQ_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
        if (!scan_.MatchSymbol("}")) return scan_.Error("expected '}'");
        attr.expr_child = ctor->children.size();
        ctor->children.push_back(std::move(expr));
        scan_.SkipWhitespace();
        if (scan_.Peek() != quote) {
          return scan_.Error(
              "attribute values must be a literal or a single {expr}");
        }
        scan_.Advance();
      } else {
        std::string value;
        while (!scan_.AtEnd() && scan_.Peek() != quote) {
          if (scan_.Peek() == '{' || scan_.Peek() == '}') {
            return scan_.Error(
                "attribute values must be a literal or a single {expr}");
          }
          value.push_back(scan_.Peek());
          scan_.Advance();
        }
        if (scan_.AtEnd()) return scan_.Error("unterminated attribute value");
        scan_.Advance();
        attr.literal = DecodeEntities(value);
      }
      ctor->attrs.push_back(std::move(attr));
    }
    if (scan_.MatchSymbol("/>")) return ctor;
    if (!scan_.MatchSymbol(">")) return scan_.Error("expected '>'");

    // Direct content: raw text, {expr}, nested constructors.
    std::string text;
    auto flush_text = [&]() {
      if (!IsAllWhitespace(text)) {
        ContentAst item;
        item.text = DecodeEntities(text);
        ctor->content.push_back(std::move(item));
      }
      text.clear();
    };
    while (true) {
      if (scan_.AtEnd()) return scan_.Error("unterminated element constructor");
      const char ch = scan_.Peek();
      if (ch == '{') {
        if (scan_.Peek(1) == '{') {  // escaped brace
          text.push_back('{');
          scan_.Advance(2);
          continue;
        }
        flush_text();
        scan_.Advance();
        XMLQ_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
        if (!scan_.MatchSymbol("}")) return scan_.Error("expected '}'");
        ContentAst item;
        item.expr_child = ctor->children.size();
        ctor->children.push_back(std::move(expr));
        ctor->content.push_back(std::move(item));
        continue;
      }
      if (ch == '}') {
        if (scan_.Peek(1) == '}') {
          text.push_back('}');
          scan_.Advance(2);
          continue;
        }
        return scan_.Error("unescaped '}' in constructor content");
      }
      if (ch == '<') {
        if (scan_.Peek(1) == '/') {
          flush_text();
          scan_.Advance(2);
          XMLQ_ASSIGN_OR_RETURN(std::string end_name, scan_.ReadName());
          if (end_name != ctor->str) {
            return scan_.Error("mismatched end tag </" + end_name +
                               ">, expected </" + ctor->str + ">");
          }
          scan_.SkipWhitespace();
          if (!scan_.MatchSymbol(">")) return scan_.Error("expected '>'");
          return ctor;
        }
        flush_text();
        XMLQ_ASSIGN_OR_RETURN(ExprPtr nested, ParseConstructor());
        ContentAst item;
        item.expr_child = ctor->children.size();
        ctor->children.push_back(std::move(nested));
        ctor->content.push_back(std::move(item));
        continue;
      }
      text.push_back(ch);
      scan_.Advance();
    }
  }

  static ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
    auto expr = std::make_unique<Expr>(ExprKind::kBinary);
    expr->binop = op;
    expr->children.push_back(std::move(lhs));
    expr->children.push_back(std::move(rhs));
    return expr;
  }

  Scanner scan_;
};

}  // namespace

Result<ExprPtr> ParseQuery(std::string_view input) {
  Parser parser(input);
  return parser.Parse();
}

}  // namespace xmlq::xquery
