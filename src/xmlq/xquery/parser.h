#ifndef XMLQ_XQUERY_PARSER_H_
#define XMLQ_XQUERY_PARSER_H_

#include <string_view>

#include "xmlq/base/status.h"
#include "xmlq/xquery/ast.h"

namespace xmlq::xquery {

/// Parses the supported XQuery subset (paper §3.1: the complete-but-safe
/// fragment — FLWOR without recursive functions):
///
///   * FLWOR expressions: for / let (interleaved), where, order by
///     (ascending/descending), return;
///   * direct element constructors with attribute and content `{expr}`
///     placeholders, arbitrarily nested;
///   * path expressions: doc("name")/a/b//c/@d and $var/a//b (no predicates
///     inside FLWOR paths — use where clauses; the standalone XPath API
///     supports predicates);
///   * if/then/else, and/or, general comparisons (=, !=, <, <=, >, >= and
///     eq/ne/lt/le/gt/ge), arithmetic (+, -, *, div, mod), string and
///     number literals, parenthesized sequences, function calls;
///   * `(: comments :)`.
///
/// User-defined (and therefore recursive) functions are intentionally
/// outside the subset and produce kUnsupported.
Result<ExprPtr> ParseQuery(std::string_view input);

}  // namespace xmlq::xquery

#endif  // XMLQ_XQUERY_PARSER_H_
