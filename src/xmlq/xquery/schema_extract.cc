#include "xmlq/xquery/schema_extract.h"

#include "xmlq/base/strings.h"

namespace xmlq::xquery {

namespace {

using algebra::SchemaAttr;
using algebra::SchemaNode;
using algebra::SchemaNodeKind;

void Render(const Expr& expr, std::string* out);

void RenderPathSteps(const Expr& expr, std::string* out) {
  for (const PathStep& step : expr.steps) {
    out->append(step.axis == algebra::Axis::kDescendant ? "//" : "/");
    if (step.is_attribute) out->push_back('@');
    out->append(step.name);
  }
}

void Render(const Expr& expr, std::string* out) {
  switch (expr.kind) {
    case ExprKind::kStringLiteral:
      out->append("\"" + expr.str + "\"");
      return;
    case ExprKind::kNumberLiteral:
      out->append(FormatNumber(expr.number));
      return;
    case ExprKind::kVarRef:
      out->append("$" + expr.str);
      return;
    case ExprKind::kFunctionCall: {
      out->append(expr.str + "(");
      for (size_t i = 0; i < expr.children.size(); ++i) {
        if (i > 0) out->append(", ");
        Render(*expr.children[i], out);
      }
      out->append(")");
      return;
    }
    case ExprKind::kSequence: {
      out->append("(");
      for (size_t i = 0; i < expr.children.size(); ++i) {
        if (i > 0) out->append(", ");
        Render(*expr.children[i], out);
      }
      out->append(")");
      return;
    }
    case ExprKind::kBinary:
      Render(*expr.children[0], out);
      out->append(" ");
      out->append(algebra::BinaryOpName(expr.binop));
      out->append(" ");
      Render(*expr.children[1], out);
      return;
    case ExprKind::kIf:
      out->append("if (");
      Render(*expr.children[0], out);
      out->append(") then ... else ...");
      return;
    case ExprKind::kFlwor: {
      bool first = true;
      for (const ClauseAst& clause : expr.clauses) {
        if (!first) out->append(", ");
        first = false;
        switch (clause.kind) {
          case ClauseAst::Kind::kFor:
            out->append("$" + clause.var + " <- ");
            Render(*expr.children[clause.expr_child], out);
            break;
          case ClauseAst::Kind::kLet:
            out->append("$" + clause.var + " := ");
            Render(*expr.children[clause.expr_child], out);
            break;
          case ClauseAst::Kind::kWhere:
            out->append("where ");
            Render(*expr.children[clause.expr_child], out);
            break;
          case ClauseAst::Kind::kOrderBy:
            out->append("order by ");
            Render(*expr.children[clause.expr_child], out);
            break;
        }
      }
      return;
    }
    case ExprKind::kPath:
      if (!expr.children.empty()) Render(*expr.children[0], out);
      RenderPathSteps(expr, out);
      return;
    case ExprKind::kConstructor:
      out->append("<" + expr.str + ">...</" + expr.str + ">");
      return;
  }
}

class Extractor {
 public:
  Result<SchemaNode> Extract(const Expr& expr, algebra::ExprSlot iterate) {
    switch (expr.kind) {
      case ExprKind::kConstructor: {
        SchemaNode node;
        node.kind = SchemaNodeKind::kElement;
        node.label = expr.str;
        node.iterate = iterate;
        for (const AttrAst& attr : expr.attrs) {
          SchemaAttr out;
          out.name = attr.name;
          if (attr.expr_child == AttrAst::kNoChild) {
            out.literal = attr.literal;
          } else {
            out.expr = NewSlot(*expr.children[attr.expr_child]);
          }
          node.attrs.push_back(std::move(out));
        }
        for (const ContentAst& item : expr.content) {
          if (item.expr_child == ContentAst::kNoChild) {
            SchemaNode text;
            text.kind = SchemaNodeKind::kText;
            text.literal = item.text;
            node.children.push_back(std::move(text));
            continue;
          }
          XMLQ_ASSIGN_OR_RETURN(
              SchemaNode child,
              Extract(*expr.children[item.expr_child], algebra::kNoExpr));
          node.children.push_back(std::move(child));
        }
        return node;
      }
      case ExprKind::kFlwor: {
        // The comprehension ϕ labels the arc above the return template
        // (paper Fig. 1(b)): record the binding clauses as the iterate slot.
        const algebra::ExprSlot phi = NewSlot(expr);
        return Extract(*expr.children.back(), phi);
      }
      case ExprKind::kIf: {
        SchemaNode node;
        node.kind = SchemaNodeKind::kIf;
        node.iterate = iterate;
        node.expr = NewSlot(*expr.children[0]);
        XMLQ_ASSIGN_OR_RETURN(SchemaNode then_node,
                              Extract(*expr.children[1], algebra::kNoExpr));
        node.children.push_back(std::move(then_node));
        return node;
      }
      default: {
        SchemaNode node;
        node.kind = SchemaNodeKind::kPlaceholder;
        node.iterate = iterate;
        node.expr = NewSlot(expr);
        return node;
      }
    }
  }

  std::vector<std::string> TakeDescriptions() { return std::move(descriptions_); }

 private:
  algebra::ExprSlot NewSlot(const Expr& expr) {
    std::string text;
    Render(expr, &text);
    descriptions_.push_back(std::move(text));
    return static_cast<algebra::ExprSlot>(descriptions_.size()) - 1;
  }

  std::vector<std::string> descriptions_;
};

}  // namespace

std::string RenderExpr(const Expr& expr) {
  std::string out;
  Render(expr, &out);
  return out;
}

Result<ExtractedSchema> ExtractSchemaTree(const Expr& query) {
  Extractor extractor;
  XMLQ_ASSIGN_OR_RETURN(SchemaNode root,
                        extractor.Extract(query, algebra::kNoExpr));
  ExtractedSchema out;
  out.tree = algebra::SchemaTree(std::move(root));
  out.slot_descriptions = extractor.TakeDescriptions();
  return out;
}

}  // namespace xmlq::xquery
