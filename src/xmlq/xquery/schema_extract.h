#ifndef XMLQ_XQUERY_SCHEMA_EXTRACT_H_
#define XMLQ_XQUERY_SCHEMA_EXTRACT_H_

#include <string>
#include <vector>

#include "xmlq/algebra/schema_tree.h"
#include "xmlq/base/status.h"
#include "xmlq/xquery/ast.h"

namespace xmlq::xquery {

/// The output template of a query plus human-readable descriptions of the
/// expressions referenced by its placeholder/iteration slots.
struct ExtractedSchema {
  algebra::SchemaTree tree;
  std::vector<std::string> slot_descriptions;
};

/// Extracts the SchemaTree (output template) of a query, reproducing the
/// paper's Fig. 1(b): constructor elements become labeled nodes, `{expr}`
/// placeholders become `{ }` leaves, and a FLWOR embedded in content labels
/// the arc above its return template with the comprehension ϕ (the iterate
/// slot). The paper's planned "backward analysis" starts from this tree.
Result<ExtractedSchema> ExtractSchemaTree(const Expr& query);

/// Renders an AST expression on one line (used for slot descriptions and
/// diagnostics), e.g. `for $b in doc("bib.xml")/bib/book return ...`.
std::string RenderExpr(const Expr& expr);

}  // namespace xmlq::xquery

#endif  // XMLQ_XQUERY_SCHEMA_EXTRACT_H_
