#include "xmlq/xquery/translate.h"

#include "xmlq/algebra/rewrite.h"
#include "xmlq/algebra/schema_tree.h"
#include "xmlq/xpath/compiler.h"
#include "xmlq/xquery/parser.h"

namespace xmlq::xquery {

namespace {

using algebra::FlworClause;
using algebra::Item;
using algebra::LogicalExpr;
using algebra::LogicalExprPtr;
using algebra::LogicalOp;
using algebra::SchemaAttr;
using algebra::SchemaNode;
using algebra::SchemaNodeKind;

class Translator {
 public:
  explicit Translator(const TranslateOptions& options) : options_(options) {}

  Result<LogicalExprPtr> Translate(const Expr& ast) {
    switch (ast.kind) {
      case ExprKind::kStringLiteral:
        return algebra::MakeLiteral(Item(ast.str));
      case ExprKind::kNumberLiteral:
        return algebra::MakeLiteral(Item(ast.number));
      case ExprKind::kVarRef:
        return algebra::MakeVarRef(ast.str);
      case ExprKind::kFunctionCall: {
        std::vector<LogicalExprPtr> args;
        for (const ExprPtr& child : ast.children) {
          XMLQ_ASSIGN_OR_RETURN(LogicalExprPtr arg, Translate(*child));
          args.push_back(std::move(arg));
        }
        return algebra::MakeFunction(ast.str, std::move(args));
      }
      case ExprKind::kSequence: {
        auto seq = std::make_unique<LogicalExpr>(LogicalOp::kSequence);
        for (const ExprPtr& child : ast.children) {
          XMLQ_ASSIGN_OR_RETURN(LogicalExprPtr c, Translate(*child));
          seq->children.push_back(std::move(c));
        }
        return seq;
      }
      case ExprKind::kBinary: {
        XMLQ_ASSIGN_OR_RETURN(LogicalExprPtr lhs, Translate(*ast.children[0]));
        XMLQ_ASSIGN_OR_RETURN(LogicalExprPtr rhs, Translate(*ast.children[1]));
        return algebra::MakeBinary(ast.binop, std::move(lhs), std::move(rhs));
      }
      case ExprKind::kIf: {
        // `if` is lazily evaluated by the executor's function dispatch.
        std::vector<LogicalExprPtr> args;
        for (const ExprPtr& child : ast.children) {
          XMLQ_ASSIGN_OR_RETURN(LogicalExprPtr arg, Translate(*child));
          args.push_back(std::move(arg));
        }
        return algebra::MakeFunction("if", std::move(args));
      }
      case ExprKind::kFlwor:
        return TranslateFlwor(ast);
      case ExprKind::kPath:
        return TranslatePath(ast);
      case ExprKind::kConstructor:
        return TranslateConstructor(ast);
    }
    return Status::Internal("unknown XQuery AST node");
  }

 private:
  Result<LogicalExprPtr> TranslateFlwor(const Expr& ast) {
    auto flwor = std::make_unique<LogicalExpr>(LogicalOp::kFlwor);
    for (const ExprPtr& child : ast.children) {
      XMLQ_ASSIGN_OR_RETURN(LogicalExprPtr c, Translate(*child));
      flwor->children.push_back(std::move(c));
    }
    for (const ClauseAst& clause : ast.clauses) {
      FlworClause out;
      switch (clause.kind) {
        case ClauseAst::Kind::kFor:
          out.kind = FlworClause::Kind::kFor;
          break;
        case ClauseAst::Kind::kLet:
          out.kind = FlworClause::Kind::kLet;
          break;
        case ClauseAst::Kind::kWhere:
          out.kind = FlworClause::Kind::kWhere;
          break;
        case ClauseAst::Kind::kOrderBy:
          out.kind = FlworClause::Kind::kOrderBy;
          break;
      }
      out.var = clause.var;
      out.expr_child = clause.expr_child;
      out.descending = clause.descending;
      flwor->clauses.push_back(std::move(out));
    }
    return flwor;
  }

  Result<LogicalExprPtr> TranslatePath(const Expr& ast) {
    LogicalExprPtr plan;
    if (!ast.children.empty()) {
      XMLQ_ASSIGN_OR_RETURN(plan, Translate(*ast.children[0]));
    } else {
      plan = algebra::MakeDocScan(options_.default_document);
    }
    for (const PathStep& step : ast.steps) {
      plan = algebra::MakeNavigate(std::move(plan), step.axis, step.name,
                                   step.is_attribute);
      if (!step.predicates.empty()) {
        // A self-anchored filter twig; the rewriter grafts it into the τ
        // pattern when the chain is rooted at a document scan.
        algebra::PatternGraph filter;
        XMLQ_RETURN_IF_ERROR(xpath::AppendPredicates(&filter, filter.root(),
                                                     step.predicates));
        plan = algebra::MakePatternFilter(std::move(plan), std::move(filter));
      }
    }
    return plan;
  }

  Result<LogicalExprPtr> TranslateConstructor(const Expr& ast) {
    auto construct = std::make_unique<LogicalExpr>(LogicalOp::kConstruct);
    XMLQ_ASSIGN_OR_RETURN(SchemaNode root,
                          BuildSchemaNode(ast, construct.get()));
    construct->schema =
        std::make_unique<algebra::SchemaTree>(std::move(root));
    return construct;
  }

  /// Builds the schema-tree node for a constructor, inlining nested
  /// constructors and appending placeholder expressions as children of
  /// `construct` (their index is the placeholder slot).
  Result<SchemaNode> BuildSchemaNode(const Expr& ast,
                                     LogicalExpr* construct) {
    SchemaNode node;
    node.kind = SchemaNodeKind::kElement;
    node.label = ast.str;
    for (const AttrAst& attr : ast.attrs) {
      SchemaAttr out;
      out.name = attr.name;
      if (attr.expr_child == AttrAst::kNoChild) {
        out.literal = attr.literal;
      } else {
        XMLQ_ASSIGN_OR_RETURN(
            LogicalExprPtr expr, Translate(*ast.children[attr.expr_child]));
        out.expr = static_cast<algebra::ExprSlot>(construct->children.size());
        construct->children.push_back(std::move(expr));
      }
      node.attrs.push_back(std::move(out));
    }
    for (const ContentAst& item : ast.content) {
      if (item.expr_child == ContentAst::kNoChild) {
        SchemaNode text;
        text.kind = SchemaNodeKind::kText;
        text.literal = item.text;
        node.children.push_back(std::move(text));
        continue;
      }
      const Expr& child_ast = *ast.children[item.expr_child];
      if (child_ast.kind == ExprKind::kConstructor) {
        XMLQ_ASSIGN_OR_RETURN(SchemaNode child,
                              BuildSchemaNode(child_ast, construct));
        node.children.push_back(std::move(child));
        continue;
      }
      SchemaNode placeholder;
      placeholder.kind = SchemaNodeKind::kPlaceholder;
      XMLQ_ASSIGN_OR_RETURN(LogicalExprPtr expr, Translate(child_ast));
      placeholder.expr =
          static_cast<algebra::ExprSlot>(construct->children.size());
      construct->children.push_back(std::move(expr));
      node.children.push_back(std::move(placeholder));
    }
    return node;
  }

  const TranslateOptions& options_;
};

}  // namespace

Result<LogicalExprPtr> Translate(const Expr& query,
                                 const TranslateOptions& options) {
  Translator translator(options);
  XMLQ_ASSIGN_OR_RETURN(LogicalExprPtr plan, translator.Translate(query));
  if (options.apply_rewrites) {
    algebra::ApplyAllRewrites(&plan);
  }
  return plan;
}

Result<algebra::LogicalExprPtr> CompileQuery(std::string_view query,
                                             const TranslateOptions& options) {
  XMLQ_ASSIGN_OR_RETURN(ExprPtr ast, ParseQuery(query));
  return Translate(*ast, options);
}

}  // namespace xmlq::xquery
