#ifndef XMLQ_XQUERY_TRANSLATE_H_
#define XMLQ_XQUERY_TRANSLATE_H_

#include <string>
#include <string_view>

#include "xmlq/algebra/logical_plan.h"
#include "xmlq/base/status.h"
#include "xmlq/xquery/ast.h"

namespace xmlq::xquery {

struct TranslateOptions {
  /// Document resolved by absolute paths (`/bib/book`); doc("name") paths
  /// name their document explicitly.
  std::string default_document;
  /// Run the logical rewrite pipeline (navigation folding into τ, σv
  /// pushdown, dedup elision) on the translated plan.
  bool apply_rewrites = true;
};

/// Translates a parsed XQuery AST into a logical algebra plan:
/// FLWOR → kFlwor over Env semantics, constructors → γ with an extracted
/// SchemaTree, paths → πs chains that the rewriter folds into τ patterns.
Result<algebra::LogicalExprPtr> Translate(const Expr& query,
                                          const TranslateOptions& options);

/// Parses and translates in one step.
Result<algebra::LogicalExprPtr> CompileQuery(std::string_view query,
                                             const TranslateOptions& options);

}  // namespace xmlq::xquery

#endif  // XMLQ_XQUERY_TRANSLATE_H_
