#include <gtest/gtest.h>

#include <cmath>

// GCC 12 emits spurious -Wmaybe-uninitialized reports from libstdc++
// internals when vectors of variant-holding NestedItems are built inline
// (gcc bug 105593 family); the diagnostics point at <variant>/<string>
// headers, not user code.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include "xmlq/algebra/env.h"
#include "xmlq/algebra/logical_plan.h"
#include "xmlq/algebra/pattern_graph.h"
#include "xmlq/algebra/rewrite.h"
#include "xmlq/algebra/schema_tree.h"
#include "xmlq/algebra/value.h"
#include "xmlq/xml/parser.h"

namespace xmlq::algebra {
namespace {

TEST(ItemTest, AtomicValues) {
  EXPECT_EQ(Item(std::string("ab")).StringValue(), "ab");
  EXPECT_EQ(Item(3.5).StringValue(), "3.5");
  EXPECT_EQ(Item(true).StringValue(), "true");
  EXPECT_EQ(Item(std::string("12")).NumberValue(), 12.0);
  EXPECT_TRUE(std::isnan(Item(std::string("x")).NumberValue()));
  EXPECT_TRUE(Item(std::string("x")).BooleanValue());
  EXPECT_FALSE(Item(std::string("")).BooleanValue());
  EXPECT_FALSE(Item(0.0).BooleanValue());
  EXPECT_TRUE(Item(2.0).BooleanValue());
}

TEST(ItemTest, NodeStringValue) {
  auto doc = xml::ParseDocument("<a><b>x</b>y</a>");
  ASSERT_TRUE(doc.ok());
  Item item(NodeRef{&*doc, doc->RootElement()});
  EXPECT_TRUE(item.IsNode());
  EXPECT_EQ(item.StringValue(), "xy");
  EXPECT_TRUE(item.BooleanValue());
}

TEST(SequenceTest, SortDocOrderDedup) {
  auto doc = xml::ParseDocument("<a><b/><c/></a>");
  ASSERT_TRUE(doc.ok());
  Sequence seq;
  seq.push_back(Item(NodeRef{&*doc, 3}));
  seq.push_back(Item(std::string("atom")));
  seq.push_back(Item(NodeRef{&*doc, 1}));
  seq.push_back(Item(NodeRef{&*doc, 3}));
  SortDocOrderDedup(&seq);
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[0].node().id, 1u);
  EXPECT_EQ(seq[1].node().id, 3u);
  EXPECT_TRUE(seq[2].IsString());
}

TEST(NestedListTest, FlattenAndSize) {
  NestedList list;
  list.push_back(NestedItem(Item(1.0)));
  std::vector<NestedItem> kids;
  kids.push_back(NestedItem(Item(3.0)));
  kids.push_back(NestedItem(Item(4.0)));
  list.push_back(NestedItem(Item(2.0), std::move(kids)));
  EXPECT_EQ(NestedSize(list), 4u);
  const Sequence flat = Flatten(list);
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_EQ(flat[1].number(), 2.0);
  EXPECT_EQ(flat[3].number(), 4.0);
  EXPECT_EQ(ToString(list), "[1, 2 [3, 4]]");
}

TEST(ValuePredicateTest, StringAndNumericComparison) {
  ValuePredicate eq{CompareOp::kEq, "abc", false};
  EXPECT_TRUE(eq.Eval("abc"));
  EXPECT_FALSE(eq.Eval("abd"));
  ValuePredicate lt{CompareOp::kLt, "10", true};
  EXPECT_TRUE(lt.Eval("9.5"));
  EXPECT_FALSE(lt.Eval("10"));
  EXPECT_FALSE(lt.Eval("abc"));  // non-numeric never matches numeric compare
  ValuePredicate ge{CompareOp::kGe, "2", true};
  EXPECT_TRUE(ge.Eval("10"));  // numeric, not lexicographic
}

TEST(PatternGraphTest, BuildAndValidate) {
  PatternGraph graph;
  const VertexId a = graph.AddVertex(graph.root(), Axis::kChild, "a");
  const VertexId b = graph.AddVertex(a, Axis::kDescendant, "b");
  const VertexId at = graph.AddVertex(b, Axis::kAttribute, "id", true);
  graph.SetOutput(b);
  EXPECT_TRUE(graph.Validate().ok());
  EXPECT_EQ(graph.SoleOutput(), b);
  EXPECT_EQ(graph.vertex(at).parent, b);
  EXPECT_EQ(graph.VertexCount(), 4u);
  const std::string rendered = graph.ToString();
  EXPECT_NE(rendered.find("//b [output]"), std::string::npos);
  EXPECT_NE(rendered.find("@id"), std::string::npos);
}

TEST(PatternGraphTest, ValidateCatchesMissingOutput) {
  PatternGraph graph;
  graph.AddVertex(graph.root(), Axis::kChild, "a");
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(SchemaTreeTest, NodeCountAndRender) {
  SchemaNode root;
  root.kind = SchemaNodeKind::kElement;
  root.label = "results";
  SchemaNode result;
  result.kind = SchemaNodeKind::kElement;
  result.label = "result";
  result.iterate = 0;
  SchemaNode t;
  t.kind = SchemaNodeKind::kPlaceholder;
  t.expr = 1;
  result.children.push_back(std::move(t));
  root.children.push_back(std::move(result));
  SchemaTree tree(std::move(root));
  EXPECT_EQ(tree.NodeCount(), 3u);
  const std::string rendered = tree.ToString();
  EXPECT_NE(rendered.find("<results>"), std::string::npos);
  EXPECT_NE(rendered.find("phi=e0"), std::string::npos);
  EXPECT_NE(rendered.find("{e1}"), std::string::npos);
}

TEST(EnvTest, Figure2Example) {
  // for $a in (a1,a2,a3), $b in per-$a values,
  // let $c, $d, for $e — mirrors the paper's Fig. 2 structure.
  Env env;
  const int la = env.AddLayer("a", Env::LayerKind::kFor);
  const int lb = env.AddLayer("b", Env::LayerKind::kFor);
  const int lc = env.AddLayer("c", Env::LayerKind::kLet);
  const int le = env.AddLayer("e", Env::LayerKind::kFor);
  // $a: 3 bindings. $b fanouts: a1->2, a2->1, a3->3 (as in Fig. 2).
  const int b_fanout[] = {2, 1, 3};
  // $e fanouts per b-branch: 3,2,2,2,3,1 → 13 total tuples in the paper.
  const int e_fanout[] = {3, 2, 2, 2, 3, 1};
  int b_index = 0;
  for (int a = 0; a < 3; ++a) {
    const uint32_t na =
        env.AddBinding(la, Env::kNoParent, Sequence{Item(double(a))});
    for (int b = 0; b < b_fanout[a]; ++b) {
      const uint32_t nb =
          env.AddBinding(lb, na, Sequence{Item(double(b))});
      const uint32_t nc = env.AddBinding(lc, nb, Sequence{Item(1.0)});
      for (int e = 0; e < e_fanout[b_index]; ++e) {
        env.AddBinding(le, nc, Sequence{Item(double(e))});
      }
      ++b_index;
    }
  }
  EXPECT_EQ(env.TupleCount(), 13u);
  size_t seen = 0;
  env.ForEachTuple([&](const Env::Tuple& tuple) {
    ASSERT_EQ(tuple.size(), 4u);
    EXPECT_EQ(tuple[2]->at(0).number(), 1.0);  // the let value
    ++seen;
  });
  EXPECT_EQ(seen, 13u);
  EXPECT_NE(env.ToString().find("for $a: 3"), std::string::npos);
}

TEST(EnvTest, WhereLayerPrunesTuples) {
  Env env;
  const int la = env.AddLayer("a", Env::LayerKind::kFor);
  const int lw = env.AddLayer("", Env::LayerKind::kWhere);
  for (int a = 0; a < 4; ++a) {
    const uint32_t na =
        env.AddBinding(la, Env::kNoParent, Sequence{Item(double(a))});
    env.AddBinding(lw, na, Sequence{Item(a % 2 == 0)});
  }
  EXPECT_EQ(env.TupleCount(), 2u);
}

TEST(EnvTest, EmptyForLayerYieldsNoTuples) {
  Env env;
  env.AddLayer("a", Env::LayerKind::kFor);
  env.AddLayer("b", Env::LayerKind::kFor);
  env.AddBinding(0, Env::kNoParent, Sequence{Item(1.0)});
  // No bindings at layer b: zero total tuples.
  EXPECT_EQ(env.TupleCount(), 0u);
}

TEST(LogicalPlanTest, FactoriesAndPrinting) {
  LogicalExprPtr plan = MakeNavigate(
      MakeNavigate(MakeDocScan("bib.xml"), Axis::kChild, "bib", false),
      Axis::kDescendant, "book", false);
  const std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("Navigate(descendant::book)"), std::string::npos);
  EXPECT_NE(rendered.find("DocScan(bib.xml)"), std::string::npos);
  LogicalExprPtr copy = plan->Clone();
  EXPECT_EQ(copy->ToString(), rendered);
}

TEST(RewriteTest, FoldsNavigationChainIntoPattern) {
  LogicalExprPtr plan = MakeNavigate(
      MakeNavigate(MakeDocScan("d"), Axis::kChild, "bib", false),
      Axis::kDescendant, "book", false);
  const int n = FoldNavigationChains(&plan);
  EXPECT_EQ(n, 2);
  ASSERT_EQ(plan->op, LogicalOp::kTreePattern);
  ASSERT_NE(plan->pattern, nullptr);
  EXPECT_EQ(plan->pattern->VertexCount(), 3u);
  EXPECT_EQ(plan->pattern->SoleOutput(), 2u);
  EXPECT_EQ(plan->children[0]->op, LogicalOp::kDocScan);
}

TEST(RewriteTest, PushesSelectValueIntoPattern) {
  LogicalExprPtr plan = MakeSelectValue(
      MakeNavigate(MakeDocScan("d"), Axis::kChild, "price", false),
      ValuePredicate{CompareOp::kLt, "50", true});
  ApplyAllRewrites(&plan);
  ASSERT_EQ(plan->op, LogicalOp::kTreePattern);
  const VertexId out = plan->pattern->SoleOutput();
  ASSERT_EQ(plan->pattern->vertex(out).predicates.size(), 1u);
  EXPECT_EQ(plan->pattern->vertex(out).predicates[0].literal, "50");
}

TEST(RewriteTest, RemovesRedundantDedupAndFusesSelectTag) {
  // SelectTag over a wildcard step, wrapped in two dedups.
  LogicalExprPtr plan = MakeDocOrderDedup(MakeDocOrderDedup(MakeSelectTag(
      MakeNavigate(MakeDocScan("d"), Axis::kDescendant, "*", false),
      "item")));
  ApplyAllRewrites(&plan);
  // Everything collapses to a single TreePattern on descendant::item.
  ASSERT_EQ(plan->op, LogicalOp::kTreePattern);
  const VertexId out = plan->pattern->SoleOutput();
  EXPECT_EQ(plan->pattern->vertex(out).label, "item");
}

TEST(RewriteTest, DoesNotFoldPastNonFoldableInput) {
  LogicalExprPtr plan = MakeNavigate(MakeVarRef("b"), Axis::kChild, "title",
                                     false);
  EXPECT_EQ(ApplyAllRewrites(&plan), 0);
  EXPECT_EQ(plan->op, LogicalOp::kNavigate);
}

}  // namespace
}  // namespace xmlq::algebra
