#include <gtest/gtest.h>

#include "xmlq/api/database.h"
#include "xmlq/datagen/bib_gen.h"

namespace xmlq::api {
namespace {

constexpr std::string_view kBib =
    "<bib>"
    "<book year=\"1994\"><title>TCP/IP Illustrated</title>"
    "<author><last>Stevens</last><first>W.</first></author>"
    "<publisher>Addison-Wesley</publisher><price>65.95</price></book>"
    "<book year=\"2000\"><title>Data on the Web</title>"
    "<author><last>Abiteboul</last><first>Serge</first></author>"
    "<author><last>Buneman</last><first>Peter</first></author>"
    "<publisher>Morgan Kaufmann</publisher><price>39.95</price></book>"
    "</bib>";

TEST(DatabaseTest, LoadAndPathQuery) {
  Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  EXPECT_TRUE(db.Contains("bib.xml"));
  EXPECT_EQ(db.default_document(), "bib.xml");
  auto result = db.QueryPath("/bib/book/title");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->value.size(), 2u);
  EXPECT_EQ(Database::ToXml(*result),
            "<title>TCP/IP Illustrated</title>\n<title>Data on the Web"
            "</title>");
}

TEST(DatabaseTest, PathQueryWithPredicates) {
  Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  auto cheap = db.QueryPath("//book[price < 50]/title");
  ASSERT_TRUE(cheap.ok());
  EXPECT_EQ(Database::ToXml(*cheap), "<title>Data on the Web</title>");
  auto by_year = db.QueryPath("//book[@year = '1994']/author/last");
  ASSERT_TRUE(by_year.ok());
  EXPECT_EQ(Database::ToXml(*by_year), "<last>Stevens</last>");
}

TEST(DatabaseTest, XQueryEndToEnd) {
  Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  auto result = db.Query(
      "for $b in doc(\"bib.xml\")/bib/book "
      "where $b/price > 50 "
      "return $b/title");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Database::ToXml(*result), "<title>TCP/IP Illustrated</title>");
}

TEST(DatabaseTest, AllStrategiesAgree) {
  Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  std::string reference;
  for (const exec::PatternStrategy strategy :
       {exec::PatternStrategy::kNok, exec::PatternStrategy::kTwigStack,
        exec::PatternStrategy::kPathStack,
        exec::PatternStrategy::kBinaryJoin, exec::PatternStrategy::kNaive}) {
    QueryOptions options;
    options.auto_optimize = false;
    options.strategy = strategy;
    auto result = db.QueryPath("//book[author/last = 'Stevens']/title", {},
                               options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const std::string got = Database::ToXml(*result);
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(got, reference) << exec::PatternStrategyName(strategy);
    }
  }
  EXPECT_EQ(reference, "<title>TCP/IP Illustrated</title>");
}

TEST(DatabaseTest, RegisterGeneratedDocument) {
  Database db;
  datagen::BibOptions options;
  options.num_books = 25;
  ASSERT_TRUE(
      db.RegisterDocument("gen.xml", datagen::GenerateBibliography(options))
          .ok());
  auto result = db.Query("count(doc(\"gen.xml\")//book)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->value[0].NumberValue(), 25.0);
}

TEST(DatabaseTest, MultipleDocumentsJoinInFlwor) {
  Database db;
  ASSERT_TRUE(db.LoadDocument("a.xml", "<r><v>1</v><v>2</v></r>").ok());
  ASSERT_TRUE(db.LoadDocument("b.xml", "<r><v>2</v><v>3</v></r>").ok());
  auto result = db.Query(
      "for $x in doc(\"a.xml\")//v, $y in doc(\"b.xml\")//v "
      "where $x = $y return $x");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->value.size(), 1u);
  EXPECT_EQ(result->value[0].StringValue(), "2");
}

TEST(DatabaseTest, ExplainShowsPlanAndStrategy) {
  Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  auto explained = db.Query("//book/title").ok()
                       ? db.Explain("//book/title")
                       : Result<std::string>(Status::Internal("query failed"));
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  EXPECT_NE(explained->find("TreePattern"), std::string::npos);
  EXPECT_NE(explained->find("selected"), std::string::npos);
}

TEST(DatabaseTest, ReportShowsSuccinctWin) {
  Database db;
  datagen::BibOptions options;
  options.num_books = 500;
  ASSERT_TRUE(
      db.RegisterDocument("gen.xml", datagen::GenerateBibliography(options))
          .ok());
  auto report = db.Report("gen.xml");
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->node_count, 3000u);
  // The structure half of the succinct store beats the DOM arena by a wide
  // margin (the paper's storage claim).
  EXPECT_LT(report->succinct_structure_bytes, report->dom_bytes / 3);
  EXPECT_GT(report->region_index_bytes, 0u);
}

TEST(DatabaseTest, ErrorsSurfaceCleanly) {
  Database db;
  EXPECT_EQ(db.LoadDocument("x.xml", "<broken").code(),
            StatusCode::kParseError);
  ASSERT_TRUE(db.LoadDocument("ok.xml", "<r/>").ok());
  EXPECT_EQ(db.QueryPath("not a path").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(db.Query("doc(\"missing\")//a").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.Report("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.Get("missing"), nullptr);
}

TEST(DatabaseTest, RewriteToggleAffectsPlanNotResult) {
  Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  QueryOptions no_rewrites;
  no_rewrites.apply_rewrites = false;
  auto a = db.Query("//book/title");
  auto b = db.Query("//book/title", no_rewrites);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Database::ToXml(*a), Database::ToXml(*b));
  auto plan_opt = db.Explain("//book/title");
  auto plan_raw = db.Explain("//book/title", no_rewrites);
  ASSERT_TRUE(plan_opt.ok());
  ASSERT_TRUE(plan_raw.ok());
  EXPECT_NE(plan_opt->find("TreePattern"), std::string::npos);
  EXPECT_NE(plan_raw->find("Navigate"), std::string::npos);
}

}  // namespace
}  // namespace xmlq::api
