#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <utility>

#include "xmlq/base/crc32.h"
#include "xmlq/base/random.h"
#include "xmlq/base/status.h"
#include "xmlq/base/strings.h"

namespace xmlq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "parse_error: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "invalid_argument");
  EXPECT_EQ(StatusCodeName(StatusCode::kParseError), "parse_error");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "not_found");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnsupported), "unsupported");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "out_of_range");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "internal");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "resource_exhausted");
  EXPECT_EQ(StatusCodeName(StatusCode::kCancelled), "cancelled");
}

TEST(StatusTest, CodeNamesRoundTrip) {
  // Every code must serialize to a unique name and parse back to itself, so
  // codes survive a trip through logs / CLI flags / test expectations.
  for (const StatusCode code : kAllStatusCodes) {
    const std::string_view name = StatusCodeName(code);
    EXPECT_NE(name, "unknown") << static_cast<int>(code);
    const auto parsed = StatusCodeFromName(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, code) << name;
  }
  EXPECT_FALSE(StatusCodeFromName("no_such_code").has_value());
  EXPECT_FALSE(StatusCodeFromName("").has_value());
}

TEST(StatusTest, FactoryCoverage) {
  // One factory per error code, each tagging the right code and preserving
  // the message.
  const std::pair<Status, StatusCode> cases[] = {
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument},
      {Status::ParseError("m"), StatusCode::kParseError},
      {Status::NotFound("m"), StatusCode::kNotFound},
      {Status::Unsupported("m"), StatusCode::kUnsupported},
      {Status::OutOfRange("m"), StatusCode::kOutOfRange},
      {Status::Internal("m"), StatusCode::kInternal},
      {Status::ResourceExhausted("m"), StatusCode::kResourceExhausted},
      {Status::Cancelled("m"), StatusCode::kCancelled},
  };
  for (const auto& [status, code] : cases) {
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), code);
    EXPECT_EQ(status.message(), "m");
    EXPECT_EQ(status.ToString(),
              std::string(StatusCodeName(code)) + ": m");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  XMLQ_ASSIGN_OR_RETURN(int h, Half(x));
  XMLQ_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 3 is odd at the second step
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \r\n\t "), "");
  EXPECT_EQ(TrimWhitespace("x"), "x");
}

TEST(StringsTest, IsAllWhitespace) {
  EXPECT_TRUE(IsAllWhitespace(""));
  EXPECT_TRUE(IsAllWhitespace(" \t\r\n"));
  EXPECT_FALSE(IsAllWhitespace(" x "));
}

TEST(StringsTest, Split) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringsTest, ParseDouble) {
  EXPECT_EQ(ParseDouble("3.5"), 3.5);
  EXPECT_EQ(ParseDouble("  -2 "), -2.0);
  EXPECT_EQ(ParseDouble("1e3"), 1000.0);
  EXPECT_FALSE(ParseDouble("12abc").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("   ").has_value());
}

TEST(StringsTest, ParseInt) {
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt(" -7 "), -7);
  EXPECT_FALSE(ParseInt("4.2").has_value());
  EXPECT_FALSE(ParseInt("x").has_value());
}

TEST(StringsTest, FormatNumber) {
  EXPECT_EQ(FormatNumber(42.0), "42");
  EXPECT_EQ(FormatNumber(-3.0), "-3");
  EXPECT_EQ(FormatNumber(3.14), "3.14");
  EXPECT_EQ(FormatNumber(0.0), "0");
}

TEST(StringsTest, IsValidName) {
  EXPECT_TRUE(IsValidName("book"));
  EXPECT_TRUE(IsValidName("_a-b.c"));
  EXPECT_FALSE(IsValidName(""));
  EXPECT_FALSE(IsValidName("1abc"));
  EXPECT_FALSE(IsValidName("a b"));
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Range(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Crc32Test, KnownAnswers) {
  // CRC-32C check value (RFC 3720 appendix / iSCSI test vectors).
  EXPECT_EQ(Crc32("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32("", 0), 0u);
  const unsigned char zeros[32] = {};
  EXPECT_EQ(Crc32(zeros, 32), 0x8A9136AAu);
}

TEST(Crc32Test, SeedChainsBlocks) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data.data(), data.size());
  for (const size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{20},
                             data.size()}) {
    const uint32_t first = Crc32(data.data(), split);
    EXPECT_EQ(Crc32(data.data() + split, data.size() - split, first), whole)
        << split;
  }
}

TEST(Crc32Test, HardwareMatchesSoftware) {
  if (!internal::Crc32HardwareAvailable()) {
    GTEST_SKIP() << "no sse4.2; Crc32 is the software path already";
  }
  Rng rng(98765);
  // Lengths straddling every loop boundary of the hardware kernel: byte
  // tail, 8-byte stride, the 512 B and 8 KiB interleave blocks.
  const size_t kLengths[] = {0,    1,    7,     8,     9,     63,    64,
                             511,  512,  1535,  1536,  4095,  8192,  24575,
                             24576, 24577, 100000};
  for (const size_t len : kLengths) {
    std::string data(len, '\0');
    for (char& c : data) c = static_cast<char>(rng.Below(256));
    // Unaligned starts too: the kernel has a peel-off loop for them.
    for (const size_t skip : {size_t{0}, size_t{1}, size_t{3}}) {
      if (skip > len) continue;
      const uint32_t seed = static_cast<uint32_t>(rng.Next());
      EXPECT_EQ(Crc32(data.data() + skip, len - skip, seed),
                internal::Crc32Software(data.data() + skip, len - skip, seed))
          << "len=" << len << " skip=" << skip;
    }
  }
}

}  // namespace
}  // namespace xmlq
