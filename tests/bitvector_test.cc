#include <gtest/gtest.h>

#include <vector>

#include "xmlq/base/random.h"
#include "xmlq/storage/bitvector.h"

namespace xmlq::storage {
namespace {

/// Naive reference implementation over a plain vector<bool>.
struct NaiveBits {
  std::vector<bool> bits;

  size_t Rank1(size_t i) const {
    size_t r = 0;
    for (size_t k = 0; k < i; ++k) r += bits[k] ? 1 : 0;
    return r;
  }
  size_t Select1(size_t k) const {
    for (size_t i = 0; i < bits.size(); ++i) {
      if (bits[i] && k-- == 0) return i;
    }
    return SIZE_MAX;
  }
  size_t Select0(size_t k) const {
    for (size_t i = 0; i < bits.size(); ++i) {
      if (!bits[i] && k-- == 0) return i;
    }
    return SIZE_MAX;
  }
};

TEST(BitVectorTest, EmptyVector) {
  BitVector bv;
  bv.Freeze();
  EXPECT_EQ(bv.size(), 0u);
  EXPECT_EQ(bv.OneCount(), 0u);
  EXPECT_EQ(bv.Rank1(0), 0u);
}

TEST(BitVectorTest, SmallKnownValues) {
  BitVector bv;
  // 1 0 1 1 0 0 1
  for (bool b : {true, false, true, true, false, false, true}) {
    bv.PushBack(b);
  }
  bv.Freeze();
  EXPECT_EQ(bv.size(), 7u);
  EXPECT_EQ(bv.OneCount(), 4u);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.Rank1(0), 0u);
  EXPECT_EQ(bv.Rank1(3), 2u);
  EXPECT_EQ(bv.Rank1(7), 4u);
  EXPECT_EQ(bv.Rank0(7), 3u);
  EXPECT_EQ(bv.Select1(0), 0u);
  EXPECT_EQ(bv.Select1(3), 6u);
  EXPECT_EQ(bv.Select0(0), 1u);
  EXPECT_EQ(bv.Select0(2), 5u);
}

class BitVectorPropertyTest : public ::testing::TestWithParam<
                                  std::tuple<size_t, double, uint64_t>> {};

TEST_P(BitVectorPropertyTest, MatchesNaiveReference) {
  const auto [n, density, seed] = GetParam();
  Rng rng(seed);
  BitVector bv;
  NaiveBits naive;
  for (size_t i = 0; i < n; ++i) {
    const bool bit = rng.Chance(density);
    bv.PushBack(bit);
    naive.bits.push_back(bit);
  }
  bv.Freeze();
  ASSERT_EQ(bv.size(), n);
  // Rank at every position (plus the end).
  for (size_t i = 0; i <= n; ++i) {
    ASSERT_EQ(bv.Rank1(i), naive.Rank1(i)) << "rank at " << i;
  }
  // Select over all ones and zeros.
  const size_t ones = bv.OneCount();
  for (size_t k = 0; k < ones; ++k) {
    ASSERT_EQ(bv.Select1(k), naive.Select1(k)) << "select1 " << k;
  }
  for (size_t k = 0; k < n - ones; ++k) {
    ASSERT_EQ(bv.Select0(k), naive.Select0(k)) << "select0 " << k;
  }
  // Rank/select are inverses.
  for (size_t k = 0; k < ones; ++k) {
    ASSERT_EQ(bv.Rank1(bv.Select1(k)), k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BitVectorPropertyTest,
    ::testing::Values(std::make_tuple(size_t{1}, 0.5, 1ull),
                      std::make_tuple(size_t{63}, 0.5, 2ull),
                      std::make_tuple(size_t{64}, 0.5, 3ull),
                      std::make_tuple(size_t{65}, 0.5, 4ull),
                      std::make_tuple(size_t{511}, 0.9, 5ull),
                      std::make_tuple(size_t{512}, 0.1, 6ull),
                      std::make_tuple(size_t{513}, 0.02, 7ull),
                      std::make_tuple(size_t{4096}, 0.5, 8ull),
                      std::make_tuple(size_t{10000}, 0.33, 9ull),
                      std::make_tuple(size_t{10000}, 0.99, 10ull)));

TEST(BitVectorTest, AllOnesAndAllZeros) {
  BitVector ones;
  BitVector zeros;
  for (int i = 0; i < 300; ++i) {
    ones.PushBack(true);
    zeros.PushBack(false);
  }
  ones.Freeze();
  zeros.Freeze();
  EXPECT_EQ(ones.Rank1(300), 300u);
  EXPECT_EQ(ones.Select1(299), 299u);
  EXPECT_EQ(zeros.Rank1(300), 0u);
  EXPECT_EQ(zeros.Select0(299), 299u);
}

TEST(BitVectorTest, MemoryUsageIsCompact) {
  BitVector bv;
  const size_t n = 100000;
  Rng rng(3);
  for (size_t i = 0; i < n; ++i) bv.PushBack(rng.Chance(0.5));
  bv.Freeze();
  // Payload is n/8 bytes; directories must stay within a small multiple.
  EXPECT_LT(bv.MemoryUsage(), n / 8 * 2);
}

}  // namespace
}  // namespace xmlq::storage
