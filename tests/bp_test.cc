#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xmlq/base/random.h"
#include "xmlq/storage/bp.h"

namespace xmlq::storage {
namespace {

BalancedParens FromString(const std::string& parens) {
  BalancedParens bp;
  for (char c : parens) bp.PushBack(c == '(');
  bp.Freeze();
  return bp;
}

/// Naive matching-parenthesis scan.
struct NaiveBp {
  std::string s;

  size_t FindClose(size_t i) const {
    int depth = 0;
    for (size_t j = i; j < s.size(); ++j) {
      depth += s[j] == '(' ? 1 : -1;
      if (depth == 0) return j;
    }
    return kNoPos;
  }
  size_t FindOpen(size_t i) const {
    int depth = 0;
    for (size_t j = i + 1; j-- > 0;) {
      depth += s[j] == ')' ? 1 : -1;
      if (depth == 0) return j;
    }
    return kNoPos;
  }
  size_t Enclose(size_t i) const {
    // Parent open paren of the node opening at i.
    int depth = 0;
    for (size_t j = i; j-- > 0;) {
      depth += s[j] == ')' ? 1 : -1;
      if (depth == -1) return j;
    }
    return kNoPos;
  }
};

TEST(BalancedParensTest, SingleNode) {
  BalancedParens bp = FromString("()");
  EXPECT_EQ(bp.NodeCount(), 1u);
  EXPECT_EQ(bp.FindClose(0), 1u);
  EXPECT_EQ(bp.FindOpen(1), 0u);
  EXPECT_EQ(bp.Enclose(0), kNoPos);
  EXPECT_EQ(bp.SubtreeSize(0), 1u);
  EXPECT_EQ(bp.DepthAt(0), 0u);
}

TEST(BalancedParensTest, KnownSmallTree) {
  // ( ( () () ) () )  — root with children {x(children a,b)}, {y}
  BalancedParens bp = FromString("((()())())");
  EXPECT_EQ(bp.NodeCount(), 5u);
  EXPECT_EQ(bp.FindClose(0), 9u);
  EXPECT_EQ(bp.FindClose(1), 6u);
  EXPECT_EQ(bp.FindClose(2), 3u);
  EXPECT_EQ(bp.Enclose(1), 0u);
  EXPECT_EQ(bp.Enclose(2), 1u);
  EXPECT_EQ(bp.Enclose(4), 1u);
  EXPECT_EQ(bp.Enclose(7), 0u);
  EXPECT_EQ(bp.FindOpen(3), 2u);
  EXPECT_EQ(bp.FindOpen(9), 0u);
  EXPECT_EQ(bp.SubtreeSize(1), 3u);
  EXPECT_EQ(bp.DepthAt(2), 2u);
  EXPECT_EQ(bp.Excess(0), 1);
  EXPECT_EQ(bp.Excess(9), 0);
}

/// Random balanced sequence built from a random tree walk.
std::string RandomParens(Rng* rng, size_t target_nodes, int max_depth) {
  std::string out;
  size_t created = 0;
  int depth = 0;
  // Random DFS: at each step either open a new child or close the current.
  while (created < target_nodes || depth > 0) {
    const bool can_open = created < target_nodes && depth < max_depth;
    const bool must_open = depth == 0 && created < target_nodes;
    if (must_open || (can_open && rng->Chance(0.55))) {
      out.push_back('(');
      ++created;
      ++depth;
    } else {
      out.push_back(')');
      --depth;
    }
  }
  return out;
}

class BpPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, int, uint64_t>> {};

TEST_P(BpPropertyTest, MatchesNaiveOnRandomTrees) {
  const auto [nodes, max_depth, seed] = GetParam();
  Rng rng(seed);
  const std::string s = RandomParens(&rng, nodes, max_depth);
  BalancedParens bp = FromString(s);
  NaiveBp naive{s};
  ASSERT_EQ(bp.NodeCount(), nodes);
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '(') {
      ASSERT_EQ(bp.FindClose(i), naive.FindClose(i)) << "FindClose " << i;
      ASSERT_EQ(bp.Enclose(i), naive.Enclose(i)) << "Enclose " << i;
    } else {
      ASSERT_EQ(bp.FindOpen(i), naive.FindOpen(i)) << "FindOpen " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BpPropertyTest,
    ::testing::Values(std::make_tuple(size_t{1}, 4, 1ull),
                      std::make_tuple(size_t{10}, 4, 2ull),
                      std::make_tuple(size_t{100}, 8, 3ull),
                      std::make_tuple(size_t{500}, 6, 4ull),
                      std::make_tuple(size_t{500}, 60, 5ull),
                      std::make_tuple(size_t{5000}, 12, 6ull),
                      std::make_tuple(size_t{5000}, 3, 7ull),
                      std::make_tuple(size_t{20000}, 20, 8ull)));

TEST(BalancedParensTest, DeepChain) {
  // 2000 nested nodes: stresses backward search across superblocks.
  const size_t depth = 2000;
  std::string s(depth, '(');
  s.append(depth, ')');
  BalancedParens bp = FromString(s);
  EXPECT_EQ(bp.FindClose(0), 2 * depth - 1);
  EXPECT_EQ(bp.FindClose(depth - 1), depth);
  EXPECT_EQ(bp.Enclose(depth - 1), depth - 2);
  EXPECT_EQ(bp.FindOpen(2 * depth - 1), 0u);
  EXPECT_EQ(bp.DepthAt(depth - 1), depth - 1);
}

TEST(BalancedParensTest, WideFan) {
  // Root with 3000 leaf children: stresses forward skipping.
  std::string s = "(";
  for (int i = 0; i < 3000; ++i) s += "()";
  s += ")";
  BalancedParens bp = FromString(s);
  EXPECT_EQ(bp.FindClose(0), s.size() - 1);
  for (size_t i = 1; i + 1 < s.size(); i += 2) {
    ASSERT_EQ(bp.FindClose(i), i + 1);
    ASSERT_EQ(bp.Enclose(i), 0u);
  }
}

}  // namespace
}  // namespace xmlq::storage
