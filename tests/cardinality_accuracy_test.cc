// Closes the loop between the optimizer and the executor: the synopsis-based
// cardinality estimates annotated onto the profile tree (EXPLAIN ANALYZE's
// `est=`) are compared against the *actual* cardinalities the profiled run
// observed. Predicate-free single-tag patterns must be estimated exactly
// (q-error == 1: the path synopsis stores true tag counts); structural twigs
// and value predicates get a generous-but-bounded q-error budget, and the
// worst offenders are printed so estimate regressions are visible in the
// test log before they become plan regressions.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "xmlq/api/database.h"
#include "xmlq/datagen/auction_gen.h"
#include "xmlq/datagen/random_tree.h"
#include "xmlq/exec/op_stats.h"

namespace xmlq {
namespace {

/// All profile nodes carrying an optimizer estimate, depth-first.
void CollectEstimated(const exec::ProfileNode& node,
                      std::vector<const exec::ProfileNode*>* out) {
  if (node.estimate.HasRows()) out->push_back(&node);
  for (const exec::ProfileNode& child : node.children) {
    CollectEstimated(child, out);
  }
}

struct Offender {
  std::string query;
  std::string label;
  double estimated;
  double actual;
  double q_error;
};

/// Runs `path` with stats and returns one offender entry per estimated
/// operator in its profile.
std::vector<Offender> QErrorsFor(api::Database& db, const std::string& path) {
  api::QueryOptions options;
  options.collect_stats = true;
  auto result = db.QueryPath(path, {}, options);
  EXPECT_TRUE(result.ok()) << path << ": " << result.status().ToString();
  if (!result.ok()) return {};
  EXPECT_NE(result->profile, nullptr) << path;
  if (result->profile == nullptr) return {};
  std::vector<const exec::ProfileNode*> nodes;
  CollectEstimated(result->profile->root(), &nodes);
  std::vector<Offender> offenders;
  for (const exec::ProfileNode* node : nodes) {
    offenders.push_back(Offender{path, node->label, node->estimate.rows,
                                 node->ActualRows(), node->QError()});
  }
  return offenders;
}

class CardinalityAccuracyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new api::Database;
    datagen::AuctionOptions options;
    options.scale = 0.08;
    options.seed = 23;
    ASSERT_TRUE(
        db_->RegisterDocument("auction.xml",
                              datagen::GenerateAuctionSite(options))
            .ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static api::Database* db_;
};

api::Database* CardinalityAccuracyTest::db_ = nullptr;

TEST_F(CardinalityAccuracyTest, SingleTagPatternsAreEstimatedExactly) {
  // The synopsis records the true count of every tag, so a bare //tag scan
  // must carry a perfect estimate: q-error exactly 1.
  for (const char* tag : {"person", "item", "open_auction", "closed_auction",
                          "category", "bidder", "name"}) {
    const std::string path = std::string("//") + tag;
    for (const Offender& o : QErrorsFor(*db_, path)) {
      EXPECT_DOUBLE_EQ(o.q_error, 1.0)
          << path << " @ " << o.label << ": est=" << o.estimated
          << " actual=" << o.actual;
    }
  }
}

TEST_F(CardinalityAccuracyTest, TwigAndPredicateEstimatesStayBounded) {
  // Structural twigs and value predicates use independence and default
  // selectivities, so estimates drift — but the drift must stay inside a
  // fixed q-error budget on this workload, or plan choices degrade.
  constexpr double kQErrorBudget = 64.0;
  const char* paths[] = {
      "//person/name",
      "//person[address]/name",
      "//person[address][phone]",
      "//person/profile/education",
      "//item/mailbox/mail",
      "//item[payment = 'Cash']/location",
      "//item[quantity = '1']",
      "//open_auction[bidder]/current",
      "//closed_auction/price",
      "//regions//item",
      "//category/description/text",
      "//mail[date]/from",
  };
  std::vector<Offender> all;
  for (const char* path : paths) {
    std::vector<Offender> offenders = QErrorsFor(*db_, path);
    all.insert(all.end(), offenders.begin(), offenders.end());
  }
  ASSERT_FALSE(all.empty());
  std::sort(all.begin(), all.end(), [](const Offender& a, const Offender& b) {
    return a.q_error > b.q_error;
  });
  // Print the worst offenders so estimate drift shows up in the log even
  // while it is still within budget.
  const size_t worst_n = std::min<size_t>(5, all.size());
  for (size_t i = 0; i < worst_n; ++i) {
    const Offender& o = all[i];
    std::printf("  worst[%zu] q-error=%6.2f  est=%8.1f actual=%8.1f  %s @ %s\n",
                i, o.q_error, o.estimated, o.actual, o.query.c_str(),
                o.label.c_str());
  }
  for (const Offender& o : all) {
    EXPECT_LE(o.q_error, kQErrorBudget)
        << o.query << " @ " << o.label << ": est=" << o.estimated
        << " actual=" << o.actual;
  }
}

TEST(CardinalityAccuracyRandomTreeTest, ExactForSingleTagsAcrossSeeds) {
  for (const uint64_t seed : {31ull, 32ull, 33ull}) {
    datagen::RandomTreeOptions options;
    options.seed = seed;
    options.num_elements = 300;
    options.tag_vocabulary = 5;
    api::Database db;
    ASSERT_TRUE(
        db.RegisterDocument("r.xml", datagen::GenerateRandomTree(options))
            .ok());
    for (const char* tag : {"t0", "t1", "t2", "t3", "t4"}) {
      for (const Offender& o : QErrorsFor(db, std::string("//") + tag)) {
        EXPECT_DOUBLE_EQ(o.q_error, 1.0)
            << "seed=" << seed << " //" << tag << " @ " << o.label
            << ": est=" << o.estimated << " actual=" << o.actual;
      }
    }
  }
}

}  // namespace
}  // namespace xmlq
