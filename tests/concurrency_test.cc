// Concurrent serving suite: admission control, cooperative cancellation,
// copy-on-write catalog swaps under load, circuit-breaker state machine,
// engine-fault fallback, and the thread-safety contracts of the fault
// injector and the per-thread Rng seeding rule. The MixedStress test is the
// one the TSan CI stage exists for: N worker threads run a mixed query
// workload while a writer thread swaps documents and a canceller thread
// kills random in-flight queries; every query must end in exactly one of
// {ordered-correct result for some pinned document version, kCancelled,
// kResourceExhausted}.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "xmlq/api/database.h"
#include "xmlq/base/fault_injector.h"
#include "xmlq/base/limits.h"
#include "xmlq/base/random.h"
#include "xmlq/datagen/auction_gen.h"
#include "xmlq/exec/admission.h"

namespace xmlq {
namespace {

std::unique_ptr<xml::Document> Auction(double scale, uint64_t seed) {
  datagen::AuctionOptions options;
  options.scale = scale;
  options.seed = seed;
  return datagen::GenerateAuctionSite(options);
}

// ---------------------------------------------------------------------------
// Cancellation

TEST(CancellationTest, PreCancelledTokenReturnsCancelled) {
  api::Database db;
  ASSERT_TRUE(db.RegisterDocument("a.xml", Auction(0.02, 7)).ok());
  auto token = std::make_shared<CancelToken>();
  token->Cancel();
  api::QueryOptions options;
  options.limits.cancel_token = token;
  auto result = db.QueryPath("//person/name", {}, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(CancellationTest, CancelByIdStopsARunningQuery) {
  api::Database db;
  ASSERT_TRUE(db.RegisterDocument("a.xml", Auction(0.15, 7)).ok());
  std::atomic<uint64_t> query_id{0};
  std::atomic<bool> done{false};
  Status status = Status::Ok();
  std::thread runner([&] {
    api::QueryOptions options;
    options.query_id_out = &query_id;
    // A query with enough work that the canceller has time to land; if it
    // finishes first the test still passes (the cancel just returns false).
    auto result = db.Query(
        "for $p in doc(\"a.xml\")//person, $q in doc(\"a.xml\")//person "
        "where $p/name = $q/name return $p/name",
        options);
    if (!result.ok()) status = result.status();
    done.store(true);
  });
  while (query_id.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  const bool cancelled = db.Cancel(query_id.load());
  runner.join();
  if (cancelled && !status.ok()) {
    EXPECT_EQ(status.code(), StatusCode::kCancelled);
  }
  EXPECT_TRUE(done.load());
  // The id is unregistered once the query finishes.
  EXPECT_FALSE(db.Cancel(query_id.load()));
}

// ---------------------------------------------------------------------------
// QueryScheduler

TEST(QuerySchedulerTest, RejectsWhenQueueIsFullWithRetryHint) {
  exec::QueryScheduler scheduler;
  scheduler.Configure({.max_concurrent = 1, .max_queue = 0,
                       .queue_deadline_micros = 1000});
  auto first = scheduler.Admit();
  ASSERT_TRUE(first.ok());
  auto second = scheduler.Admit();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(second.status().message().find("retry-after-micros=1000"),
            std::string::npos)
      << second.status().ToString();
  // The hint is exposed structurally too — one unit (micros) end-to-end:
  // config, status detail, stats, and the wire protocol's response field.
  EXPECT_EQ(exec::RetryAfterMicrosFromStatus(second.status()), 1000u);
  const exec::AdmissionStats stats = scheduler.Stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.running, 1u);
  EXPECT_EQ(stats.retry_after_micros, 1000u);
}

TEST(QuerySchedulerTest, RetryAfterHintIsStructuredEndToEnd) {
  exec::QueryScheduler scheduler;
  // Bounded queue with a 7500us deadline: the hint tracks the deadline.
  scheduler.Configure({.max_concurrent = 1, .max_queue = 0,
                       .queue_deadline_micros = 7500});
  EXPECT_EQ(scheduler.Stats().retry_after_micros, 7500u);
  auto slot = scheduler.Admit();
  ASSERT_TRUE(slot.ok());
  auto rejected = scheduler.Admit();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(exec::RetryAfterMicrosFromStatus(rejected.status()), 7500u);
  auto tried = scheduler.TryAdmit();
  ASSERT_FALSE(tried.ok());
  EXPECT_EQ(exec::RetryAfterMicrosFromStatus(tried.status()), 7500u);

  // Unbounded waiting: the scheduler advertises its 1ms default hint.
  scheduler.Configure({.max_concurrent = 1, .max_queue = 0,
                       .queue_deadline_micros = 0});
  EXPECT_EQ(scheduler.Stats().retry_after_micros, 1000u);

  // Statuses that are not admission rejections carry no hint.
  EXPECT_EQ(exec::RetryAfterMicrosFromStatus(Status::Ok()), 0u);
  EXPECT_EQ(exec::RetryAfterMicrosFromStatus(
                Status::ResourceExhausted("query deadline exceeded")),
            0u);
  EXPECT_EQ(exec::RetryAfterMicrosFromStatus(
                Status::Internal("retry-after-micros=99")),
            0u);
}

TEST(QuerySchedulerTest, ShedsAfterQueueDeadline) {
  exec::QueryScheduler scheduler;
  scheduler.Configure({.max_concurrent = 1, .max_queue = 4,
                       .queue_deadline_micros = 2000});
  auto first = scheduler.Admit();
  ASSERT_TRUE(first.ok());
  auto second = scheduler.Admit();  // queues, then sheds after ~2ms
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(second.status().message().find("shed"), std::string::npos);
  const exec::AdmissionStats stats = scheduler.Stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.queued, 0u);
  first->Release();
  EXPECT_EQ(scheduler.Stats().running, 0u);
}

TEST(QuerySchedulerTest, CancelWhileQueuedLeavesTheQueue) {
  exec::QueryScheduler scheduler;
  scheduler.Configure({.max_concurrent = 1, .max_queue = 4,
                       .queue_deadline_micros = 0});  // unbounded wait
  auto first = scheduler.Admit();
  ASSERT_TRUE(first.ok());
  CancelToken cancel;
  Status queued_status = Status::Ok();
  std::thread waiter([&] {
    auto ticket = scheduler.Admit(&cancel);
    if (!ticket.ok()) queued_status = ticket.status();
  });
  // Wait until the waiter is actually queued.
  while (scheduler.Stats().queued == 0) std::this_thread::yield();
  cancel.Cancel();
  scheduler.Poke();
  waiter.join();
  EXPECT_EQ(queued_status.code(), StatusCode::kCancelled);
  const exec::AdmissionStats stats = scheduler.Stats();
  EXPECT_EQ(stats.cancelled_while_queued, 1u);
  EXPECT_EQ(stats.queued, 0u);
}

TEST(QuerySchedulerTest, TicketReleaseFreesTheSlot) {
  exec::QueryScheduler scheduler;
  scheduler.Configure({.max_concurrent = 1, .max_queue = 0,
                       .queue_deadline_micros = 100});
  {
    auto ticket = scheduler.Admit();
    ASSERT_TRUE(ticket.ok());
    EXPECT_EQ(ticket->admitted_seq(), 1u);
  }  // RAII release
  auto next = scheduler.Admit();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->admitted_seq(), 2u);
}

// ---------------------------------------------------------------------------
// Circuit breaker (deterministic, single-threaded)

TEST(CircuitBreakerTest, OpensProbesAndCloses) {
  exec::CircuitBreaker breaker(
      {.fault_threshold = 2, .cooldown_admissions = 3});
  const auto kEngine = exec::PatternStrategy::kTwigStack;
  using State = exec::CircuitBreaker::State;

  // Closed: faults below the threshold keep it closed.
  EXPECT_TRUE(breaker.Allow(kEngine, 1));
  breaker.RecordFault(kEngine, 1);
  EXPECT_EQ(breaker.StateOf(kEngine), State::kClosed);
  EXPECT_TRUE(breaker.Allow(kEngine, 2));
  breaker.RecordFault(kEngine, 2);  // second consecutive fault -> open
  EXPECT_EQ(breaker.StateOf(kEngine), State::kOpen);

  // Open: quarantined until the cool-down (3 admissions) elapses.
  EXPECT_FALSE(breaker.Allow(kEngine, 3));
  EXPECT_FALSE(breaker.Allow(kEngine, 4));
  // Cool-down elapsed: exactly one probe goes through.
  EXPECT_TRUE(breaker.Allow(kEngine, 5));
  EXPECT_EQ(breaker.StateOf(kEngine), State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow(kEngine, 6));  // probe in flight

  // Probe faults: reopen, cool-down restarts from the probe's admission.
  breaker.RecordFault(kEngine, 6);
  EXPECT_EQ(breaker.StateOf(kEngine), State::kOpen);
  EXPECT_FALSE(breaker.Allow(kEngine, 7));
  EXPECT_TRUE(breaker.Allow(kEngine, 9));  // 6 + 3
  EXPECT_EQ(breaker.StateOf(kEngine), State::kHalfOpen);

  // Probe succeeds: closed and healthy again.
  breaker.RecordSuccess(kEngine);
  EXPECT_EQ(breaker.StateOf(kEngine), State::kClosed);
  EXPECT_EQ(breaker.ConsecutiveFaults(kEngine), 0u);
  EXPECT_TRUE(breaker.Allow(kEngine, 10));

  // The naive engine is never managed.
  breaker.RecordFault(exec::PatternStrategy::kNaive, 1);
  breaker.RecordFault(exec::PatternStrategy::kNaive, 2);
  EXPECT_TRUE(breaker.Allow(exec::PatternStrategy::kNaive, 3));
  EXPECT_EQ(breaker.StateOf(exec::PatternStrategy::kNaive), State::kClosed);
}

TEST(CircuitBreakerTest, SlotsAreIndependent) {
  exec::CircuitBreaker breaker(
      {.fault_threshold = 1, .cooldown_admissions = 100});
  breaker.RecordFault(exec::PatternStrategy::kNok, 1);
  EXPECT_EQ(breaker.StateOf(exec::PatternStrategy::kNok),
            exec::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.StateOf(exec::PatternStrategy::kTwigStack),
            exec::CircuitBreaker::State::kClosed);
  EXPECT_NE(breaker.Render().find("nok"), std::string::npos);
  EXPECT_NE(breaker.Render().find("open"), std::string::npos);
}

/// End-to-end breaker behaviour through the Database: arm a permanent fault
/// in TwigStack, watch queries degrade, the breaker open (quarantine: the
/// engine is no longer attempted), the cool-down elapse and the probe
/// re-open it. The fault injector's flat Hits() counter proves whether the
/// engine was attempted.
TEST(CircuitBreakerTest, DatabaseQuarantinesAFaultyEngine) {
  api::Database db;
  ASSERT_TRUE(db.RegisterDocument("a.xml", Auction(0.02, 7)).ok());
  db.SetBreaker({.fault_threshold = 2, .cooldown_admissions = 3});
  FaultInjector::Instance().Arm("exec.twigstack.match");

  api::QueryOptions options;
  options.auto_optimize = false;
  options.strategy = exec::PatternStrategy::kTwigStack;
  auto run = [&] {
    auto result = db.QueryPath("//person[address]/name", {}, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->degraded);
  };

  // Queries 1 and 2 attempt the engine, fault, fall back; breaker opens.
  run();
  run();
  const uint64_t hits_when_open =
      FaultInjector::Instance().Hits("exec.twigstack.match");
  EXPECT_GE(hits_when_open, 2u);
  EXPECT_NE(db.BreakerReport().find("twigstack: open"), std::string::npos)
      << db.BreakerReport();

  // Query 3 is quarantined: naive runs, the engine is NOT attempted.
  run();
  EXPECT_EQ(FaultInjector::Instance().Hits("exec.twigstack.match"),
            hits_when_open);

  // Burn admissions until the cool-down elapses, then the probe attempts
  // the engine again (hits advance), faults, and the breaker re-opens.
  run();
  run();
  run();
  EXPECT_GT(FaultInjector::Instance().Hits("exec.twigstack.match"),
            hits_when_open);
  EXPECT_NE(db.BreakerReport().find("twigstack: open"), std::string::npos)
      << db.BreakerReport();

  // Disarm: after the next cool-down the probe succeeds and the breaker
  // closes; queries stop degrading. The first post-reset query is still
  // inside the cool-down (degraded); within a few more the probe runs
  // clean and closes the slot.
  FaultInjector::Instance().Reset();
  run();  // still quarantined (cool-down)
  auto healthy = db.QueryPath("//person[address]/name", {}, options);
  ASSERT_TRUE(healthy.ok());
  for (int i = 0; i < 4 && healthy->degraded; ++i) {
    healthy = db.QueryPath("//person[address]/name", {}, options);
    ASSERT_TRUE(healthy.ok());
  }
  EXPECT_FALSE(healthy->degraded);
  EXPECT_NE(db.BreakerReport().find("healthy"), std::string::npos)
      << db.BreakerReport();
}

TEST(CircuitBreakerTest, ExplainAnalyzeShowsTheDowngrade) {
  api::Database db;
  ASSERT_TRUE(db.RegisterDocument("a.xml", Auction(0.02, 7)).ok());
  db.SetBreaker({.fault_threshold = 100, .cooldown_admissions = 100});
  FaultInjector::Instance().Arm("exec.twigstack.match", /*skip=*/0,
                                /*count=*/1);
  api::QueryOptions options;
  options.auto_optimize = false;
  options.strategy = exec::PatternStrategy::kTwigStack;
  auto rendered = db.ExplainAnalyze("//person[address]/name", options);
  FaultInjector::Instance().Reset();
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  EXPECT_NE(rendered->find("twigstack->naive (fault)"), std::string::npos)
      << *rendered;
  EXPECT_NE(rendered->find("degraded:"), std::string::npos) << *rendered;
}

// ---------------------------------------------------------------------------
// Fallback correctness

TEST(FallbackTest, FaultedQueryMatchesNaiveResult) {
  api::Database db;
  ASSERT_TRUE(db.RegisterDocument("a.xml", Auction(0.03, 5)).ok());
  db.SetBreaker({.fault_threshold = 100, .cooldown_admissions = 100});

  api::QueryOptions naive;
  naive.auto_optimize = false;
  naive.strategy = exec::PatternStrategy::kNaive;
  auto expected = db.QueryPath("//item[payment = 'Cash']/location", {}, naive);
  ASSERT_TRUE(expected.ok());

  FaultInjector::Instance().Arm("exec.nok.match");
  api::QueryOptions nok;
  nok.auto_optimize = false;
  nok.strategy = exec::PatternStrategy::kNok;
  auto got = db.QueryPath("//item[payment = 'Cash']/location", {}, nok);
  FaultInjector::Instance().Reset();

  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->degraded);
  EXPECT_EQ(api::Database::ToXml(*got), api::Database::ToXml(*expected));
}

// ---------------------------------------------------------------------------
// Copy-on-write catalog

TEST(CatalogTest, ResultPinsItsSnapshotAcrossAReplacement) {
  api::Database db;
  ASSERT_TRUE(db.RegisterDocument("a.xml", Auction(0.02, 7)).ok());
  auto before = db.QueryPath("//person/name");
  ASSERT_TRUE(before.ok());
  const std::string serialized_before = api::Database::ToXml(*before);
  ASSERT_FALSE(before->value.empty());

  // Replace the document with a differently-seeded one. The old result's
  // node items must stay valid (they pin the old snapshot).
  ASSERT_TRUE(db.RegisterDocument("a.xml", Auction(0.02, 99)).ok());
  EXPECT_EQ(api::Database::ToXml(*before), serialized_before);

  auto after = db.QueryPath("//person/name");
  ASSERT_TRUE(after.ok());
  EXPECT_NE(api::Database::ToXml(*after), serialized_before)
      << "replacement should be visible to new queries";
}

// ---------------------------------------------------------------------------
// Mixed stress (the TSan target)

TEST(MixedStressTest, ConcurrentQueriesSwapsAndCancels) {
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 30;
  constexpr uint64_t kSeed = 2026;

  // Two document versions; precompute the expected answer for each so a
  // worker can verify its (pinned) result no matter which version it saw.
  auto v1 = Auction(0.02, 7);
  auto v2 = Auction(0.02, 99);
  const char* kPaths[] = {
      "//person/name",
      "//person[address]/name",
      "//item/location",
      "//open_auction[bidder]/current",
  };
  std::vector<std::string> expected_v1, expected_v2;
  {
    api::Database ref;
    ASSERT_TRUE(ref.RegisterDocument("a.xml", Auction(0.02, 7)).ok());
    for (const char* path : kPaths) {
      auto r = ref.QueryPath(path);
      ASSERT_TRUE(r.ok());
      expected_v1.push_back(api::Database::ToXml(*r));
    }
  }
  {
    api::Database ref;
    ASSERT_TRUE(ref.RegisterDocument("a.xml", Auction(0.02, 99)).ok());
    for (const char* path : kPaths) {
      auto r = ref.QueryPath(path);
      ASSERT_TRUE(r.ok());
      expected_v2.push_back(api::Database::ToXml(*r));
    }
  }

  api::Database db;
  ASSERT_TRUE(db.RegisterDocument("a.xml", std::move(v1)).ok());
  db.SetAdmission({.max_concurrent = 4, .max_queue = 8,
                   .queue_deadline_micros = 5000});

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> latest_query_id{0};
  std::atomic<int> correct{0}, cancelled{0}, exhausted{0};
  std::atomic<int> failures{0};
  std::vector<std::string> failure_notes(kThreads);

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng = Rng::Stream(kSeed, static_cast<uint64_t>(t));
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const size_t which = rng.Below(std::size(kPaths));
        api::QueryOptions options;
        std::atomic<uint64_t> id{0};
        options.query_id_out = &id;
        auto result = db.QueryPath(kPaths[which], {}, options);
        latest_query_id.store(id.load(), std::memory_order_relaxed);
        if (result.ok()) {
          const std::string got = api::Database::ToXml(*result);
          if (got == expected_v1[which] || got == expected_v2[which]) {
            correct.fetch_add(1);
          } else {
            failures.fetch_add(1);
            failure_notes[t] = std::string("wrong result for ") +
                               kPaths[which];
          }
        } else if (result.status().code() == StatusCode::kCancelled) {
          cancelled.fetch_add(1);
        } else if (result.status().code() ==
                   StatusCode::kResourceExhausted) {
          exhausted.fetch_add(1);
        } else {
          failures.fetch_add(1);
          failure_notes[t] = result.status().ToString();
        }
      }
    });
  }

  // Writer: keep swapping between the two versions while workers query.
  std::thread swapper([&] {
    uint64_t flip = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t seed = (flip++ % 2 == 0) ? 99 : 7;
      ASSERT_TRUE(db.RegisterDocument("a.xml", Auction(0.02, seed)).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Canceller: fire Cancel at whatever query id was last published.
  std::thread canceller([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t id = latest_query_id.load(std::memory_order_relaxed);
      if (id != 0) db.Cancel(id);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  swapper.join();
  canceller.join();

  EXPECT_EQ(failures.load(), 0)
      << "first failure note: " << [&] {
           for (const std::string& note : failure_notes) {
             if (!note.empty()) return note;
           }
           return std::string("none");
         }();
  EXPECT_EQ(correct.load() + cancelled.load() + exhausted.load(),
            kThreads * kQueriesPerThread);
  EXPECT_GT(correct.load(), 0);

  const exec::AdmissionStats stats = db.admission_stats();
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.submitted,
            static_cast<uint64_t>(kThreads * kQueriesPerThread));
  EXPECT_LE(stats.peak_running, 4u);
}

// ---------------------------------------------------------------------------
// Durable store under concurrency: Persist (generation churn) + foreground
// and background Scrub + query readers, all at once. TSan coverage for
// store_mu_, the COW catalog swaps and the scrubber's quarantine path.

TEST(MixedStressTest, ConcurrentPersistScrubAndReaders) {
  const std::string dir = "concurrency_store";
  std::filesystem::remove_all(dir);
  api::Database db;
  ASSERT_TRUE(db.RegisterDocument("a.xml", Auction(0.02, 7)).ok());
  auto attached = db.Attach(dir, storage::SnapshotOpenMode::kCopy);
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  ASSERT_TRUE(db.Persist("a.xml").ok());
  ASSERT_TRUE(db.StartScrubber(/*interval_ms=*/1).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> persist_errors{0};
  std::atomic<int> query_errors{0};
  std::thread persister([&] {
    for (int i = 0; i < 20; ++i) {
      // Alternate two document versions so old generations churn while the
      // scrubber and the readers run.
      if (!db.RegisterDocument("a.xml", Auction(0.02, i % 2 ? 7 : 99)).ok() ||
          !db.Persist("a.xml").ok()) {
        ++persist_errors;
      }
      if (!db.Scrub({}).ok()) ++persist_errors;
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto result = db.QueryPath("//person/name", "a.xml");
        if (!result.ok()) ++query_errors;
      }
    });
  }
  persister.join();
  for (std::thread& reader : readers) reader.join();
  db.StopScrubber();
  EXPECT_EQ(persist_errors.load(), 0);
  EXPECT_EQ(query_errors.load(), 0);
  // The store was never corrupt, so nothing may have been quarantined —
  // stale reads of a replaced generation must not count.
  EXPECT_EQ(db.last_scrub_report().corrupt, 0u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Fault-injector thread safety

TEST(FaultInjectorConcurrencyTest, ExactTotalsAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 100;
  FaultInjector::Instance().Reset();
  FaultInjector::Instance().Arm("test.concurrent.site", /*skip=*/5,
                                /*count=*/3);
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        if (XMLQ_FAULT("test.concurrent.site")) fired.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Across any interleaving: exactly `count` fires after exactly `skip`
  // passes, and every call recorded a hit.
  EXPECT_EQ(fired.load(), 3);
  EXPECT_EQ(FaultInjector::Instance().Hits("test.concurrent.site"),
            static_cast<uint64_t>(kThreads * kCallsPerThread));
  FaultInjector::Instance().Reset();
}

// ---------------------------------------------------------------------------
// Per-thread Rng streams

TEST(RngStreamTest, StreamsAreDeterministicAndDecorrelated) {
  Rng a0 = Rng::Stream(42, 0);
  Rng a0_again = Rng::Stream(42, 0);
  Rng a1 = Rng::Stream(42, 1);
  Rng b0 = Rng::Stream(43, 0);
  const uint64_t x = a0.Next();
  EXPECT_EQ(x, a0_again.Next());  // pure function of (seed, stream)
  EXPECT_NE(x, a1.Next());        // adjacent streams differ
  EXPECT_NE(x, b0.Next());        // adjacent seeds differ
}

}  // namespace
}  // namespace xmlq
