#include <gtest/gtest.h>

#include "xmlq/datagen/auction_gen.h"
#include "xmlq/datagen/bib_gen.h"
#include "xmlq/datagen/random_tree.h"
#include "xmlq/xml/parser.h"
#include "xmlq/xml/serializer.h"

namespace xmlq::datagen {
namespace {

size_t CountElements(const xml::Document& doc, std::string_view tag) {
  size_t n = 0;
  for (xml::NodeId id = 0; id < doc.NodeCount(); ++id) {
    if (doc.Kind(id) == xml::NodeKind::kElement && doc.NameStr(id) == tag) {
      ++n;
    }
  }
  return n;
}

TEST(BibGenTest, ShapeAndDeterminism) {
  BibOptions options;
  options.num_books = 50;
  auto doc = GenerateBibliography(options);
  ASSERT_TRUE(doc->IsPreorder());
  EXPECT_EQ(doc->NameStr(doc->RootElement()), "bib");
  EXPECT_EQ(CountElements(*doc, "book"), 50u);
  EXPECT_EQ(CountElements(*doc, "title"), 50u);
  EXPECT_EQ(CountElements(*doc, "price"), 50u);
  EXPECT_GE(CountElements(*doc, "author"), 50u);  // at least one each
  // Same seed → identical document.
  auto doc2 = GenerateBibliography(options);
  EXPECT_EQ(xml::Serialize(*doc), xml::Serialize(*doc2));
  // Different seed → different document.
  options.seed = 99;
  auto doc3 = GenerateBibliography(options);
  EXPECT_NE(xml::Serialize(*doc), xml::Serialize(*doc3));
}

TEST(BibGenTest, YearAttributeWithinRange) {
  BibOptions options;
  options.num_books = 30;
  auto doc = GenerateBibliography(options);
  size_t checked = 0;
  for (xml::NodeId id = 0; id < doc->NodeCount(); ++id) {
    if (doc->Kind(id) == xml::NodeKind::kElement &&
        doc->NameStr(id) == "book") {
      const int year = std::stoi(std::string(doc->AttributeValue(id, "year")));
      EXPECT_GE(year, options.first_year);
      EXPECT_LE(year, options.last_year);
      ++checked;
    }
  }
  EXPECT_EQ(checked, 30u);
}

TEST(AuctionGenTest, ShapeScalesLinearly) {
  AuctionOptions small;
  small.scale = 0.01;
  auto doc_small = GenerateAuctionSite(small);
  ASSERT_TRUE(doc_small->IsPreorder());
  AuctionOptions big;
  big.scale = 0.04;
  auto doc_big = GenerateAuctionSite(big);
  ASSERT_TRUE(doc_big->IsPreorder());
  EXPECT_EQ(CountElements(*doc_small, "item"), 40u);
  EXPECT_EQ(CountElements(*doc_big, "item"), 160u);
  EXPECT_EQ(CountElements(*doc_small, "person"), 20u);
  EXPECT_EQ(CountElements(*doc_big, "open_auction"), 96u);
  // The XMark skeleton is present.
  for (const char* tag : {"site", "regions", "categories", "people",
                          "open_auctions", "closed_auctions"}) {
    EXPECT_EQ(CountElements(*doc_small, tag), 1u) << tag;
  }
  EXPECT_EQ(CountElements(*doc_small, "africa"), 1u);
}

TEST(AuctionGenTest, DeterministicAndRoundTrips) {
  AuctionOptions options;
  options.scale = 0.01;
  auto a = GenerateAuctionSite(options);
  auto b = GenerateAuctionSite(options);
  const std::string xml_a = xml::Serialize(*a);
  EXPECT_EQ(xml_a, xml::Serialize(*b));
  // The generated document survives a parse round-trip.
  auto reparsed = xml::ParseDocument(xml_a);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->NodeCount(), a->NodeCount());
}

TEST(AuctionGenTest, ReferencesPointToExistingEntities) {
  AuctionOptions options;
  options.scale = 0.02;
  auto doc = GenerateAuctionSite(options);
  const size_t num_people = CountElements(*doc, "person");
  const size_t num_items = CountElements(*doc, "item");
  for (xml::NodeId id = 0; id < doc->NodeCount(); ++id) {
    if (doc->Kind(id) != xml::NodeKind::kAttribute) continue;
    const std::string_view name = doc->NameStr(id);
    const std::string value(doc->Text(id));
    if (name == "person") {
      const size_t ref = std::stoul(value.substr(6));
      EXPECT_LT(ref, num_people) << value;
    } else if (name == "item" && value.rfind("item", 0) == 0) {
      const size_t ref = std::stoul(value.substr(4));
      EXPECT_LT(ref, num_items) << value;
    }
  }
}

TEST(RandomTreeTest, HonoursElementCountAndPreorder) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    RandomTreeOptions options;
    options.seed = seed;
    options.num_elements = 123;
    auto doc = GenerateRandomTree(options);
    ASSERT_TRUE(doc->IsPreorder()) << "seed " << seed;
    EXPECT_EQ(doc->ElementCount(), 123u) << "seed " << seed;
  }
}

TEST(RandomTreeTest, RespectsMaxDepth) {
  RandomTreeOptions options;
  options.seed = 5;
  options.num_elements = 400;
  options.max_depth = 5;
  auto doc = GenerateRandomTree(options);
  for (xml::NodeId id = 0; id < doc->NodeCount(); ++id) {
    if (doc->Kind(id) == xml::NodeKind::kElement) {
      EXPECT_LE(doc->Depth(id), 5u + 1u);  // +1: document node offset
    }
  }
}

TEST(RandomTreeTest, UsesRequestedVocabulary) {
  RandomTreeOptions options;
  options.seed = 9;
  options.num_elements = 200;
  options.tag_vocabulary = 2;
  auto doc = GenerateRandomTree(options);
  EXPECT_GT(CountElements(*doc, "t0"), 0u);
  EXPECT_GT(CountElements(*doc, "t1"), 0u);
  EXPECT_EQ(CountElements(*doc, "t2"), 0u);
}

}  // namespace
}  // namespace xmlq::datagen
