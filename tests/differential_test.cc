// Cross-engine differential oracle: every τ engine (naive navigation, NoK,
// TwigStack, PathStack, binary structural joins) plus the cost-based "auto"
// pick must produce byte-identical, document-ordered results for the same
// query — on XMark-style auction documents and on seed-driven random trees.
// A seventh configuration runs with stats collection on, so the oracle also
// proves EXPLAIN ANALYZE instrumentation never perturbs results.
//
// Every query additionally runs morsel-parallel at parallelism {2, 4, 8}
// and under an adversarial one-element-per-morsel split, each compared
// against the same engine's serial run: results must stay byte-identical
// AND the deterministic profile rendering (operator tree, OpStats totals,
// cardinalities — everything but wall time) must match exactly. That is
// the contract DESIGN.md §12 promises: parallel execution is unobservable
// except in wall time.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "oracle_queries.h"
#include "xmlq/api/database.h"
#include "xmlq/base/fault_injector.h"
#include "xmlq/datagen/auction_gen.h"
#include "xmlq/datagen/random_tree.h"

namespace xmlq {
namespace {

struct EngineConfig {
  const char* name;
  bool auto_optimize;
  exec::PatternStrategy strategy;
  bool collect_stats;
  uint32_t parallelism = 1;
};

constexpr EngineConfig kEngines[] = {
    {"naive", false, exec::PatternStrategy::kNaive, false},
    {"nok", false, exec::PatternStrategy::kNok, false},
    {"twigstack", false, exec::PatternStrategy::kTwigStack, false},
    {"pathstack", false, exec::PatternStrategy::kPathStack, false},
    {"binaryjoin", false, exec::PatternStrategy::kBinaryJoin, false},
    {"auto", true, exec::PatternStrategy::kNok, false},
    {"auto+stats", true, exec::PatternStrategy::kNok, true},
    {"auto-p4+stats", true, exec::PatternStrategy::kNok, true, 4},
};

api::QueryOptions OptionsFor(const EngineConfig& engine) {
  api::QueryOptions options;
  options.auto_optimize = engine.auto_optimize;
  options.strategy = engine.strategy;
  options.collect_stats = engine.collect_stats;
  options.parallelism = engine.parallelism;
  return options;
}

/// The engines with a morsel-parallel driver (everything but naive).
constexpr exec::PatternStrategy kParallelStrategies[] = {
    exec::PatternStrategy::kNok,
    exec::PatternStrategy::kTwigStack,
    exec::PatternStrategy::kPathStack,
    exec::PatternStrategy::kBinaryJoin,
};

struct ParallelConfig {
  const char* name;
  uint32_t parallelism;
  size_t morsel_elements;  // 0 = auto split target
};

constexpr ParallelConfig kParallelConfigs[] = {
    {"p2", 2, 0},
    {"p4", 4, 0},
    {"p8", 8, 0},
    // Adversarial split: one region-stream element per morsel, maximizing
    // cross-morsel boundaries (every ancestor chain is a preseed).
    {"p4/morsel=1", 4, 1},
};

/// Runs `query` on every stream engine serially with stats, then at each
/// parallel configuration, asserting results match `reference` byte-for-byte
/// and the deterministic profile rendering (OpStats totals, cardinalities)
/// matches the engine's own serial run exactly.
void ExpectParallelAgrees(api::Database& db, const std::string& query,
                          bool as_path, const std::string& reference) {
  for (const exec::PatternStrategy strategy : kParallelStrategies) {
    api::QueryOptions serial;
    serial.auto_optimize = false;
    serial.strategy = strategy;
    serial.collect_stats = true;
    auto serial_result = as_path ? db.QueryPath(query, {}, serial)
                                 : db.Query(query, serial);
    ASSERT_TRUE(serial_result.ok())
        << query << " [serial " << static_cast<int>(strategy)
        << "]: " << serial_result.status().ToString();
    ASSERT_NE(serial_result->profile, nullptr) << query;
    const std::string serial_profile =
        serial_result->profile->ToString(/*include_time=*/false);
    for (const ParallelConfig& config : kParallelConfigs) {
      api::QueryOptions options = serial;
      options.parallelism = config.parallelism;
      options.morsel_elements = config.morsel_elements;
      auto result = as_path ? db.QueryPath(query, {}, options)
                            : db.Query(query, options);
      ASSERT_TRUE(result.ok())
          << query << " [" << config.name << " strategy "
          << static_cast<int>(strategy)
          << "]: " << result.status().ToString();
      EXPECT_EQ(api::Database::ToXml(*result), reference)
          << query << " [" << config.name << " strategy "
          << static_cast<int>(strategy) << "]";
      ASSERT_NE(result->profile, nullptr) << query;
      EXPECT_EQ(result->profile->ToString(/*include_time=*/false),
                serial_profile)
          << query << " [" << config.name << " strategy "
          << static_cast<int>(strategy) << "]";
    }
  }
}

/// Runs `query` under every engine configuration and asserts the serialized
/// (ordered) results are identical. `as_path` selects the XPath entry point.
/// Then sweeps the morsel-parallel configurations against serial runs.
void ExpectEnginesAgree(api::Database& db, const std::string& query,
                        bool as_path) {
  std::string reference;
  const char* reference_engine = nullptr;
  for (const EngineConfig& engine : kEngines) {
    const api::QueryOptions options = OptionsFor(engine);
    auto result = as_path ? db.QueryPath(query, {}, options)
                          : db.Query(query, options);
    ASSERT_TRUE(result.ok())
        << query << " [" << engine.name << "]: " << result.status().ToString();
    if (engine.collect_stats) {
      // The stats run must actually have produced a profile.
      ASSERT_NE(result->profile, nullptr) << query;
    }
    const std::string got = api::Database::ToXml(*result);
    if (reference_engine == nullptr) {
      reference = got;
      reference_engine = engine.name;
    } else {
      ASSERT_EQ(got, reference)
          << query << ": " << engine.name << " vs " << reference_engine;
    }
  }
  ExpectParallelAgrees(db, query, as_path, reference);
}

class AuctionDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new api::Database;
    datagen::AuctionOptions options;
    options.scale = 0.06;
    options.seed = 11;
    ASSERT_TRUE(
        db_->RegisterDocument("auction.xml",
                              datagen::GenerateAuctionSite(options))
            .ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static api::Database* db_;
};

api::Database* AuctionDifferentialTest::db_ = nullptr;

TEST_F(AuctionDifferentialTest, XPathSuite) {
  // Paths exercising every pattern shape: linear chains, twigs, wildcards,
  // attribute steps, value predicates, existence predicates, deep // —
  // shared with the replication oracle (tests/oracle_queries.h).
  for (const char* path : tests::kAuctionXPaths) {
    ExpectEnginesAgree(*db_, path, /*as_path=*/true);
  }
}

TEST_F(AuctionDifferentialTest, XQuerySuite) {
  for (const char* query : tests::kAuctionXQueries) {
    ExpectEnginesAgree(*db_, query, /*as_path=*/false);
  }
}

class RandomTreeDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(RandomTreeDifferentialTest, FixedSuiteAgreesOnSeededTrees) {
  datagen::RandomTreeOptions options;
  options.seed = GetParam();
  options.num_elements = 260;
  options.tag_vocabulary = 5;
  options.text_probability = 0.6;
  options.attribute_probability = 0.4;
  api::Database db;
  ASSERT_TRUE(
      db.RegisterDocument("r.xml", datagen::GenerateRandomTree(options)).ok());
  // A fixed query list over the generator's t0..t4 / a0..a2 vocabulary; the
  // seed varies the document, not the workload (tests/oracle_queries.h).
  for (const char* path : tests::kRandomTreeXPaths) {
    ExpectEnginesAgree(db, path, /*as_path=*/true);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeDifferentialTest,
                         ::testing::Values(101ull, 202ull, 303ull, 404ull));

// Graceful degradation oracle: with a fault armed inside a τ engine, the
// fallback retry on naive navigation must still produce results
// byte-identical to a clean naive run, and the downgrade must be visible.
// Uses a private Database so the armed faults (and the breaker state they
// accumulate) cannot leak into the shared fixture above.
TEST(FaultFallbackDifferentialTest, FaultedEnginesMatchNaiveViaFallback) {
  api::Database db;
  datagen::AuctionOptions doc_options;
  doc_options.scale = 0.04;
  doc_options.seed = 11;
  ASSERT_TRUE(
      db.RegisterDocument("auction.xml",
                          datagen::GenerateAuctionSite(doc_options))
          .ok());
  const char* twig_paths[] = {
      "//person[address]/name",
      "//item[payment = 'Cash']/location",
      "//open_auction[bidder]/current",
      "/site/regions/*/item/name",
  };
  // PathStack only runs linear chains itself (twigs dispatch to TwigStack),
  // so its fault site needs predicate-free paths to be reached.
  const char* linear_paths[] = {
      "/site/people/person/name",
      "//person/profile/education",
      "/site/regions/*/item/name",
      "//category/description/text",
  };
  const struct {
    exec::PatternStrategy strategy;
    const char* site;
    const char* const* paths;
    size_t path_count;
  } kFaultedEngines[] = {
      {exec::PatternStrategy::kNok, "exec.nok.match", twig_paths,
       std::size(twig_paths)},
      {exec::PatternStrategy::kTwigStack, "exec.twigstack.match", twig_paths,
       std::size(twig_paths)},
      {exec::PatternStrategy::kPathStack, "exec.pathstack.match",
       linear_paths, std::size(linear_paths)},
      {exec::PatternStrategy::kBinaryJoin, "exec.binaryjoin.match",
       twig_paths, std::size(twig_paths)},
  };
  for (const auto& engine : kFaultedEngines) {
    // Wide breaker threshold: every query takes the fault + retry path
    // instead of tripping into quarantine (quarantine is tested elsewhere).
    db.SetBreaker({.fault_threshold = 1000, .cooldown_admissions = 1000});
    for (size_t p = 0; p < engine.path_count; ++p) {
      const char* path = engine.paths[p];
      api::QueryOptions naive_options;
      naive_options.auto_optimize = false;
      naive_options.strategy = exec::PatternStrategy::kNaive;
      auto expected = db.QueryPath(path, {}, naive_options);
      ASSERT_TRUE(expected.ok()) << path;

      // Both the serial and the morsel-parallel driver check the same fault
      // site exactly once, so fallback behavior is identical at any
      // parallelism.
      for (const uint32_t parallelism : {1u, 4u}) {
        FaultInjector::Instance().Arm(engine.site);
        api::QueryOptions options;
        options.auto_optimize = false;
        options.strategy = engine.strategy;
        options.parallelism = parallelism;
        auto got = db.QueryPath(path, {}, options);
        FaultInjector::Instance().Reset();

        ASSERT_TRUE(got.ok())
            << path << " [" << engine.site << " p" << parallelism
            << "]: " << got.status().ToString();
        EXPECT_TRUE(got->degraded)
            << path << " [" << engine.site << " p" << parallelism << "]";
        EXPECT_NE(got->degradation.find("naive"), std::string::npos)
            << got->degradation;
        EXPECT_EQ(api::Database::ToXml(*got),
                  api::Database::ToXml(*expected))
            << path << " [" << engine.site << " p" << parallelism << "]";
      }
    }
  }
}

}  // namespace
}  // namespace xmlq
