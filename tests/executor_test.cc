#include <gtest/gtest.h>

#include <memory>

#include "xmlq/exec/executor.h"
#include "xmlq/storage/region_index.h"
#include "xmlq/storage/succinct_doc.h"
#include "xmlq/xml/parser.h"
#include "xmlq/xml/serializer.h"
#include "xmlq/xquery/translate.h"

namespace xmlq::exec {
namespace {

using algebra::Item;
using algebra::LogicalExprPtr;
using algebra::Sequence;

/// Minimal self-contained harness: one document + an executor.
class ExecutorTest : public ::testing::Test {
 protected:
  void Load(std::string_view xml_text) {
    auto parsed = xml::ParseDocument(xml_text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    dom_ = std::make_unique<xml::Document>(std::move(*parsed));
    succinct_ = std::make_unique<storage::SuccinctDocument>(
        storage::SuccinctDocument::Build(*dom_));
    regions_ = std::make_unique<storage::RegionIndex>(*dom_);
    context_.documents[""] =
        IndexedDocument{dom_.get(), succinct_.get(), regions_.get(), nullptr};
    context_.documents["doc.xml"] = context_.documents[""];
  }

  /// Compiles and evaluates an XQuery string; fails the test on error.
  QueryResult Run(std::string_view query) {
    xquery::TranslateOptions options;
    options.default_document = "doc.xml";
    auto plan = xquery::CompileQuery(query, options);
    EXPECT_TRUE(plan.ok()) << query << ": " << plan.status().ToString();
    Executor executor(&context_);
    auto result = executor.Evaluate(**plan);
    EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  /// Runs and renders items space-separated by string value.
  std::string RunStr(std::string_view query) {
    const QueryResult result = Run(query);
    std::string out;
    for (const Item& item : result.value) {
      if (!out.empty()) out.push_back(' ');
      out += item.StringValue();
    }
    return out;
  }

  std::unique_ptr<xml::Document> dom_;
  std::unique_ptr<storage::SuccinctDocument> succinct_;
  std::unique_ptr<storage::RegionIndex> regions_;
  EvalContext context_;
};

TEST_F(ExecutorTest, PathQuery) {
  Load("<bib><book><title>A</title></book><book><title>B</title></book>"
       "</bib>");
  EXPECT_EQ(RunStr("/bib/book/title"), "A B");
  EXPECT_EQ(RunStr("//title"), "A B");
  EXPECT_EQ(RunStr("doc(\"doc.xml\")/bib/book/title"), "A B");
}

TEST_F(ExecutorTest, ArithmeticAndComparisons) {
  Load("<r/>");
  EXPECT_EQ(RunStr("1 + 2 * 3"), "7");
  EXPECT_EQ(RunStr("10 div 4"), "2.5");
  EXPECT_EQ(RunStr("7 mod 3"), "1");
  EXPECT_EQ(RunStr("1 < 2"), "true");
  EXPECT_EQ(RunStr("'b' = 'a'"), "false");
  EXPECT_EQ(RunStr("2 >= 2 and 1 != 2"), "true");
  EXPECT_EQ(RunStr("1 > 2 or 3 > 2"), "true");
  EXPECT_EQ(RunStr("-3 + 1"), "-2");
}

TEST_F(ExecutorTest, GeneralComparisonIsExistential) {
  Load("<r><n>1</n><n>5</n><n>9</n></r>");
  EXPECT_EQ(RunStr("//n > 8"), "true");    // some n > 8
  EXPECT_EQ(RunStr("//n > 9"), "false");   // none
  EXPECT_EQ(RunStr("//n = 5"), "true");
}

TEST_F(ExecutorTest, Functions) {
  Load("<r><a>x</a><a>y</a><p>3</p><p>4</p></r>");
  EXPECT_EQ(RunStr("count(//a)"), "2");
  EXPECT_EQ(RunStr("exists(//zzz)"), "false");
  EXPECT_EQ(RunStr("empty(//zzz)"), "true");
  EXPECT_EQ(RunStr("not(1 = 2)"), "true");
  EXPECT_EQ(RunStr("sum(//p)"), "7");
  EXPECT_EQ(RunStr("avg(//p)"), "3.5");
  EXPECT_EQ(RunStr("min(//p)"), "3");
  EXPECT_EQ(RunStr("max(//p)"), "4");
  EXPECT_EQ(RunStr("concat('a', 'b', 'c')"), "abc");
  EXPECT_EQ(RunStr("contains('hello', 'ell')"), "true");
  EXPECT_EQ(RunStr("starts-with('hello', 'he')"), "true");
  EXPECT_EQ(RunStr("string-length('abc')"), "3");
  EXPECT_EQ(RunStr("string(42)"), "42");
  EXPECT_EQ(RunStr("number('3.5') + 1"), "4.5");
  EXPECT_EQ(RunStr("round(2.6)"), "3");
  EXPECT_EQ(RunStr("floor(2.6)"), "2");
  EXPECT_EQ(RunStr("ceiling(2.2)"), "3");
  EXPECT_EQ(RunStr("distinct-values((1, 2, 1, 3))"), "1 2 3");
  EXPECT_EQ(RunStr("name(//a)"), "a");
  EXPECT_EQ(RunStr("if (1 < 2) then 'yes' else 'no'"), "yes");
}

TEST_F(ExecutorTest, UnknownFunctionIsUnsupported) {
  Load("<r/>");
  xquery::TranslateOptions options;
  auto plan = xquery::CompileQuery("frobnicate(1)", options);
  ASSERT_TRUE(plan.ok());
  Executor executor(&context_);
  EXPECT_EQ(executor.Evaluate(**plan).status().code(),
            StatusCode::kUnsupported);
}

TEST_F(ExecutorTest, FlworForWhereReturn) {
  Load("<shop><item><name>pen</name><price>5</price></item>"
       "<item><name>ink</name><price>50</price></item>"
       "<item><name>pad</name><price>9</price></item></shop>");
  EXPECT_EQ(
      RunStr("for $i in //item where $i/price < 10 return $i/name"),
      "pen pad");
  EXPECT_EQ(RunStr("for $i in //item let $p := $i/price "
                   "where $p > 4 and $p < 40 return $i/name"),
            "pen pad");
}

TEST_F(ExecutorTest, PathPredicatesInFlworBindings) {
  Load("<shop><item><name>pen</name><price>5</price></item>"
       "<item><name>ink</name><price>50</price></item>"
       "<item><name>pad</name><price>9</price></item></shop>");
  // Predicate in the binding path ≡ the where-clause formulation.
  EXPECT_EQ(RunStr("for $i in //item[price < 10] return $i/name"),
            RunStr("for $i in //item where $i/price < 10 return $i/name"));
  EXPECT_EQ(RunStr("for $i in //item[price < 10] return $i/name"),
            "pen pad");
  // Predicates on variable-rooted paths (per-node PatternFilter).
  EXPECT_EQ(RunStr("for $i in //item return $i/name[. = 'ink']"), "ink");
  EXPECT_EQ(RunStr("count(//item[name = 'pad'][price > 5])"), "1");
  EXPECT_EQ(RunStr("count(//item[name = 'pad'][price > 50])"), "0");
}

TEST_F(ExecutorTest, FlworOrderBy) {
  Load("<r><x><k>2</k></x><x><k>10</k></x><x><k>1</k></x></r>");
  EXPECT_EQ(RunStr("for $x in //x order by $x/k return $x/k"), "1 2 10");
  EXPECT_EQ(RunStr("for $x in //x order by $x/k descending return $x/k"),
            "10 2 1");
  // String keys sort lexicographically.
  Load("<r><s>b</s><s>a</s><s>c</s></r>");
  EXPECT_EQ(RunStr("for $s in //s order by $s return $s"), "a b c");
}

TEST_F(ExecutorTest, NestedFlworAndMultipleBindings) {
  Load("<r><g><v>1</v><v>2</v></g><g><v>3</v></g></r>");
  EXPECT_EQ(RunStr("for $g in //g for $v in $g/v return $v"), "1 2 3");
  EXPECT_EQ(RunStr("for $g in //g return count($g/v)"), "2 1");
  EXPECT_EQ(RunStr("for $g in //g, $v in $g/v return $v"), "1 2 3");
}

TEST_F(ExecutorTest, EnvAndPipelinedModesAgree) {
  Load("<r><a><b>1</b><b>2</b></a><a><b>3</b></a></r>");
  const char* query =
      "for $a in //a let $n := count($a/b) for $b in $a/b "
      "where $n > 1 return $b";
  context_.flwor_mode = FlworMode::kEnv;
  const std::string env_result = RunStr(query);
  context_.flwor_mode = FlworMode::kPipelined;
  const std::string pipelined_result = RunStr(query);
  EXPECT_EQ(env_result, "1 2");
  EXPECT_EQ(env_result, pipelined_result);
}

TEST_F(ExecutorTest, ConstructionProducesNewDocument) {
  Load("<bib><book><title>A</title></book></bib>");
  const QueryResult result = Run(
      "<out n=\"{count(//book)}\"><t>{//title}</t></out>");
  ASSERT_EQ(result.value.size(), 1u);
  ASSERT_TRUE(result.value[0].IsNode());
  ASSERT_EQ(result.constructed.size(), 1u);
  const auto& node = result.value[0].node();
  const std::string xml_text = xml::Serialize(*node.doc, node.id);
  EXPECT_EQ(xml_text, "<out n=\"1\"><t><title>A</title></t></out>");
}

TEST_F(ExecutorTest, ConstructionSplicesAtomicsWithSpaces) {
  Load("<r/>");
  const QueryResult result = Run("<v>{1, 2, 'x'}</v>");
  const auto& node = result.value[0].node();
  EXPECT_EQ(xml::Serialize(*node.doc, node.id), "<v>1 2 x</v>");
}

TEST_F(ExecutorTest, ConstructionWithFlworPerTuple) {
  Load("<bib><book><title>A</title></book><book><title>B</title></book>"
       "</bib>");
  const QueryResult result = Run(
      "<results>{for $b in //book return <r>{$b/title}</r>}</results>");
  const auto& node = result.value[0].node();
  EXPECT_EQ(xml::Serialize(*node.doc, node.id),
            "<results><r><title>A</title></r><r><title>B</title></r>"
            "</results>");
}

TEST_F(ExecutorTest, AttributeNodeInContentAttaches) {
  Load("<r><i id=\"7\"/></r>");
  const QueryResult result = Run("<copy>{//i/@id}</copy>");
  const auto& node = result.value[0].node();
  EXPECT_EQ(xml::Serialize(*node.doc, node.id), "<copy id=\"7\"/>");
}

TEST_F(ExecutorTest, SequencesConcatenate) {
  Load("<r><a>1</a></r>");
  EXPECT_EQ(RunStr("(1, 'two', //a)"), "1 two 1");
  EXPECT_EQ(RunStr("()"), "");
}

TEST_F(ExecutorTest, StrategiesProduceIdenticalQueryResults) {
  Load("<site><a><b><c>1</c></b></a><b><c>2</c></b><a><c>3</c></a></site>");
  const char* query = "for $b in //a//c return $b";
  std::string reference;
  for (const PatternStrategy strategy :
       {PatternStrategy::kNok, PatternStrategy::kTwigStack,
        PatternStrategy::kPathStack, PatternStrategy::kBinaryJoin,
        PatternStrategy::kNaive}) {
    context_.strategy = strategy;
    const std::string got = RunStr(query);
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(got, reference)
          << "strategy " << PatternStrategyName(strategy);
    }
  }
  EXPECT_EQ(reference, "1 3");
}

TEST_F(ExecutorTest, UnsupportedAxesFallBackToNaive) {
  Load("<r><a/><b>1</b><b>2</b><x><b>3</b></x></r>");
  // following-sibling and self are outside every specialized engine's
  // subset; the executor transparently evaluates them navigationally even
  // when a join-based strategy is forced.
  for (const PatternStrategy strategy :
       {PatternStrategy::kNok, PatternStrategy::kTwigStack,
        PatternStrategy::kBinaryJoin}) {
    context_.strategy = strategy;
    EXPECT_EQ(RunStr("/r/a/following-sibling::b"), "1 2")
        << PatternStrategyName(strategy);
    EXPECT_EQ(RunStr("//b/self::b[. = '3']"), "3")
        << PatternStrategyName(strategy);
  }
}

TEST_F(ExecutorTest, UnboundVariableIsAnError) {
  Load("<r/>");
  xquery::TranslateOptions options;
  auto plan = xquery::CompileQuery("$nope", options);
  ASSERT_TRUE(plan.ok());
  Executor executor(&context_);
  EXPECT_EQ(executor.Evaluate(**plan).status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, MissingDocumentIsAnError) {
  Load("<r/>");
  xquery::TranslateOptions options;
  auto plan = xquery::CompileQuery("doc(\"missing.xml\")//x", options);
  ASSERT_TRUE(plan.ok());
  Executor executor(&context_);
  EXPECT_EQ(executor.Evaluate(**plan).status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, EvaluateWithVarsBindsExternalValues) {
  Load("<r><a>5</a></r>");
  xquery::TranslateOptions options;
  auto plan = xquery::CompileQuery("$x + 1", options);
  ASSERT_TRUE(plan.ok());
  Executor executor(&context_);
  QueryResult out;
  std::map<std::string, Sequence> vars;
  vars["x"] = Sequence{Item(41.0)};
  auto result = executor.EvaluateWithVars(**plan, vars, &out);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].number(), 42.0);
}

}  // namespace
}  // namespace xmlq::exec
