#include <gtest/gtest.h>

#include "xmlq/api/database.h"
#include "xmlq/datagen/auction_gen.h"
#include "xmlq/datagen/bib_gen.h"
#include "xmlq/xml/serializer.h"

namespace xmlq {
namespace {

using api::Database;
using api::QueryOptions;

/// The paper's Fig. 1(a) query, end to end: parse, extract schema, build the
/// Env, construct the result document.
TEST(IntegrationTest, PaperFigure1Query) {
  Database db;
  ASSERT_TRUE(db.LoadDocument(
                    "bib.xml",
                    "<bib>"
                    "<book><title>T1</title><author>A1</author></book>"
                    "<book><title>T2</title><author>A2</author>"
                    "<author>A3</author></book>"
                    "</bib>")
                  .ok());
  auto result = db.Query(
      "<results>{"
      " for $b in doc(\"bib.xml\")/bib/book"
      " let $t := $b/title"
      " let $a := $b/author"
      " return <result>{$t}{$a}</result>"
      "}</results>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Database::ToXml(*result),
            "<results>"
            "<result><title>T1</title><author>A1</author></result>"
            "<result><title>T2</title><author>A2</author>"
            "<author>A3</author></result>"
            "</results>");
}

TEST(IntegrationTest, AuctionAnalyticsAcrossStrategies) {
  Database db;
  datagen::AuctionOptions options;
  options.scale = 0.02;
  ASSERT_TRUE(
      db.RegisterDocument("auction.xml", datagen::GenerateAuctionSite(options))
          .ok());
  const char* queries[] = {
      // Expensive open auctions with at least one bid.
      "for $a in doc(\"auction.xml\")//open_auction "
      "where $a/current > 150 and exists($a/bidder) "
      "return $a/current",
      // Average closed price.
      "avg(doc(\"auction.xml\")//closed_auction/price)",
      // People with graduate education, sorted by name.
      "for $p in doc(\"auction.xml\")//person "
      "where $p/profile/education = 'Graduate School' "
      "order by $p/name return $p/name",
      // Count of cash items (predicate spelled as a where clause: path
      // predicates are XPath-API-only in this subset).
      "count(for $i in doc(\"auction.xml\")//item "
      "where $i/payment = 'Cash' return $i)",
  };
  for (const char* query : queries) {
    std::string reference;
    for (const exec::PatternStrategy strategy :
         {exec::PatternStrategy::kNok, exec::PatternStrategy::kTwigStack,
          exec::PatternStrategy::kBinaryJoin,
          exec::PatternStrategy::kNaive}) {
      QueryOptions qopt;
      qopt.auto_optimize = false;
      qopt.strategy = strategy;
      auto result = db.Query(query, qopt);
      ASSERT_TRUE(result.ok()) << query << ": " << result.status().ToString();
      const std::string got = Database::ToXml(*result);
      if (reference.empty()) {
        reference = got;
        EXPECT_FALSE(reference.empty()) << query;
      } else {
        EXPECT_EQ(got, reference)
            << query << " with " << exec::PatternStrategyName(strategy);
      }
    }
  }
}

TEST(IntegrationTest, EnvAndPipelinedFlworAgreeOnWorkload) {
  Database db;
  datagen::BibOptions options;
  options.num_books = 120;
  ASSERT_TRUE(
      db.RegisterDocument("bib.xml", datagen::GenerateBibliography(options))
          .ok());
  const char* query =
      "for $b in doc(\"bib.xml\")//book "
      "let $p := $b/price "
      "where $p > 60 "
      "order by $p descending "
      "return <pick year=\"{$b/@year}\">{$b/title}</pick>";
  QueryOptions env_mode;
  env_mode.flwor_mode = exec::FlworMode::kEnv;
  QueryOptions pipe_mode;
  pipe_mode.flwor_mode = exec::FlworMode::kPipelined;
  auto a = db.Query(query, env_mode);
  auto b = db.Query(query, pipe_mode);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  const std::string xml_a = Database::ToXml(*a);
  EXPECT_EQ(xml_a, Database::ToXml(*b));
  EXPECT_NE(xml_a.find("<pick year="), std::string::npos);
}

TEST(IntegrationTest, ConstructedDocumentIsQueryableAfterReload) {
  Database db;
  ASSERT_TRUE(db.LoadDocument("in.xml",
                              "<l><i>3</i><i>1</i><i>2</i></l>")
                  .ok());
  auto result = db.Query(
      "<sorted>{for $i in doc(\"in.xml\")//i order by $i return $i}"
      "</sorted>");
  ASSERT_TRUE(result.ok());
  const std::string xml_text = Database::ToXml(*result);
  EXPECT_EQ(xml_text, "<sorted><i>1</i><i>2</i><i>3</i></sorted>");
  // Round-trip: load γ's output as a new document and query it.
  ASSERT_TRUE(db.LoadDocument("out.xml", xml_text).ok());
  auto count = db.Query("count(doc(\"out.xml\")//i)");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->value[0].NumberValue(), 3.0);
}

TEST(IntegrationTest, NestedConstructionWithConditionals) {
  Database db;
  ASSERT_TRUE(db.LoadDocument(
                    "shop.xml",
                    "<shop><item><name>pen</name><price>5</price></item>"
                    "<item><name>ink</name><price>50</price></item></shop>")
                  .ok());
  auto result = db.Query(
      "<report total=\"{count(doc('shop.xml')//item)}\">{"
      " for $i in doc('shop.xml')//item"
      " return <line>"
      "   <n>{data($i/name)}</n>"
      "   {if ($i/price > 10) then <flag>expensive</flag> else <flag>cheap</flag>}"
      " </line>"
      "}</report>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string xml_text = Database::ToXml(*result);
  EXPECT_NE(xml_text.find("total=\"2\""), std::string::npos);
  EXPECT_NE(xml_text.find("<n>pen</n>"), std::string::npos);
  EXPECT_NE(xml_text.find("<flag>cheap</flag>"), std::string::npos);
  EXPECT_NE(xml_text.find("<flag>expensive</flag>"), std::string::npos);
}

TEST(IntegrationTest, LargeDocumentSanity) {
  Database db;
  datagen::AuctionOptions options;
  options.scale = 0.25;  // ~1000 items, ~60k nodes
  ASSERT_TRUE(
      db.RegisterDocument("big.xml", datagen::GenerateAuctionSite(options))
          .ok());
  auto report = db.Report("big.xml");
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->node_count, 40000u);
  auto items = db.Query("count(doc(\"big.xml\")//item)");
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(items->value[0].NumberValue(), 1000.0);
  auto deep = db.QueryPath("//item/mailbox/mail/text", "big.xml");
  ASSERT_TRUE(deep.ok());
  EXPECT_GT(deep->value.size(), 100u);
}

}  // namespace
}  // namespace xmlq
