#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "xmlq/api/database.h"
#include "xmlq/base/fault_injector.h"
#include "xmlq/base/limits.h"
#include "xmlq/datagen/auction_gen.h"
#include "xmlq/storage/content_store.h"
#include "xmlq/xml/parser.h"

namespace xmlq {
namespace {

// ---------------------------------------------------------------------------
// ResourceGuard unit tests.
// ---------------------------------------------------------------------------

TEST(ResourceGuardTest, UnarmedGuardNeverTrips) {
  ResourceGuard guard;
  for (int i = 0; i < 100000; ++i) {
    EXPECT_FALSE(guard.Tick());
  }
  EXPECT_TRUE(guard.status().ok());
}

TEST(ResourceGuardTest, UnlimitedLimitsNeverTrip) {
  QueryLimits limits;
  EXPECT_TRUE(limits.Unlimited());
  ResourceGuard guard(limits);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_FALSE(guard.Tick());
  }
  EXPECT_TRUE(guard.status().ok());
}

TEST(ResourceGuardTest, StepBudgetTripsExactlyAfterBudget) {
  QueryLimits limits;
  limits.max_steps = 100;
  ResourceGuard guard(limits);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(guard.Tick()) << "tripped early at step " << i + 1;
  }
  EXPECT_TRUE(guard.Tick()) << "step 101 must exceed a 100-step budget";
  EXPECT_EQ(guard.status().code(), StatusCode::kResourceExhausted);
  // The trip is sticky: every later poll reports the same failure.
  EXPECT_TRUE(guard.Tick());
  EXPECT_EQ(guard.status().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceGuardTest, BulkTickCrossesBudget) {
  QueryLimits limits;
  limits.max_steps = 1000;
  ResourceGuard guard(limits);
  EXPECT_FALSE(guard.Tick(999));
  EXPECT_TRUE(guard.Tick(5000));
  EXPECT_EQ(guard.status().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceGuardTest, CancelFlagTripsAsCancelled) {
  std::atomic<bool> cancel{false};
  QueryLimits limits;
  limits.cancel = &cancel;
  ResourceGuard guard(limits);
  EXPECT_FALSE(guard.Tick());
  cancel.store(true);
  // A trip happens on the next poll; polls occur at least every kPollStride
  // steps, so a stride's worth of ticks is guaranteed to observe the flag.
  bool tripped = false;
  for (uint64_t i = 0; i <= ResourceGuard::kPollStride && !tripped; ++i) {
    tripped = guard.Tick();
  }
  EXPECT_TRUE(tripped);
  EXPECT_EQ(guard.status().code(), StatusCode::kCancelled);
}

TEST(ResourceGuardTest, DeadlineTrips) {
  QueryLimits limits;
  limits.deadline_micros = 1000;  // 1ms
  ResourceGuard guard(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  bool tripped = false;
  for (uint64_t i = 0; i <= ResourceGuard::kPollStride && !tripped; ++i) {
    tripped = guard.Tick();
  }
  EXPECT_TRUE(tripped);
  EXPECT_EQ(guard.status().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceGuardTest, MemoryBudgetTracksChargesAndReleases) {
  QueryLimits limits;
  limits.max_memory_bytes = 1000;
  ResourceGuard guard(limits);
  EXPECT_TRUE(guard.ChargeMemory(400).ok());
  guard.ReleaseMemory(200);
  EXPECT_EQ(guard.memory_bytes(), 200u);
  EXPECT_TRUE(guard.ChargeMemory(700).ok());  // 900 in use
  const Status over = guard.ChargeMemory(200);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  // Sticky: ticks report the failure too.
  EXPECT_TRUE(guard.Tick());
  EXPECT_EQ(guard.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Query-level governance on a large document.
// ---------------------------------------------------------------------------

// Shared ~1M-node auction database (built once; index builds are the
// expensive part).
api::Database& BigAuctionDb() {
  static api::Database* db = [] {
    auto* d = new api::Database();
    datagen::AuctionOptions options;
    options.scale = 6.0;
    auto doc = datagen::GenerateAuctionSite(options);
    EXPECT_GE(doc->NodeCount(), 1000000u);
    const Status status = d->RegisterDocument("auction.xml", std::move(doc));
    EXPECT_TRUE(status.ok()) << status.ToString();
    return d;
  }();
  return *db;
}

constexpr const char* kHeavyPath = "//person[address][phone]/name";

TEST(QueryLimitsTest, DeadlineBoundsQueryLatency) {
  api::Database& db = BigAuctionDb();
  api::QueryOptions options;
  options.limits.deadline_micros = 1000;  // 1ms on a ~1M-node document
  const auto start = std::chrono::steady_clock::now();
  auto result = db.QueryPath(kHeavyPath, "auction.xml", options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
  // The point of the deadline: the query returns promptly instead of
  // hanging. Allow generous slack for slow CI machines.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
}

TEST(QueryLimitsTest, StepBudgetStopsHeavyQuery) {
  api::Database& db = BigAuctionDb();
  api::QueryOptions options;
  options.limits.max_steps = 10000;
  auto result = db.QueryPath(kHeavyPath, "auction.xml", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(QueryLimitsTest, CancelFlagAbortsQuery) {
  api::Database& db = BigAuctionDb();
  std::atomic<bool> cancel{true};  // already cancelled at submission
  api::QueryOptions options;
  options.limits.cancel = &cancel;
  auto result = db.QueryPath(kHeavyPath, "auction.xml", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(QueryLimitsTest, GenerousLimitsDoNotChangeResults) {
  api::Database& db = BigAuctionDb();
  auto unlimited = db.QueryPath(kHeavyPath, "auction.xml");
  ASSERT_TRUE(unlimited.ok()) << unlimited.status().ToString();
  api::QueryOptions options;
  options.limits.deadline_micros = 60ull * 1000 * 1000;
  options.limits.max_steps = 1ull << 40;
  options.limits.max_memory_bytes = 1ull << 34;
  auto guarded = db.QueryPath(kHeavyPath, "auction.xml", options);
  ASSERT_TRUE(guarded.ok()) << guarded.status().ToString();
  EXPECT_EQ(guarded->value.size(), unlimited->value.size());
}

TEST(QueryLimitsTest, EveryStrategyHonorsStepBudget) {
  api::Database& db = BigAuctionDb();
  const exec::PatternStrategy strategies[] = {
      exec::PatternStrategy::kNok,        exec::PatternStrategy::kTwigStack,
      exec::PatternStrategy::kPathStack,  exec::PatternStrategy::kBinaryJoin,
      exec::PatternStrategy::kNaive,
  };
  for (const exec::PatternStrategy strategy : strategies) {
    api::QueryOptions options;
    options.auto_optimize = false;
    options.strategy = strategy;
    options.limits.max_steps = 5000;
    auto result = db.QueryPath(kHeavyPath, "auction.xml", options);
    ASSERT_FALSE(result.ok())
        << "strategy " << exec::PatternStrategyName(strategy)
        << " ignored a 5000-step budget on a ~1M-node document";
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << exec::PatternStrategyName(strategy) << ": "
        << result.status().ToString();
  }
}

TEST(QueryLimitsTest, FlworAndConstructionHonorBudgets) {
  api::Database db;
  datagen::AuctionOptions options;
  options.scale = 0.05;
  ASSERT_TRUE(
      db.RegisterDocument("auction.xml", datagen::GenerateAuctionSite(options))
          .ok());
  const char* query =
      "for $p in doc(\"auction.xml\")//person"
      " return <copy>{$p}</copy>";
  // Sanity: runs cleanly without limits.
  auto ok = db.Query(query);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_GT(ok->value.size(), 0u);
  // Memory budget: result construction deep-copies every person subtree,
  // which must charge the guard and fail cleanly.
  api::QueryOptions tight;
  tight.limits.max_memory_bytes = 4096;
  auto mem = db.Query(query, tight);
  ASSERT_FALSE(mem.ok());
  EXPECT_EQ(mem.status().code(), StatusCode::kResourceExhausted);
  // Step budget through the FLWOR tuple loop.
  api::QueryOptions steps;
  steps.limits.max_steps = 50;
  auto stepped = db.Query(query, steps);
  ASSERT_FALSE(stepped.ok());
  EXPECT_EQ(stepped.status().code(), StatusCode::kResourceExhausted);
  // Both FLWOR evaluation modes are governed.
  api::QueryOptions pipelined = steps;
  pipelined.flwor_mode = exec::FlworMode::kPipelined;
  auto piped = db.Query(query, pipelined);
  ASSERT_FALSE(piped.ok());
  EXPECT_EQ(piped.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Hardened parsing.
// ---------------------------------------------------------------------------

std::string NestedDoc(size_t depth) {
  std::string text;
  text.reserve(depth * 7 + 16);
  for (size_t i = 0; i < depth; ++i) text += "<d>";
  text += "x";
  for (size_t i = 0; i < depth; ++i) text += "</d>";
  return text;
}

TEST(ParserLimitsTest, MaxDepthRejectsDeepDocument) {
  xml::ParseOptions options;
  options.max_depth = 1000;
  auto doc = xml::ParseDocument(NestedDoc(2000), options);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("max_depth=1000"), std::string::npos)
      << doc.status().ToString();
  EXPECT_NE(doc.status().message().find("line "), std::string::npos)
      << "parse errors must carry line/column: " << doc.status().ToString();
}

TEST(ParserLimitsTest, MaxDepthAdmitsDocumentAtLimit) {
  xml::ParseOptions options;
  options.max_depth = 1000;
  auto doc = xml::ParseDocument(NestedDoc(1000), options);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
}

TEST(ParserLimitsTest, MaxAttributesRejectsAttributeFlood) {
  std::string text = "<e";
  for (int i = 0; i < 10; ++i) {
    text += " a" + std::to_string(i) + "=\"v\"";
  }
  text += "/>";
  xml::ParseOptions options;
  options.max_attributes = 5;
  auto doc = xml::ParseDocument(text, options);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("max_attributes=5"),
            std::string::npos)
      << doc.status().ToString();
  // The same document parses when within the limit.
  options.max_attributes = 10;
  EXPECT_TRUE(xml::ParseDocument(text, options).ok());
}

TEST(ParserLimitsTest, MaxEntityExpansionsRejectsAmplification) {
  std::string text = "<e>";
  for (int i = 0; i < 10; ++i) text += "&amp;";
  text += "</e>";
  xml::ParseOptions options;
  options.max_entity_expansions = 5;
  auto doc = xml::ParseDocument(text, options);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("max_entity_expansions=5"),
            std::string::npos)
      << doc.status().ToString();
  options.max_entity_expansions = 10;
  EXPECT_TRUE(xml::ParseDocument(text, options).ok());
}

TEST(ParserLimitsTest, MaxInputBytesRejectsOversizedPayload) {
  const std::string text = "<e>" + std::string(1000, 'x') + "</e>";
  xml::ParseOptions options;
  options.max_input_bytes = 100;
  auto doc = xml::ParseDocument(text, options);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("max_input_bytes=100"),
            std::string::npos)
      << doc.status().ToString();
  options.max_input_bytes = 2000;
  EXPECT_TRUE(xml::ParseDocument(text, options).ok());
}

// ---------------------------------------------------------------------------
// Deep-document regression: every tree walk must be iterative.
// ---------------------------------------------------------------------------

TEST(DeepDocumentTest, HundredThousandLevelsLoadQuerySerialize) {
  constexpr size_t kDepth = 100000;
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("deep.xml", NestedDoc(kDepth)).ok());
  // Pattern matching across all physical strategies' shared paths.
  auto result = db.QueryPath("//d", "deep.xml");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->value.size(), kDepth);
  // Serialization (iterative writer) round-trips the full chain.
  auto one = db.QueryPath("/d", "deep.xml");
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  ASSERT_EQ(one->value.size(), 1u);
  const std::string xml_text = api::Database::ToXml(*one);
  EXPECT_GT(xml_text.size(), kDepth * 7);  // "<d>" + "</d>" per level
}

TEST(DeepDocumentTest, DeepConstructionCopiesIteratively) {
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("deep.xml", NestedDoc(100000)).ok());
  // γ construction deep-copies the whole chain through CopySubtree.
  auto result = db.Query(
      "for $d in doc(\"deep.xml\")/d return <wrap>{$d}</wrap>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->value.size(), 1u);
}

// ---------------------------------------------------------------------------
// Fault injection: forced failures must surface as clean Statuses.
// ---------------------------------------------------------------------------

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().Reset(); }

  static constexpr const char* kSmallDoc =
      "<bib><book year=\"1994\"><title>TCP/IP</title></book></bib>";
};

TEST_F(FaultInjectionTest, SkipAndCountSemantics) {
  FaultInjector::Instance().Arm("test.site", /*skip=*/1, /*count=*/1);
  EXPECT_FALSE(XMLQ_FAULT("test.site"));  // skipped
  EXPECT_TRUE(XMLQ_FAULT("test.site"));   // fires
  EXPECT_FALSE(XMLQ_FAULT("test.site"));  // budget spent
  EXPECT_EQ(FaultInjector::Instance().Hits("test.site"), 3u);
  FaultInjector::Instance().Reset();
  EXPECT_FALSE(XMLQ_FAULT("test.site"));  // nothing armed: no hit recorded
  EXPECT_EQ(FaultInjector::Instance().Hits("test.site"), 0u);
}

TEST_F(FaultInjectionTest, ParserAllocationFailure) {
  FaultInjector::Instance().Arm("xml.parser.alloc", /*skip=*/0, /*count=*/1);
  auto doc = xml::ParseDocument(kSmallDoc);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
  FaultInjector::Instance().Reset();
  EXPECT_TRUE(xml::ParseDocument(kSmallDoc).ok());
}

TEST_F(FaultInjectionTest, ParserEarlyEofAtEveryPosition) {
  // Force a truncation before each parser step in turn: every cut must
  // produce a clean parse error (or clean success for trailing cuts), never
  // a crash.
  for (uint64_t skip = 0; skip < 20; ++skip) {
    FaultInjector::Instance().Arm("xml.parser.eof", skip, /*count=*/1);
    auto doc = xml::ParseDocument(kSmallDoc);
    if (!doc.ok()) {
      EXPECT_EQ(doc.status().code(), StatusCode::kParseError)
          << doc.status().ToString();
    }
    FaultInjector::Instance().Reset();
  }
}

TEST_F(FaultInjectionTest, StorageBuildFailuresAbortRegistration) {
  for (const char* site : {"storage.succinct.build", "storage.region.build",
                           "storage.value.build"}) {
    FaultInjector::Instance().Arm(site);
    api::Database db;
    const Status status = db.LoadDocument("bib.xml", kSmallDoc);
    ASSERT_FALSE(status.ok()) << site;
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted) << site;
    EXPECT_FALSE(db.Contains("bib.xml")) << site;
    FaultInjector::Instance().Reset();
  }
}

TEST_F(FaultInjectionTest, ContentCorruptionIsToleratedNotFatal) {
  FaultInjector::Instance().Arm("storage.content.corrupt", /*skip=*/0,
                                /*count=*/1);
  storage::ContentStore store;
  const storage::ContentId id = store.Add("abc");
  FaultInjector::Instance().Reset();
  // The low bit of the first byte is flipped ('a' ^ 0x01 == '`'): readers
  // see wrong data but never crash.
  EXPECT_EQ(store.Get(id), "`bc");
  // A whole database keeps answering queries on silently-corrupted content.
  FaultInjector::Instance().Arm("storage.content.corrupt");
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kSmallDoc).ok());
  FaultInjector::Instance().Reset();
  auto result = db.QueryPath("//book/title", "bib.xml");
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

}  // namespace
}  // namespace xmlq
