#include <gtest/gtest.h>

#include <memory>

#include "xmlq/base/random.h"
#include "xmlq/datagen/auction_gen.h"
#include "xmlq/datagen/random_tree.h"
#include "xmlq/exec/hybrid.h"
#include "xmlq/exec/naive_nav.h"
#include "xmlq/exec/nok_matcher.h"
#include "xmlq/exec/path_stack.h"
#include "xmlq/exec/structural_join.h"
#include "xmlq/exec/twig_stack.h"
#include "xmlq/xpath/compiler.h"
#include "xmlq/xml/parser.h"
#include "xmlq/xpath/parser.h"

namespace xmlq::exec {
namespace {

using algebra::Axis;
using algebra::CompareOp;
using algebra::PatternGraph;
using algebra::ValuePredicate;
using algebra::VertexId;

/// Bundles a document with all physical views for the matchers.
struct TestDoc {
  std::unique_ptr<xml::Document> dom;
  std::unique_ptr<storage::SuccinctDocument> succinct;
  std::unique_ptr<storage::RegionIndex> regions;
  IndexedDocument view;

  explicit TestDoc(std::unique_ptr<xml::Document> d) : dom(std::move(d)) {
    succinct = std::make_unique<storage::SuccinctDocument>(
        storage::SuccinctDocument::Build(*dom));
    regions = std::make_unique<storage::RegionIndex>(*dom);
    view = IndexedDocument{dom.get(), succinct.get(), regions.get(), nullptr};
  }
};

TestDoc FromXml(std::string_view text) {
  auto parsed = xml::ParseDocument(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return TestDoc(std::make_unique<xml::Document>(std::move(*parsed)));
}

PatternGraph FromXPath(std::string_view path) {
  auto ast = xpath::ParsePath(path);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  auto graph = xpath::CompileToPattern(*ast);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  return std::move(*graph);
}

/// Runs every engine and checks they agree with the naive reference.
void ExpectAllEnginesAgree(const TestDoc& doc, const PatternGraph& graph,
                           const std::string& label) {
  auto naive = NaiveMatchPattern(*doc.dom, graph);
  ASSERT_TRUE(naive.ok()) << label << ": " << naive.status().ToString();

  auto hybrid = HybridMatch(doc.view, graph);
  ASSERT_TRUE(hybrid.ok()) << label << ": " << hybrid.status().ToString();
  EXPECT_EQ(*hybrid, *naive) << label << " (hybrid/NoK)";

  auto twig = TwigStackMatch(doc.view, graph);
  ASSERT_TRUE(twig.ok()) << label << ": " << twig.status().ToString();
  EXPECT_EQ(*twig, *naive) << label << " (TwigStack)";

  auto binary = BinaryJoinPlanMatch(doc.view, graph);
  ASSERT_TRUE(binary.ok()) << label << ": " << binary.status().ToString();
  EXPECT_EQ(*binary, *naive) << label << " (binary joins)";

  bool linear = true;
  for (VertexId v = 0; v < graph.VertexCount(); ++v) {
    if (graph.vertex(v).children.size() > 1) linear = false;
  }
  if (linear) {
    auto path = PathStackMatch(doc.view, graph);
    ASSERT_TRUE(path.ok()) << label << ": " << path.status().ToString();
    EXPECT_EQ(*path, *naive) << label << " (PathStack)";
  }
}

TEST(MatchersTest, SimpleChildPath) {
  TestDoc doc = FromXml("<bib><book><title>a</title></book><book/></bib>");
  ExpectAllEnginesAgree(doc, FromXPath("/bib/book/title"), "/bib/book/title");
  ExpectAllEnginesAgree(doc, FromXPath("/bib/book"), "/bib/book");
}

TEST(MatchersTest, DescendantAndWildcard) {
  TestDoc doc = FromXml(
      "<r><a><x><b>1</b></x></a><b>2</b><a><b>3</b></a></r>");
  ExpectAllEnginesAgree(doc, FromXPath("//b"), "//b");
  ExpectAllEnginesAgree(doc, FromXPath("/r//b"), "/r//b");
  ExpectAllEnginesAgree(doc, FromXPath("//a//b"), "//a//b");
  ExpectAllEnginesAgree(doc, FromXPath("//a/*"), "//a/*");
  ExpectAllEnginesAgree(doc, FromXPath("/*/*"), "/*/*");
}

TEST(MatchersTest, AttributesAndValuePredicates) {
  TestDoc doc = FromXml(
      "<shop><item price=\"5\"><name>pen</name></item>"
      "<item price=\"50\"><name>ink</name></item>"
      "<item><name>pad</name></item></shop>");
  ExpectAllEnginesAgree(doc, FromXPath("//item/@price"), "//item/@price");
  ExpectAllEnginesAgree(doc, FromXPath("//item[@price]"), "//item[@price]");
  ExpectAllEnginesAgree(doc, FromXPath("//item[@price = '50']"),
                        "//item[@price = '50']");
  ExpectAllEnginesAgree(doc, FromXPath("//item[@price < 10]/name"),
                        "//item[@price < 10]/name");
  ExpectAllEnginesAgree(doc, FromXPath("//item[name = 'pad']"),
                        "//item[name = 'pad']");
}

TEST(MatchersTest, ExistenceBranches) {
  TestDoc doc = FromXml(
      "<r><p><q/><s/></p><p><q/></p><p><s/></p></r>");
  ExpectAllEnginesAgree(doc, FromXPath("//p[q][s]"), "//p[q][s]");
  ExpectAllEnginesAgree(doc, FromXPath("//p[q]"), "//p[q]");
  ExpectAllEnginesAgree(doc, FromXPath("//p[q and s]"), "//p[q and s]");
}

TEST(MatchersTest, NestedDescendantPredicates) {
  // Triggers the hybrid's nested-seam fallback path.
  TestDoc doc = FromXml(
      "<r><a><b><c><d/></c></b></a><a><b/></a>"
      "<a><b><c/></b><x><d/></x></a></r>");
  ExpectAllEnginesAgree(doc, FromXPath("//a[b//c[.//d]]"),
                        "//a[b//c[.//d]] (nested seams)");
  ExpectAllEnginesAgree(doc, FromXPath("//a[.//d]//c"), "//a[.//d]//c");
}

TEST(MatchersTest, FilteredBranchStreamExhaustsBeforeSibling) {
  // Regression: the `i > 20` filter leaves a short stream that exhausts
  // while the sibling `c` stream still has pairable elements. TwigStack's
  // getNext must keep draining live branches instead of terminating.
  TestDoc doc = FromXml(
      "<r>"
      "<oa><b><i>5</i></b><c>c1</c></oa>"
      "<oa><b><i>30</i></b><c>c2</c></oa>"   // the only qualifying i
      "<oa><b><i>7</i></b><c>c3</c></oa>"
      "<oa><b><i>2</i></b><c>c4</c></oa>"
      "</r>");
  ExpectAllEnginesAgree(doc, FromXPath("//oa[b/i > 20]/c"),
                        "//oa[b/i > 20]/c (early stream exhaustion)");
  // Mirror case: the filtered branch comes second in document order.
  TestDoc doc2 = FromXml(
      "<r>"
      "<oa><c>c1</c><b><i>30</i></b></oa>"
      "<oa><c>c2</c><b><i>5</i></b></oa>"
      "</r>");
  ExpectAllEnginesAgree(doc2, FromXPath("//oa[b/i > 20]/c"),
                        "//oa[b/i > 20]/c (filtered branch second)");
}

TEST(MatchersTest, EmptyResults) {
  TestDoc doc = FromXml("<r><a/></r>");
  ExpectAllEnginesAgree(doc, FromXPath("//zzz"), "//zzz (unknown tag)");
  ExpectAllEnginesAgree(doc, FromXPath("/r/a/a"), "/r/a/a (no match)");
  ExpectAllEnginesAgree(doc, FromXPath("//a[@id]"), "//a[@id]");
}

TEST(MatchersTest, RecursiveNesting) {
  TestDoc doc = FromXml(
      "<a><a><a><b/></a></a><b/><a><a><b/><b/></a></a></a>");
  ExpectAllEnginesAgree(doc, FromXPath("//a//a"), "//a//a");
  ExpectAllEnginesAgree(doc, FromXPath("//a/a/b"), "//a/a/b");
  ExpectAllEnginesAgree(doc, FromXPath("//a[a]/b"), "//a[a]/b");
  ExpectAllEnginesAgree(doc, FromXPath("//a[b]//b"), "//a[b]//b");
}

TEST(NokMatcherTest, SingleScanPairs) {
  TestDoc doc = FromXml(
      "<r><a><b/><c/></a><a><b/></a></r>");
  // Single-part pattern: a[b][c] (all child arcs).
  PatternGraph graph;
  const VertexId a = graph.AddVertex(graph.root(), Axis::kDescendant, "a");
  const VertexId b = graph.AddVertex(a, Axis::kChild, "b");
  graph.AddVertex(a, Axis::kChild, "c");
  graph.SetOutput(b);
  const xpath::NokPartition partition = xpath::PartitionNok(graph);
  ASSERT_EQ(partition.parts.size(), 2u);  // {root} and {a,b,c}
  const VertexId requested[] = {b};
  auto result =
      MatchNokPart(*doc.succinct, graph, partition.parts[1], requested);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Only the first <a> has both b and c.
  EXPECT_EQ(result->head_matches, (NodeList{2}));
  ASSERT_EQ(result->pairs[0].size(), 1u);
  EXPECT_EQ(result->pairs[0][0].ancestor, 2u);
  EXPECT_EQ(result->pairs[0][0].descendant, 3u);
}

TEST(NokMatcherTest, MatchNokPatternSinglePart) {
  TestDoc doc = FromXml("<bib><book><title/></book><book/></bib>");
  PatternGraph graph;
  const VertexId bib = graph.AddVertex(graph.root(), Axis::kChild, "bib");
  const VertexId book = graph.AddVertex(bib, Axis::kChild, "book");
  graph.AddVertex(book, Axis::kChild, "title");
  graph.SetOutput(book);
  auto result = MatchNokPattern(*doc.succinct, graph);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, (NodeList{2}));
}

TEST(NokMatcherTest, RejectsUnsupportedAxes) {
  TestDoc doc = FromXml("<r><a/><b/></r>");
  PatternGraph graph;
  const VertexId a = graph.AddVertex(graph.root(), Axis::kChild, "a");
  graph.AddVertex(a, Axis::kFollowingSibling, "b");
  graph.SetOutput(a);
  const xpath::NokPartition partition = xpath::PartitionNok(graph);
  const VertexId requested[] = {a};
  auto result =
      MatchNokPart(*doc.succinct, graph, partition.parts[0], requested);
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

/// Generates a random twig over the random-tree vocabulary.
PatternGraph RandomPattern(Rng* rng) {
  PatternGraph graph;
  const auto random_label = [&]() -> std::string {
    if (rng->Chance(0.12)) return "*";
    return "t" + std::to_string(rng->Below(4));
  };
  VertexId spine = graph.root();
  const int steps = static_cast<int>(rng->Range(1, 4));
  std::vector<VertexId> spine_vertices;
  for (int i = 0; i < steps; ++i) {
    const Axis axis = rng->Chance(0.5) ? Axis::kChild : Axis::kDescendant;
    spine = graph.AddVertex(spine, axis, random_label());
    spine_vertices.push_back(spine);
  }
  // Random side branches, possibly multi-step (predicate paths like
  // [x//y = '7'] or nested existence branches).
  const int branches = static_cast<int>(rng->Range(0, 3));
  for (int i = 0; i < branches; ++i) {
    const VertexId at =
        spine_vertices[rng->Below(spine_vertices.size())];
    if (rng->Chance(0.25)) {
      const VertexId attr = graph.AddVertex(at, Axis::kAttribute,
                                            "a" + std::to_string(rng->Below(3)),
                                            /*is_attribute=*/true);
      if (rng->Chance(0.5)) {
        graph.AddPredicate(attr,
                           ValuePredicate{CompareOp::kLt,
                                          std::to_string(rng->Below(50)),
                                          true});
      }
      continue;
    }
    VertexId cur = at;
    const int depth = static_cast<int>(rng->Range(1, 2));
    for (int d = 0; d < depth; ++d) {
      const Axis axis = rng->Chance(0.6) ? Axis::kChild : Axis::kDescendant;
      cur = graph.AddVertex(cur, axis, random_label());
    }
    if (rng->Chance(0.35)) {
      const CompareOp op = rng->Chance(0.5) ? CompareOp::kEq : CompareOp::kGe;
      graph.AddPredicate(cur, ValuePredicate{op,
                                             std::to_string(rng->Below(100)),
                                             true});
    }
  }
  graph.SetOutput(spine_vertices[rng->Below(spine_vertices.size())]);
  return graph;
}

class MatcherPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatcherPropertyTest, AllEnginesAgreeOnRandomTreesAndPatterns) {
  datagen::RandomTreeOptions options;
  options.seed = GetParam();
  options.num_elements = 220;
  options.tag_vocabulary = 4;
  TestDoc doc(datagen::GenerateRandomTree(options));
  Rng rng(GetParam() * 7919 + 13);
  for (int q = 0; q < 40; ++q) {
    const PatternGraph graph = RandomPattern(&rng);
    ASSERT_TRUE(graph.Validate().ok());
    ExpectAllEnginesAgree(doc, graph,
                          "seed=" + std::to_string(GetParam()) + " query#" +
                              std::to_string(q) + "\n" + graph.ToString());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherPropertyTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull, 7ull, 8ull, 9ull, 10ull));

TEST(MatchersTest, NestedListOutputOfTau) {
  // τ : Tree × PatternGraph → NestedList with two output vertices: each
  // book nests its titles (paper §3.2's motivation for the NestedList sort).
  TestDoc doc = FromXml(
      "<bib><book><title>T1</title></book>"
      "<book><title>T2</title><title>T2b</title></book>"
      "<book><extra/></book></bib>");
  PatternGraph graph;
  const VertexId bib = graph.AddVertex(graph.root(), Axis::kChild, "bib");
  const VertexId book = graph.AddVertex(bib, Axis::kChild, "book");
  const VertexId title = graph.AddVertex(book, Axis::kChild, "title");
  graph.SetOutput(book);
  graph.SetOutput(title);
  auto nested = MatchPatternNested(*doc.dom, graph);
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();
  // Two books qualify (the third has no title); titles nest inside them.
  ASSERT_EQ(nested->size(), 2u);
  EXPECT_EQ((*nested)[0].children.size(), 1u);
  EXPECT_EQ((*nested)[1].children.size(), 2u);
  EXPECT_EQ(algebra::NestedSize(*nested), 5u);
  EXPECT_EQ((*nested)[1].children[0].item.StringValue(), "T2");
  // Flattening recovers the List sort in document order.
  const algebra::Sequence flat = algebra::Flatten(*nested);
  EXPECT_EQ(flat.size(), 5u);
}

TEST(MatchersTest, FollowingSiblingAxisViaNaive) {
  TestDoc doc = FromXml(
      "<r><a/><b>1</b><c/><b>2</b><x><a/><b>3</b></x></r>");
  // Only the naive engine evaluates following-sibling; the others report
  // kUnsupported (the executor's fallback covers them end to end).
  const PatternGraph graph = FromXPath("//a/following-sibling::b");
  auto naive = NaiveMatchPattern(*doc.dom, graph);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  ASSERT_EQ(naive->size(), 3u);  // b=1, b=2 (after first a), b=3
  EXPECT_EQ(TwigStackMatch(doc.view, graph).status().code(),
            StatusCode::kUnsupported);
  // `self::` restricts without moving.
  auto self_match =
      NaiveMatchPattern(*doc.dom, FromXPath("//b/self::b[. = '2']"));
  ASSERT_TRUE(self_match.ok());
  EXPECT_EQ(self_match->size(), 1u);
}

TEST(MatchersTest, AuctionWorkloadQueries) {
  datagen::AuctionOptions options;
  options.scale = 0.01;
  TestDoc doc(datagen::GenerateAuctionSite(options));
  for (const char* query : {
           "/site/regions/africa/item",
           "//item/name",
           "//person[profile/education]/name",
           "//open_auction[bidder]/current",
           "//item[payment = 'Cash']//mail",
           "//person[@id = 'person3']",
           "//open_auction[initial > 100]",
           "//closed_auction/price",
       }) {
    ExpectAllEnginesAgree(doc, FromXPath(query), query);
  }
}

}  // namespace
}  // namespace xmlq::exec
