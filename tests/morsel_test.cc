// Property tests for the morsel layer (DESIGN.md §12): SplitStreams must
// partition per-vertex region streams into document-order morsels that are
// disjoint, covering, nonempty, and subtree-closed — on seeded random trees
// and on the degenerate shapes that stress the splitter (a 100k-deep chain
// with no legal cut, a 100k-wide single-tag fan-out where every gap is one).
// Also covers MorselPool's exactly-once task execution, LaneGuards budget
// slicing, and the Crc32Combine fold the parallel read path uses to verify
// snapshots chunk-wise.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "xmlq/base/crc32.h"
#include "xmlq/base/limits.h"
#include "xmlq/exec/morsel.h"
#include "xmlq/storage/region_index.h"

namespace xmlq::exec {
namespace {

using storage::Region;

/// Generates a random rooted tree of `num_nodes` elements over `tags` tag
/// ids and returns one document-ordered region stream per tag. Positions
/// follow the open/close numbering the real region index uses: a parent's
/// region strictly contains its descendants' regions.
std::vector<std::vector<Region>> RandomStreams(uint64_t seed,
                                               size_t num_nodes,
                                               uint32_t tags,
                                               double deep_bias = 0.5) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<uint32_t> pick_tag(0, tags - 1);

  std::vector<std::vector<Region>> streams(tags);
  uint32_t pos = 0;
  // Iterative DFS construction: `open` holds the ancestors whose end
  // position is still pending (index into a flat region list).
  struct Open {
    size_t stream;
    size_t index;
  };
  std::vector<Open> open;
  for (size_t n = 0; n < num_nodes; ++n) {
    // Occasionally pop ancestors so the tree branches instead of becoming
    // one chain; deep_bias ~1.0 keeps it chain-like, ~0.0 bushy.
    while (!open.empty() && coin(rng) > deep_bias) {
      streams[open.back().stream][open.back().index].end = pos++;
      open.pop_back();
    }
    const uint32_t tag = pick_tag(rng);
    Region region;
    region.start = pos++;
    region.level = static_cast<uint32_t>(open.size());
    region.name = static_cast<xml::NameId>(tag);
    streams[tag].push_back(region);
    open.push_back({tag, streams[tag].size() - 1});
  }
  while (!open.empty()) {
    streams[open.back().stream][open.back().index].end = pos++;
    open.pop_back();
  }
  // DFS start order is document order, but each stream was filled by open
  // position — already sorted by start. Assert instead of trusting.
  for (const auto& stream : streams) {
    EXPECT_TRUE(std::is_sorted(
        stream.begin(), stream.end(),
        [](const Region& a, const Region& b) { return a.start < b.start; }));
  }
  return streams;
}

/// Asserts every structural invariant SplitStreams promises:
/// disjoint + covering (boundary rows), nonempty morsels, and the
/// subtree-closed cut property: no participating region spans a cut.
void CheckPlanInvariants(const MorselPlan& plan,
                         const std::vector<std::vector<Region>>& streams,
                         size_t skip_vertex) {
  size_t participating_total = 0;
  for (size_t v = 0; v < streams.size(); ++v) {
    if (v != skip_vertex) participating_total += streams[v].size();
  }
  if (participating_total == 0) {
    EXPECT_EQ(plan.count(), 0u);
    return;
  }
  ASSERT_GE(plan.count(), 1u);
  ASSERT_EQ(plan.bounds.size(), plan.count() + 1);

  for (size_t v = 0; v < streams.size(); ++v) {
    ASSERT_EQ(plan.bounds.front()[v], 0u) << "vertex " << v;
    const size_t expect_last = v == skip_vertex ? 0 : streams[v].size();
    ASSERT_EQ(plan.bounds.back()[v], expect_last) << "vertex " << v;
    for (size_t m = 0; m < plan.count(); ++m) {
      ASSERT_LE(plan.bounds[m][v], plan.bounds[m + 1][v])
          << "vertex " << v << " morsel " << m;
    }
  }

  for (size_t m = 0; m < plan.count(); ++m) {
    size_t in_morsel = 0;
    for (size_t v = 0; v < streams.size(); ++v) {
      in_morsel += plan.bounds[m + 1][v] - plan.bounds[m][v];
    }
    EXPECT_GT(in_morsel, 0u) << "empty morsel " << m;
  }

  // Subtree-closed: at every interior boundary, every region on the left
  // ends strictly before every region on the right starts — so a region and
  // all its descendants land in the same morsel.
  for (size_t m = 1; m < plan.count(); ++m) {
    uint32_t max_end_before = 0;
    uint32_t min_start_after = std::numeric_limits<uint32_t>::max();
    for (size_t v = 0; v < streams.size(); ++v) {
      if (v == skip_vertex) continue;
      const size_t cut = plan.bounds[m][v];
      for (size_t i = 0; i < cut; ++i) {
        max_end_before = std::max(max_end_before, streams[v][i].end);
      }
      if (cut < streams[v].size()) {
        min_start_after = std::min(min_start_after, streams[v][cut].start);
      }
    }
    EXPECT_LT(max_end_before, min_start_after) << "cut " << m;
  }
}

struct SplitCase {
  uint64_t seed;
  size_t nodes;
  uint32_t tags;
  double deep_bias;
};

class SplitStreamsPropertyTest : public ::testing::TestWithParam<SplitCase> {};

TEST_P(SplitStreamsPropertyTest, InvariantsHoldOnRandomTrees) {
  const SplitCase c = GetParam();
  const auto streams = RandomStreams(c.seed, c.nodes, c.tags, c.deep_bias);
  for (const size_t skip : {size_t{0}, streams.size()}) {
    for (const uint32_t lanes : {2u, 4u, 8u}) {
      // target 0 = auto, 1 = adversarial one-group morsels, 7 = odd size.
      for (const size_t target : {size_t{0}, size_t{1}, size_t{7}}) {
        const MorselPlan plan = SplitStreams(streams, skip, target, lanes);
        CheckPlanInvariants(plan, streams, skip);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitStreamsPropertyTest,
    ::testing::Values(SplitCase{1, 200, 1, 0.5}, SplitCase{2, 500, 3, 0.5},
                      SplitCase{3, 2000, 4, 0.3}, SplitCase{4, 2000, 4, 0.9},
                      SplitCase{5, 5000, 2, 0.6}, SplitCase{6, 50, 5, 0.2},
                      SplitCase{7, 1000, 3, 0.99}, SplitCase{8, 3000, 6, 0.4}));

TEST(SplitStreamsTest, DeepChainHasNoLegalCut) {
  // 100k nested regions: every boundary is spanned by an ancestor, so even
  // the adversarial target must return exactly one morsel.
  constexpr size_t kDepth = 100'000;
  std::vector<std::vector<Region>> streams(1);
  streams[0].reserve(kDepth);
  for (size_t i = 0; i < kDepth; ++i) {
    Region region;
    region.start = static_cast<uint32_t>(i);
    region.end = static_cast<uint32_t>(2 * kDepth - 1 - i);
    region.level = static_cast<uint32_t>(i);
    streams[0].push_back(region);
  }
  const MorselPlan plan = SplitStreams(streams, streams.size(), 1, 8);
  EXPECT_EQ(plan.count(), 1u);
  CheckPlanInvariants(plan, streams, streams.size());
}

TEST(SplitStreamsTest, SingleTagFanOutSplitsFully) {
  // 100k disjoint siblings: every boundary is legal. The adversarial
  // target=1 must produce one region per morsel; auto must scale with
  // lanes and keep the invariants.
  constexpr size_t kWidth = 100'000;
  std::vector<std::vector<Region>> streams(1);
  streams[0].reserve(kWidth);
  for (size_t i = 0; i < kWidth; ++i) {
    Region region;
    region.start = static_cast<uint32_t>(2 * i + 1);
    region.end = static_cast<uint32_t>(2 * i + 2);
    region.level = 1;
    streams[0].push_back(region);
  }
  const MorselPlan adversarial = SplitStreams(streams, streams.size(), 1, 8);
  EXPECT_EQ(adversarial.count(), kWidth);
  CheckPlanInvariants(adversarial, streams, streams.size());

  const MorselPlan automatic = SplitStreams(streams, streams.size(), 0, 4);
  EXPECT_GT(automatic.count(), 1u);
  EXPECT_LE(automatic.count(), 4u * 4u);
  CheckPlanInvariants(automatic, streams, streams.size());
}

TEST(SplitStreamsTest, EmptyStreamsYieldNoMorsels) {
  std::vector<std::vector<Region>> streams(3);
  const MorselPlan plan = SplitStreams(streams, 1, 0, 4);
  EXPECT_EQ(plan.count(), 0u);
}

TEST(SplitEvenlyTest, Properties) {
  EXPECT_EQ(SplitEvenly(0, 1, 4), (std::vector<size_t>{0, 0}));
  for (const size_t n : {1ul, 2ul, 7ul, 100ul, 1001ul, 65536ul}) {
    for (const size_t min_chunk : {1ul, 8ul, 1000ul}) {
      for (const size_t max_chunks : {1ul, 3ul, 16ul}) {
        const std::vector<size_t> bounds =
            SplitEvenly(n, min_chunk, max_chunks);
        ASSERT_GE(bounds.size(), 2u);
        EXPECT_EQ(bounds.front(), 0u);
        EXPECT_EQ(bounds.back(), n);
        EXPECT_LE(bounds.size() - 1, max_chunks);
        size_t smallest = n, largest = 0;
        for (size_t c = 0; c + 1 < bounds.size(); ++c) {
          ASSERT_LT(bounds[c], bounds[c + 1]);  // no empty chunks
          const size_t size = bounds[c + 1] - bounds[c];
          smallest = std::min(smallest, size);
          largest = std::max(largest, size);
        }
        EXPECT_LE(largest - smallest, 1u);  // near-equal
        if (bounds.size() > 2) EXPECT_GE(smallest, min_chunk);
      }
    }
  }
}

TEST(MorselPoolTest, EveryTaskRunsExactlyOnce) {
  MorselPool& pool = MorselPool::Shared();
  for (const uint32_t lanes : {1u, 2u, 8u}) {
    constexpr size_t kTasks = 1000;
    std::vector<std::atomic<int>> counts(kTasks);
    std::atomic<uint32_t> max_lane{0};
    pool.Run(kTasks, lanes, [&](size_t task, uint32_t lane) {
      counts[task].fetch_add(1, std::memory_order_relaxed);
      uint32_t seen = max_lane.load(std::memory_order_relaxed);
      while (lane > seen &&
             !max_lane.compare_exchange_weak(seen, lane,
                                             std::memory_order_relaxed)) {
      }
    });
    for (size_t t = 0; t < kTasks; ++t) {
      ASSERT_EQ(counts[t].load(), 1) << "task " << t << " lanes " << lanes;
    }
    EXPECT_LT(max_lane.load(), std::max(1u, lanes));
  }
}

TEST(MorselPoolTest, SingleLaneRunsOnCaller) {
  const std::thread::id caller = std::this_thread::get_id();
  MorselPool::Shared().Run(64, 1, [&](size_t, uint32_t lane) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(lane, 0u);
  });
}

TEST(MorselPoolTest, ConcurrentExternalCallersAreIsolated) {
  // Queries and the scrubber share MorselPool::Shared(); batches from
  // concurrent callers must not leak tasks into each other.
  constexpr size_t kCallers = 4;
  constexpr size_t kTasks = 500;
  std::vector<std::vector<std::atomic<int>>> counts(kCallers);
  for (auto& c : counts) {
    c = std::vector<std::atomic<int>>(kTasks);
  }
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      MorselPool::Shared().Run(kTasks, 4, [&, c](size_t task, uint32_t) {
        counts[c][task].fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (std::thread& t : callers) t.join();
  for (size_t c = 0; c < kCallers; ++c) {
    for (size_t t = 0; t < kTasks; ++t) {
      ASSERT_EQ(counts[c][t].load(), 1) << "caller " << c << " task " << t;
    }
  }
}

TEST(LaneGuardsTest, SlicesStepBudgetAndAbsorbsIntoParent) {
  QueryLimits limits;
  limits.max_steps = 100;
  ResourceGuard parent(limits);
  {
    LaneGuards lanes(&parent, 4, /*tasks=*/16);
    // Each lane gets ~1/4 of the remaining budget; staying under that slice
    // must not trip the lane.
    for (uint32_t i = 0; i < 4; ++i) {
      ASSERT_NE(lanes.lane(i), nullptr);
      EXPECT_FALSE(lanes.lane(i)->Tick(20)) << "lane " << i;
    }
  }
  // 4 × 20 absorbed; 21 more exceeds the parent's 100-step budget.
  EXPECT_FALSE(parent.Tick(0));
  EXPECT_TRUE(parent.Tick(21));
  EXPECT_EQ(parent.status().code(), StatusCode::kResourceExhausted);
}

TEST(LaneGuardsTest, LaneTripsOnOversizedSlice) {
  QueryLimits limits;
  limits.max_steps = 80;
  ResourceGuard parent(limits);
  LaneGuards lanes(&parent, 4, /*tasks=*/16);
  // One lane burning far past its ~20-step slice must trip locally without
  // waiting for the fold.
  EXPECT_TRUE(lanes.lane(0)->Tick(81));
  EXPECT_EQ(lanes.lane(0)->status().code(), StatusCode::kResourceExhausted);
}

TEST(LaneGuardsTest, NullParentYieldsNullLanes) {
  LaneGuards lanes(nullptr, 4, /*tasks=*/16);
  EXPECT_EQ(lanes.lane(0), nullptr);
  EXPECT_EQ(lanes.lane(3), nullptr);
}

TEST(LaneGuardsTest, AllocationCappedByTaskCount) {
  QueryLimits limits;
  limits.max_steps = 100;
  ResourceGuard parent(limits);
  // A huge requested lane count must not translate into a huge allocation:
  // MorselPool::Run only hands out lane ids < min(lanes, tasks), so only
  // that many guards exist. Slices still divide by the requested count.
  LaneGuards lanes(&parent, 0xFFFFFFFFu, /*tasks=*/3);
  EXPECT_EQ(lanes.lane_count(), 3u);
  EXPECT_NE(lanes.lane(2), nullptr);
}

TEST(LaneGuardsTest, ZeroTasksStillYieldsOneLane) {
  QueryLimits limits;
  limits.max_steps = 100;
  ResourceGuard parent(limits);
  LaneGuards lanes(&parent, 4, /*tasks=*/0);
  EXPECT_EQ(lanes.lane_count(), 1u);
  EXPECT_NE(lanes.lane(0), nullptr);
}

TEST(Crc32CombineTest, MatchesWholeBufferCrc) {
  std::mt19937_64 rng(42);
  for (const size_t len_a : {0ul, 1ul, 3ul, 64ul, 1000ul, 65536ul}) {
    for (const size_t len_b : {0ul, 1ul, 5ul, 255ul, 4096ul, 100000ul}) {
      std::string a(len_a, '\0'), b(len_b, '\0');
      for (char& ch : a) ch = static_cast<char>(rng());
      for (char& ch : b) ch = static_cast<char>(rng());
      const uint32_t whole = Crc32((a + b).data(), len_a + len_b);
      const uint32_t combined = Crc32Combine(
          Crc32(a.data(), len_a), Crc32(b.data(), len_b), len_b);
      ASSERT_EQ(combined, whole) << "len_a=" << len_a << " len_b=" << len_b;
    }
  }
}

TEST(Crc32CombineTest, FoldsAcrossManyChunks) {
  // The exact shape ParallelCrc32 uses: per-chunk CRCs folded left to right.
  std::mt19937_64 rng(7);
  std::string data(1 << 18, '\0');
  for (char& ch : data) ch = static_cast<char>(rng());
  const uint32_t whole = Crc32(data.data(), data.size());
  for (const size_t chunks : {2ul, 3ul, 7ul, 16ul}) {
    const std::vector<size_t> bounds = SplitEvenly(data.size(), 1, chunks);
    uint32_t crc = 0;
    for (size_t c = 0; c + 1 < bounds.size(); ++c) {
      const size_t size = bounds[c + 1] - bounds[c];
      crc = Crc32Combine(crc, Crc32(data.data() + bounds[c], size), size);
    }
    ASSERT_EQ(crc, whole) << chunks << " chunks";
  }
}

}  // namespace
}  // namespace xmlq::exec
