// The serving tier's robustness suite (DESIGN.md §10): protocol round-trip
// and hostile-bytes decoding, deadline/idle/backpressure eviction, wire
// cancellation, graceful drain under load, and the chaos matrix over every
// net.* fault site — asserting clean closes, zero fd leaks (counted via
// /proc/self/fd) and the response/overload/connection-error trichotomy.

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "xmlq/api/database.h"
#include "xmlq/base/fault_injector.h"
#include "xmlq/base/socket.h"
#include "xmlq/datagen/bib_gen.h"
#include "xmlq/net/client.h"
#include "xmlq/net/conn.h"
#include "xmlq/net/protocol.h"
#include "xmlq/net/server.h"

namespace xmlq {
namespace {

using net::CallOutcome;
using net::Client;
using net::ClientConfig;
using net::DecodeFrame;
using net::DecodeStatus;
using net::EncodeFrame;
using net::Frame;
using net::FrameType;
using net::ResponsePayload;
using net::RetryPolicy;
using net::Server;
using net::ServerConfig;

/// A query slow enough (seconds; see the calibration note in git history:
/// the 120-book triple join runs ~3.7 s) that cancels and drains reliably
/// land while it is still running.
constexpr char kSlowQuery[] =
    "for $a in doc(\"bib.xml\")//book, $b in doc(\"bib.xml\")//book, "
    "$c in doc(\"bib.xml\")//book "
    "where $a/price < $b/price and $b/price < $c/price "
    "return $a/title";

void LoadBib(api::Database* db, size_t books = 120) {
  datagen::BibOptions options;
  options.num_books = books;
  ASSERT_TRUE(
      db->RegisterDocument("bib.xml", datagen::GenerateBibliography(options))
          .ok());
}

// ---------------------------------------------------------------------------
// Protocol

TEST(NetProtocolTest, FrameRoundTrip) {
  for (const FrameType type :
       {FrameType::kQuery, FrameType::kCancel, FrameType::kPing,
        FrameType::kStats, FrameType::kResponse}) {
    const std::string payload =
        type == FrameType::kPing ? "" : "payload for " +
                                            std::string(FrameTypeName(type));
    const std::string bytes = EncodeFrame(type, 42, payload);
    Frame frame;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(DecodeFrame(bytes, &frame, &consumed, &error),
              DecodeStatus::kFrame)
        << error;
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.request_id, 42u);
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(NetProtocolTest, ResponsePayloadRoundTrip) {
  ResponsePayload in;
  in.code = StatusCode::kResourceExhausted;
  in.retry_after_micros = 123456;
  in.body = "admission queue full";
  ResponsePayload out;
  ASSERT_TRUE(DecodeResponse(net::EncodeResponse(in), &out));
  EXPECT_EQ(out.code, in.code);
  EXPECT_EQ(out.retry_after_micros, in.retry_after_micros);
  EXPECT_EQ(out.body, in.body);

  uint64_t target = 0;
  ASSERT_TRUE(net::DecodeCancelTarget(net::EncodeCancelTarget(77), &target));
  EXPECT_EQ(target, 77u);
  EXPECT_FALSE(net::DecodeCancelTarget("short", &target));
  EXPECT_FALSE(DecodeResponse("x", &out));
}

TEST(NetProtocolTest, PartialFramesNeedMore) {
  const std::string bytes = EncodeFrame(FrameType::kQuery, 7, "//book");
  Frame frame;
  size_t consumed = 0;
  std::string error;
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_EQ(DecodeFrame(std::string_view(bytes).substr(0, len), &frame,
                          &consumed, &error),
              DecodeStatus::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(NetProtocolTest, LengthFieldLiesAreRejectedBeforeBuffering) {
  // A header promising a payload far over the cap must be rejected from the
  // header alone — even though none of the payload is present.
  std::string bytes = EncodeFrame(FrameType::kQuery, 7, "q");
  uint32_t huge = 512u << 20;
  std::memcpy(bytes.data() + 16, &huge, sizeof(huge));  // payload_len field
  Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(std::string_view(bytes).substr(0, sizeof(net::FrameHeader)),
                        &frame, &consumed, &error, /*max_frame_bytes=*/1 << 20),
            DecodeStatus::kBad);
  EXPECT_NE(error.find("too large"), std::string::npos) << error;
}

TEST(NetProtocolTest, CorruptionIsDetected) {
  const std::string clean = EncodeFrame(FrameType::kQuery, 9, "//book/title");
  Frame frame;
  std::string error;
  // Every single-bit flip anywhere in the frame must fail decoding (magic,
  // version, type, reserved or CRC check — never a silently wrong frame).
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bytes = clean;
      bytes[byte] = static_cast<char>(bytes[byte] ^ (1 << bit));
      size_t consumed = 0;
      const DecodeStatus status =
          DecodeFrame(bytes, &frame, &consumed, &error);
      // A flip in the length field may also leave the decoder waiting for
      // bytes that never come — that is the read deadline's job, not the
      // decoder's. What must never happen is a valid decode.
      EXPECT_NE(status, DecodeStatus::kFrame)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(NetProtocolTest, FuzzedMutantsNeverCrashTheDecoder) {
  std::mt19937_64 rng(20260807);
  const std::string seeds[] = {
      EncodeFrame(FrameType::kQuery, 1, "//book/title"),
      EncodeFrame(FrameType::kCancel, 2, net::EncodeCancelTarget(1)),
      EncodeFrame(FrameType::kPing, 3, ""),
      EncodeFrame(FrameType::kResponse, 4,
                  net::EncodeResponse({StatusCode::kOk, 0, "<r/>"})),
  };
  for (int iter = 0; iter < 4000; ++iter) {
    std::string bytes = seeds[rng() % std::size(seeds)];
    switch (rng() % 5) {
      case 0:  // truncate
        bytes.resize(rng() % (bytes.size() + 1));
        break;
      case 1: {  // bit flips
        const int flips = 1 + rng() % 8;
        for (int i = 0; i < flips && !bytes.empty(); ++i) {
          bytes[rng() % bytes.size()] ^= static_cast<char>(1u << (rng() % 8));
        }
        break;
      }
      case 2: {  // length-field lie (offset 16, see FrameHeader)
        if (bytes.size() >= 20) {
          uint32_t lie = static_cast<uint32_t>(rng());
          std::memcpy(bytes.data() + 16, &lie, sizeof(lie));
        }
        break;
      }
      case 3:  // garbage prefix (stream desync)
        bytes.insert(0, std::string(1 + rng() % 32, static_cast<char>(rng())));
        break;
      case 4: {  // pure garbage
        bytes.assign(rng() % 256, '\0');
        for (char& c : bytes) c = static_cast<char>(rng());
        break;
      }
    }
    // Drive the decoder the way a connection would: consume frames until it
    // stalls or errors. It must terminate, stay in bounds, and never spin.
    size_t guard = 0;
    while (guard++ < 64) {
      Frame frame;
      size_t consumed = 0;
      std::string error;
      const DecodeStatus status = DecodeFrame(bytes, &frame, &consumed, &error);
      if (status != DecodeStatus::kFrame) break;
      ASSERT_GT(consumed, 0u);
      ASSERT_LE(consumed, bytes.size());
      bytes.erase(0, consumed);
    }
    ASSERT_LT(guard, 64u) << "decoder failed to terminate";
  }
}

TEST(NetClientTest, BackoffSaturatesInsteadOfWrapping) {
  RetryPolicy policy;
  policy.max_backoff_micros = 500'000;
  // The ordinary schedule: hint * 2^attempt until the cap.
  EXPECT_EQ(net::ScaledBackoffMicros(1'000, 0, policy), 1'000u);
  EXPECT_EQ(net::ScaledBackoffMicros(1'000, 3, policy), 8'000u);
  EXPECT_EQ(net::ScaledBackoffMicros(1'000, 16, policy), 500'000u);
  EXPECT_EQ(net::ScaledBackoffMicros(1'000, 40, policy), 500'000u);
  // A huge (buggy or hostile) server hint must saturate at the cap, never
  // overflow the shift and wrap to a near-zero wait.
  EXPECT_EQ(net::ScaledBackoffMicros(UINT64_MAX, 0, policy), 500'000u);
  EXPECT_EQ(net::ScaledBackoffMicros(UINT64_MAX / 2, 16, policy), 500'000u);
}

// ---------------------------------------------------------------------------
// Conn deadline policy (pure; no sockets)

TEST(ConnPolicyTest, DeadlinesFireInPriorityOrder) {
  net::ConnLimits limits;
  limits.idle_timeout_micros = 1000;
  limits.read_deadline_micros = 500;
  limits.write_deadline_micros = 700;
  limits.max_write_buffer_bytes = 64;
  const auto t0 = net::Conn::Clock::now();
  net::Conn conn(1, UniqueFd(), limits, t0);
  using std::chrono::microseconds;

  // Fresh connection: nothing fires until the idle timeout.
  EXPECT_EQ(conn.CheckDeadlines(t0 + microseconds(999)),
            net::Conn::Evict::kNone);
  EXPECT_EQ(conn.CheckDeadlines(t0 + microseconds(1001)),
            net::Conn::Evict::kIdle);

  // A partial frame arms the read deadline (and is activity: no idle).
  conn.NoteRead(t0, /*partial_frame=*/true);
  EXPECT_EQ(conn.CheckDeadlines(t0 + microseconds(499)),
            net::Conn::Evict::kNone);
  EXPECT_EQ(conn.CheckDeadlines(t0 + microseconds(501)),
            net::Conn::Evict::kReadDeadline);
  // Completing the frame disarms it.
  conn.NoteRead(t0 + microseconds(400), /*partial_frame=*/false);
  EXPECT_EQ(conn.CheckDeadlines(t0 + microseconds(600)),
            net::Conn::Evict::kNone);

  // Buffered writes arm the write deadline; progress re-arms it.
  conn.outbuf() = "response bytes";
  conn.NoteQueuedWrite(t0 + microseconds(600));
  EXPECT_EQ(conn.CheckDeadlines(t0 + microseconds(1200)),
            net::Conn::Evict::kNone);
  EXPECT_EQ(conn.CheckDeadlines(t0 + microseconds(1400)),
            net::Conn::Evict::kWriteDeadline);
  conn.outbuf().erase(0, 4);
  conn.NoteWrote(t0 + microseconds(1300));
  EXPECT_EQ(conn.CheckDeadlines(t0 + microseconds(1400)),
            net::Conn::Evict::kNone);

  // The backpressure bound beats everything.
  conn.outbuf().assign(65, 'x');
  EXPECT_EQ(conn.CheckDeadlines(t0 + microseconds(1400)),
            net::Conn::Evict::kSlowClient);
}

// ---------------------------------------------------------------------------
// End-to-end serving

struct ServerFixture {
  api::Database db;
  std::unique_ptr<Server> server;

  explicit ServerFixture(ServerConfig config = {}, size_t books = 120) {
    LoadBib(&db, books);
    server = std::make_unique<Server>(&db, config);
    const Status status = server->Start();
    EXPECT_TRUE(status.ok()) << status.ToString();
  }

  Result<Client> Connect(ClientConfig config = {}) {
    return Client::Connect("127.0.0.1", server->port(), config);
  }
};

TEST(NetServerTest, QueryPingStatsOverTheWire) {
  ServerFixture fx;
  auto client = fx.Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto pong = client->Ping();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->code, StatusCode::kOk);

  auto result = client->Query("doc(\"bib.xml\")//book/title");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->code, StatusCode::kOk);
  EXPECT_NE(result->body.find("<title>"), std::string::npos) << result->body;

  // Errors relay their status code, not a stringly-typed blob.
  auto missing = client->Query("doc(\"nope.xml\")//x");
  ASSERT_TRUE(missing.ok()) << missing.status().ToString();
  EXPECT_EQ(missing->code, StatusCode::kNotFound);

  auto parse = client->Query("for $x in");
  ASSERT_TRUE(parse.ok());
  EXPECT_EQ(parse->code, StatusCode::kParseError);

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->body.find("admission:"), std::string::npos);
  EXPECT_NE(stats->body.find("queries="), std::string::npos);

  const net::ServerStats server_stats = fx.server->stats();
  EXPECT_EQ(server_stats.queries, 3u);
  EXPECT_EQ(server_stats.pings, 1u);
  EXPECT_EQ(server_stats.protocol_errors, 0u);
}

TEST(NetServerTest, HostileWireParallelismIsClampedNotHonored) {
  ServerFixture fx;
  auto client = fx.Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const std::string query = "doc(\"bib.xml\")//book[author]/title";
  auto serial = client->Query(query);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_EQ(serial->code, StatusCode::kOk);

  // A kQueryOpts frame demanding 2^32-1 lanes must not be taken at face
  // value (served queries always run with an armed guard, so the lane-fork
  // allocation would otherwise scale with the wire-supplied u32). The server
  // clamps to the machine and the query still answers, byte-identically.
  auto hostile = client->Query(query, 0xFFFFFFFFu);
  ASSERT_TRUE(hostile.ok()) << hostile.status().ToString();
  EXPECT_EQ(hostile->code, StatusCode::kOk);
  EXPECT_EQ(hostile->body, serial->body);
}

TEST(NetServerTest, SharedConnectionPipelinesResponsesByRequestId) {
  ServerFixture fx;
  auto client = fx.Connect();
  ASSERT_TRUE(client.ok());
  auto id1 = client->SendQuery("doc(\"bib.xml\")//book/title");
  auto id2 = client->SendQuery("doc(\"bib.xml\")//book/author");
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  int seen = 0;
  while (seen < 2) {
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->first == *id1 || response->first == *id2);
    EXPECT_EQ(response->second.code, StatusCode::kOk);
    ++seen;
  }
}

TEST(NetServerTest, OverloadRelaysRetryAfterHint) {
  ServerConfig config;
  ServerFixture fx(config);
  fx.db.SetAdmission({.max_concurrent = 1, .max_queue = 0,
                      .queue_deadline_micros = 2000});
  auto slow = fx.Connect();
  auto fast = fx.Connect();
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  auto slow_id = slow->SendQuery(kSlowQuery);
  ASSERT_TRUE(slow_id.ok());
  // Give the worker a moment to occupy the single admission slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto shed = fast->Query("doc(\"bib.xml\")//book/title");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->code, StatusCode::kResourceExhausted);
  EXPECT_EQ(shed->retry_after_micros, 2000u) << shed->body;
  // Clean up: cancel the slow query and collect its response.
  ASSERT_TRUE(slow->SendCancel(*slow_id).ok());
  int responses = 0;
  while (responses < 2) {
    auto response = slow->ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ++responses;
  }
}

TEST(NetServerTest, RetryingClientEventuallyGetsThrough) {
  ServerFixture fx;
  fx.db.SetAdmission({.max_concurrent = 1, .max_queue = 0,
                      .queue_deadline_micros = 1000});
  auto slow = fx.Connect();
  ASSERT_TRUE(slow.ok());
  auto slow_id = slow->SendQuery(kSlowQuery);
  ASSERT_TRUE(slow_id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    (void)slow->SendCancel(*slow_id);
  });
  auto retry = fx.Connect();
  ASSERT_TRUE(retry.ok());
  std::mt19937_64 rng(1);
  RetryPolicy policy;
  policy.max_attempts = 200;  // keep retrying until the slot frees
  const net::CallResult call =
      retry->QueryWithRetry("doc(\"bib.xml\")//book/title", policy, &rng);
  canceller.join();
  EXPECT_EQ(call.outcome, CallOutcome::kResponse)
      << CallOutcomeName(call.outcome) << ": "
      << call.transport_error.ToString();
  EXPECT_EQ(call.response.code, StatusCode::kOk) << call.response.body;
  EXPECT_GT(call.attempts, 1u) << "expected at least one overload retry";
  EXPECT_GT(call.backoff_micros, 0u);
  int responses = 0;
  while (responses < 2) {
    auto response = slow->ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ++responses;
  }
}

TEST(NetServerTest, CancelOverTheWire) {
  ServerFixture fx;
  auto client = fx.Connect();
  ASSERT_TRUE(client.ok());
  auto query_id = client->SendQuery(kSlowQuery);
  ASSERT_TRUE(query_id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto cancel_id = client->SendCancel(*query_id);
  ASSERT_TRUE(cancel_id.ok());
  bool saw_cancel_ack = false;
  bool saw_query_response = false;
  while (!saw_cancel_ack || !saw_query_response) {
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response->first == *cancel_id) {
      EXPECT_EQ(response->second.code, StatusCode::kOk);
      EXPECT_NE(response->second.body.find("cancel signalled"),
                std::string::npos);
      saw_cancel_ack = true;
    } else if (response->first == *query_id) {
      EXPECT_EQ(response->second.code, StatusCode::kCancelled)
          << response->second.body;
      saw_query_response = true;
    }
  }
  // Cancelling a finished request reports not-found.
  auto late = client->SendCancel(*query_id);
  ASSERT_TRUE(late.ok());
  auto ack = client->ReadResponse();
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->second.code, StatusCode::kNotFound);
}

TEST(NetServerTest, InflightLimitAnswersWithRetryableOverload) {
  ServerConfig config;
  config.limits.max_inflight = 1;
  ServerFixture fx(config);
  auto client = fx.Connect();
  ASSERT_TRUE(client.ok());
  auto first = client->SendQuery(kSlowQuery);
  ASSERT_TRUE(first.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto second = client->Query("doc(\"bib.xml\")//book/title");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->code, StatusCode::kResourceExhausted);
  EXPECT_NE(second->body.find("in-flight limit"), std::string::npos)
      << second->body;
  EXPECT_GT(second->retry_after_micros, 0u);
  EXPECT_EQ(fx.server->stats().inflight_limit_rejects, 1u);
  ASSERT_TRUE(client->SendCancel(*first).ok());
  int responses = 0;
  while (responses < 2) {
    auto response = client->ReadResponse();
    ASSERT_TRUE(response.ok());
    ++responses;
  }
}

// ---------------------------------------------------------------------------
// Evictions

TEST(NetServerTest, IdleConnectionsAreEvicted) {
  ServerConfig config;
  config.limits.idle_timeout_micros = 100'000;
  ServerFixture fx(config, /*books=*/10);
  auto fd = ConnectTcp("127.0.0.1", fx.server->port(), 1'000'000,
                       5'000'000);
  ASSERT_TRUE(fd.ok());
  char buf[16];
  // The server must close us: recv returns 0 (not a timeout).
  const ssize_t n = recv(fd->get(), buf, sizeof(buf), 0);
  EXPECT_EQ(n, 0);
  // Eventually counted (the sweep runs on the loop tick).
  for (int i = 0; i < 100 && fx.server->stats().evicted_idle == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fx.server->stats().evicted_idle, 1u);
}

TEST(NetServerTest, PartialFrameHitsReadDeadline) {
  ServerConfig config;
  config.limits.read_deadline_micros = 100'000;
  config.limits.idle_timeout_micros = 60'000'000;
  ServerFixture fx(config, /*books=*/10);
  auto fd = ConnectTcp("127.0.0.1", fx.server->port(), 1'000'000,
                       5'000'000);
  ASSERT_TRUE(fd.ok());
  // A torn frame: half a header, then silence (slow-loris).
  const std::string frame = EncodeFrame(FrameType::kQuery, 1, "//book");
  ASSERT_EQ(send(fd->get(), frame.data(), 10, MSG_NOSIGNAL), 10);
  char buf[16];
  const ssize_t n = recv(fd->get(), buf, sizeof(buf), 0);
  EXPECT_EQ(n, 0);
  for (int i = 0; i < 100 && fx.server->stats().evicted_read_deadline == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fx.server->stats().evicted_read_deadline, 1u);
}

TEST(NetServerTest, GarbageBytesCloseTheConnection) {
  ServerFixture fx(ServerConfig{}, /*books=*/10);
  auto fd = ConnectTcp("127.0.0.1", fx.server->port(), 1'000'000,
                       5'000'000);
  ASSERT_TRUE(fd.ok());
  // Wrong protocol entirely — and long enough (> one FrameHeader) that the
  // decoder sees a full header rather than waiting for more bytes.
  const char garbage[] =
      "GET / HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n";
  ASSERT_GT(send(fd->get(), garbage, sizeof(garbage) - 1, MSG_NOSIGNAL), 0);
  char buf[64];
  EXPECT_EQ(recv(fd->get(), buf, sizeof(buf), 0), 0);
  for (int i = 0; i < 100 && fx.server->stats().protocol_errors == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(fx.server->stats().protocol_errors, 1u);
}

TEST(NetServerTest, OversizedFrameIsRefusedFromTheHeader) {
  ServerConfig config;
  config.limits.max_frame_bytes = 4096;
  ServerFixture fx(config, /*books=*/10);
  auto fd = ConnectTcp("127.0.0.1", fx.server->port(), 1'000'000,
                       5'000'000);
  ASSERT_TRUE(fd.ok());
  // Claim an 8 MiB payload; send only the header. The server must reject
  // from the length field alone instead of waiting for bytes.
  std::string frame = EncodeFrame(FrameType::kQuery, 1, "q");
  const uint32_t lie = 8u << 20;
  std::memcpy(frame.data() + 16, &lie, sizeof(lie));
  ASSERT_EQ(send(fd->get(), frame.data(), sizeof(net::FrameHeader),
                 MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(net::FrameHeader)));
  char buf[16];
  EXPECT_EQ(recv(fd->get(), buf, sizeof(buf), 0), 0);
}

TEST(NetServerTest, WriteFaultDuringPipelinedDispatchClosesCleanly) {
  // Regression: a write fault while responding used to destroy the Conn
  // from inside QueueResponse while the frame-dispatch loop still held a
  // pointer to it (use-after-free under ASan). Two pings arrive in one
  // segment; the first response's flush hits the armed fault, so the close
  // happens with the second frame still queued in the input buffer.
  ServerFixture fx(ServerConfig{}, /*books=*/10);
  auto fd = ConnectTcp("127.0.0.1", fx.server->port(), 1'000'000,
                       5'000'000);
  ASSERT_TRUE(fd.ok());
  const std::string bytes = EncodeFrame(FrameType::kPing, 1, "") +
                            EncodeFrame(FrameType::kPing, 2, "");
  FaultInjector::Instance().Arm("net.write", /*skip=*/0, /*count=*/1);
  ASSERT_EQ(send(fd->get(), bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  // The server must close us (no response ever flushed).
  char buf[64];
  EXPECT_LE(recv(fd->get(), buf, sizeof(buf), 0), 0);
  FaultInjector::Instance().Reset();
  for (int i = 0; i < 100 && fx.server->stats().write_faults == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fx.server->stats().write_faults, 1u);
  // The server survived: a fresh client gets a real answer.
  auto probe = fx.Connect();
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  auto pong = probe->Ping();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->code, StatusCode::kOk);
}

TEST(NetServerTest, OversizedResponseBodyBecomesStatusError) {
  // A result body over the server's response cap must come back as a
  // decodable status response — not a frame the client's decode cap
  // rejects as stream corruption.
  ServerConfig config;
  config.max_response_bytes = 1024;
  ServerFixture fx(config);  // 120 books: //book serializes far past 1 KiB
  auto client = fx.Connect();
  ASSERT_TRUE(client.ok());
  auto result = client->Query("doc(\"bib.xml\")//book");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->code, StatusCode::kResourceExhausted);
  EXPECT_NE(result->body.find("too large"), std::string::npos)
      << result->body;
  // Not an overload: no retry-after hint, so clients do not resubmit.
  EXPECT_EQ(result->retry_after_micros, 0u);
  // The connection is still healthy afterwards.
  auto pong = client->Ping();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->code, StatusCode::kOk);
}

// ---------------------------------------------------------------------------
// Graceful drain

TEST(NetServerTest, DrainUnderLoadLosesNoResponses) {
  ServerConfig config;
  config.workers = 4;
  config.drain_deadline_micros = 2'000'000;
  ServerFixture fx(config);
  constexpr int kThreads = 4;
  std::atomic<uint64_t> responses{0}, overloads{0}, conn_errors{0},
      requests{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<bool> stop{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(t);
      auto client = fx.Connect();
      while (!stop.load(std::memory_order_acquire)) {
        if (!client.ok()) {
          // Draining server refuses connects: a clean connection error.
          ++conn_errors;
          ++requests;
          break;
        }
        const net::CallResult call = client->QueryWithRetry(
            "doc(\"bib.xml\")//book/title", RetryPolicy{.max_attempts = 2},
            &rng);
        ++requests;
        switch (call.outcome) {
          case CallOutcome::kResponse: ++responses; break;
          case CallOutcome::kOverload: ++overloads; break;
          case CallOutcome::kConnectionError: ++conn_errors; return;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  fx.server->RequestDrain();
  const Status status = fx.server->Wait();
  EXPECT_TRUE(status.ok()) << status.ToString();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  // The trichotomy: every request ended in exactly one bucket, none hung.
  EXPECT_EQ(requests.load(),
            responses.load() + overloads.load() + conn_errors.load());
  EXPECT_GT(responses.load(), 0u);
}

TEST(NetServerTest, DrainCancelsInflightPastDeadlineButStillResponds) {
  ServerConfig config;
  config.drain_deadline_micros = 200'000;  // far shorter than kSlowQuery
  ServerFixture fx(config);
  auto client = fx.Connect();
  ASSERT_TRUE(client.ok());
  auto query_id = client->SendQuery(kSlowQuery);
  ASSERT_TRUE(query_id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  fx.server->RequestDrain();
  // Even though the drain cancels the query, its kCancelled response is
  // flushed before the connection closes: admitted work is never dropped
  // silently.
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->first, *query_id);
  EXPECT_EQ(response->second.code, StatusCode::kCancelled);
  const Status status = fx.server->Wait();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(fx.server->stats().drain_cancelled, 1u);
}

TEST(NetServerTest, ConcurrentWaitersAllBlockUntilThreadsAreJoined) {
  ServerFixture fx(ServerConfig{}, /*books=*/10);
  constexpr int kWaiters = 4;
  std::atomic<int> returned{0};
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      const Status status = fx.server->Wait();
      EXPECT_TRUE(status.ok()) << status.ToString();
      ++returned;
    });
  }
  // Nobody may return while the server is still serving — a second caller
  // racing the first's join must block, not bail out early.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(returned.load(), 0);
  fx.server->RequestDrain();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(returned.load(), kWaiters);
}

TEST(NetServerTest, DestructorForceDrainsWithoutWaitingOutTheDeadline) {
  auto fx = std::make_unique<ServerFixture>();  // default 5 s drain budget
  auto client = fx->Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendQuery(kSlowQuery).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto start = std::chrono::steady_clock::now();
  // ~Server drains with a zero deadline: the multi-second query is
  // cancelled immediately instead of getting the configured 5 s grace.
  fx.reset();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(3))
      << "destructor waited out the graceful drain deadline";
}

// ---------------------------------------------------------------------------
// Chaos matrix

/// The acceptance gate: every net.* fault site armed (periodically
/// re-armed so faults keep firing), torn-frame and garbage-byte injection
/// running, 8 concurrent retrying clients — and still: no crash, every
/// request ends in exactly one outcome bucket, the server drains cleanly,
/// and not one fd leaks.
TEST(NetChaosTest, FaultMatrixNoCrashNoFdLeakNoStuckConnection) {
  const int fds_before = CountOpenFds();
  ASSERT_GT(fds_before, 0);
  {
    ServerConfig config;
    config.workers = 4;
    config.limits.idle_timeout_micros = 2'000'000;
    config.limits.read_deadline_micros = 500'000;
    config.limits.write_deadline_micros = 500'000;
    config.drain_deadline_micros = 2'000'000;
    ServerFixture fx(config, /*books=*/30);
    fx.db.SetAdmission({.max_concurrent = 2, .max_queue = 2,
                        .queue_deadline_micros = 5'000});

    std::atomic<bool> stop{false};
    // Chaos driver: keeps all four sites armed with rotating skip/count so
    // faults land intermittently on every socket operation class.
    std::thread chaos([&] {
      std::mt19937_64 rng(99);
      const char* sites[] = {"net.accept", "net.read", "net.write",
                             "net.frame.decode"};
      while (!stop.load(std::memory_order_acquire)) {
        for (const char* site : sites) {
          FaultInjector::Instance().Arm(site, /*skip=*/rng() % 24,
                                        /*count=*/1 + rng() % 2);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      FaultInjector::Instance().Reset();
    });
    // Torn-frame injector: connects, sends partial frames / garbage /
    // short writes, disconnects mid-frame.
    std::thread torn([&] {
      std::mt19937_64 rng(7);
      while (!stop.load(std::memory_order_acquire)) {
        auto fd = ConnectTcp("127.0.0.1", fx.server->port(), 200'000,
                             200'000);
        if (fd.ok()) {
          std::string bytes =
              EncodeFrame(FrameType::kQuery, rng(),
                          "doc(\"bib.xml\")//book/title");
          switch (rng() % 3) {
            case 0:  // torn frame: a strict prefix, then close
              bytes.resize(rng() % bytes.size());
              break;
            case 1:  // garbage bytes
              for (char& c : bytes) c = static_cast<char>(rng());
              break;
            case 2:  // valid frame followed by a torn second one
              bytes += bytes.substr(0, 1 + rng() % 20);
              break;
          }
          (void)send(fd->get(), bytes.data(), bytes.size(), MSG_NOSIGNAL);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });

    constexpr int kClients = 8;
    constexpr int kRequestsPerClient = 250;
    std::atomic<uint64_t> responses{0}, overloads{0}, conn_errors{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::mt19937_64 rng(c * 31 + 1);
        ClientConfig client_config;
        client_config.connect_timeout_micros = 500'000;
        client_config.io_timeout_micros = 5'000'000;
        auto client = fx.Connect(client_config);
        for (int i = 0; i < kRequestsPerClient; ++i) {
          if (!client.ok()) {
            ++conn_errors;
            client = fx.Connect(client_config);
            continue;
          }
          const net::CallResult call = client->QueryWithRetry(
              "doc(\"bib.xml\")//book/title",
              RetryPolicy{.max_attempts = 3}, &rng);
          switch (call.outcome) {
            case CallOutcome::kResponse: ++responses; break;
            case CallOutcome::kOverload: ++overloads; break;
            case CallOutcome::kConnectionError:
              ++conn_errors;
              client = fx.Connect(client_config);
              break;
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    stop.store(true, std::memory_order_release);
    chaos.join();
    torn.join();
    FaultInjector::Instance().Reset();

    // Exactly one outcome per request, for every request.
    EXPECT_EQ(responses.load() + overloads.load() + conn_errors.load(),
              static_cast<uint64_t>(kClients) * kRequestsPerClient);
    EXPECT_GT(responses.load(), 0u) << "chaos starved every client";
    // The chaos actually landed: at least one injected fault or hostile
    // frame hit the server (otherwise this test proves nothing).
    const net::ServerStats mid = fx.server->stats();
    EXPECT_GT(mid.accept_faults + mid.read_faults + mid.write_faults +
                  mid.protocol_errors + mid.evicted_read_deadline,
              0u)
        << mid.ToString();
    // The server is not stuck: a fresh client gets a real answer.
    auto probe = fx.Connect();
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    std::mt19937_64 rng(123);
    const net::CallResult call = probe->QueryWithRetry(
        "doc(\"bib.xml\")//book/title", RetryPolicy{.max_attempts = 50},
        &rng);
    EXPECT_EQ(call.outcome, CallOutcome::kResponse)
        << call.transport_error.ToString();
    const Status status = fx.server->Shutdown();
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  // Everything closed: sockets, epoll, eventfd, every accepted conn.
  const int fds_after = CountOpenFds();
  EXPECT_EQ(fds_before, fds_after) << "fd leak";
}

}  // namespace
}  // namespace xmlq
