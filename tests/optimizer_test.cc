#include <gtest/gtest.h>

#include "xmlq/datagen/auction_gen.h"
#include "xmlq/opt/cardinality.h"
#include "xmlq/opt/optimizer.h"
#include "xmlq/opt/synopsis.h"
#include "xmlq/xml/parser.h"
#include "xmlq/xpath/compiler.h"
#include "xmlq/xpath/parser.h"

namespace xmlq::opt {
namespace {

algebra::PatternGraph Pattern(std::string_view path) {
  auto ast = xpath::ParsePath(path);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  auto graph = xpath::CompileToPattern(*ast);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  return std::move(*graph);
}

TEST(SynopsisTest, ExactStructuralCounts) {
  auto doc = xml::ParseDocument(
      "<r><a><b/><b/></a><a><b/><c/></a><c/></r>");
  ASSERT_TRUE(doc.ok());
  Synopsis synopsis(*doc);
  EXPECT_EQ(synopsis.TotalElements(), 8u);
  EXPECT_EQ(synopsis.CountByName(doc->pool().Find("a")), 2u);
  EXPECT_EQ(synopsis.CountByName(doc->pool().Find("b")), 3u);
  EXPECT_EQ(synopsis.CountByName(doc->pool().Find("c")), 2u);
  // Two distinct paths for c: /r/a/c and /r/c → separate synopsis nodes.
  size_t c_nodes = 0;
  for (const Synopsis::Node& n : synopsis.nodes()) {
    if (n.name == doc->pool().Find("c")) ++c_nodes;
  }
  EXPECT_EQ(c_nodes, 2u);
  EXPECT_EQ(synopsis.MaxDepth(), 3u);
  EXPECT_NE(synopsis.ToString(doc->pool()).find("x3"), std::string::npos);
}

TEST(SynopsisTest, CountsAttributes) {
  auto doc = xml::ParseDocument("<r><i id=\"1\"/><i id=\"2\"/></r>");
  ASSERT_TRUE(doc.ok());
  Synopsis synopsis(*doc);
  EXPECT_EQ(synopsis.CountAttributesByName(doc->pool().Find("id")), 2u);
}

TEST(CardinalityTest, ExactForPredicateFreePaths) {
  auto doc = xml::ParseDocument(
      "<r><a><b/><b/></a><a><b/></a><x><b/></x></r>");
  ASSERT_TRUE(doc.ok());
  Synopsis synopsis(*doc);
  {
    const auto est =
        EstimatePattern(synopsis, doc->pool(), Pattern("/r/a/b"));
    EXPECT_DOUBLE_EQ(est.output_cardinality, 3.0);
  }
  {
    const auto est = EstimatePattern(synopsis, doc->pool(), Pattern("//b"));
    EXPECT_DOUBLE_EQ(est.output_cardinality, 4.0);
  }
  {
    const auto est = EstimatePattern(synopsis, doc->pool(), Pattern("//a"));
    // stream size equals the per-tag population.
    const auto out = Pattern("//a").SoleOutput();
    EXPECT_DOUBLE_EQ(est.stream_size[out], 2.0);
  }
}

TEST(CardinalityTest, PredicateSelectivityApplied) {
  auto doc = xml::ParseDocument("<r><p>1</p><p>2</p></r>");
  ASSERT_TRUE(doc.ok());
  Synopsis synopsis(*doc);
  const auto plain = EstimatePattern(synopsis, doc->pool(), Pattern("//p"));
  const auto filtered =
      EstimatePattern(synopsis, doc->pool(), Pattern("//p[. = '1']"));
  EXPECT_DOUBLE_EQ(filtered.output_cardinality,
                   plain.output_cardinality * kPredicateSelectivity);
}

TEST(CostModelTest, NaiveIsExpensiveForDescendantChains) {
  datagen::AuctionOptions options;
  options.scale = 0.05;
  auto doc = datagen::GenerateAuctionSite(options);
  Synopsis synopsis(*doc);
  const auto pattern = Pattern("//item//text");
  const auto est = EstimatePattern(synopsis, doc->pool(), pattern);
  const auto partition = xpath::PartitionNok(pattern);
  const double nok = CostNok(synopsis, pattern, partition, est);
  const double naive = CostNaive(synopsis, pattern, est);
  EXPECT_GT(naive, nok);
}

TEST(OptimizerTest, StrategyChoiceCoversAllAlternatives) {
  datagen::AuctionOptions options;
  options.scale = 0.02;
  auto doc = datagen::GenerateAuctionSite(options);
  Synopsis synopsis(*doc);
  const auto pattern = Pattern("//open_auction/bidder/increase");
  const StrategyChoice choice =
      ChooseStrategy(synopsis, doc->pool(), pattern);
  EXPECT_GE(choice.alternatives.size(), 4u);
  EXPECT_GT(choice.cost, 0.0);
  // The chosen strategy is the argmin.
  for (const auto& [strategy, cost] : choice.alternatives) {
    EXPECT_LE(choice.cost, cost)
        << exec::PatternStrategyName(strategy);
  }
  EXPECT_NE(choice.explanation.find("selected"), std::string::npos);
}

TEST(OptimizerTest, JoinOrderPrefersSelectiveEdges) {
  // b is rare, x is common: the (a,b) edge should join before (a,x).
  std::string text = "<r>";
  for (int i = 0; i < 50; ++i) {
    text += "<a><x/><x/><x/></a>";
  }
  text += "<a><b/><x/></a></r>";
  auto doc = xml::ParseDocument(text);
  ASSERT_TRUE(doc.ok());
  Synopsis synopsis(*doc);
  algebra::PatternGraph graph;
  const auto a =
      graph.AddVertex(graph.root(), algebra::Axis::kDescendant, "a");
  const auto x = graph.AddVertex(a, algebra::Axis::kChild, "x");
  const auto b = graph.AddVertex(a, algebra::Axis::kChild, "b");
  graph.SetOutput(a);
  const auto order = ChooseJoinOrder(synopsis, doc->pool(), graph);
  ASSERT_EQ(order.size(), 3u);  // edges (root,a), (a,x), (a,b)
  // The rare b edge must come before the common x edge.
  size_t pos_b = 0, pos_x = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == b) pos_b = i;
    if (order[i] == x) pos_x = i;
  }
  EXPECT_LT(pos_b, pos_x);
}

TEST(OptimizerTest, DifferentJoinOrdersHaveDifferentCosts) {
  datagen::AuctionOptions options;
  options.scale = 0.05;
  auto doc = datagen::GenerateAuctionSite(options);
  Synopsis synopsis(*doc);
  const auto pattern = Pattern("//person[profile/education]");
  const auto est = EstimatePattern(synopsis, doc->pool(), pattern);
  // profile=2, education=3 as edge targets (vertex ids from compilation).
  const algebra::VertexId person = 1, profile = 2, education = 3;
  const algebra::VertexId good[] = {education, profile, person};
  const algebra::VertexId bad[] = {person, profile, education};
  const double cost_good = CostBinaryJoin(pattern, est, good);
  const double cost_bad = CostBinaryJoin(pattern, est, bad);
  // Joining the selective (profile, education) edge first shrinks the big
  // person stream before it is scanned — the [5] effect.
  EXPECT_LT(cost_good, cost_bad);
}

}  // namespace
}  // namespace xmlq::opt
