// The 54-query cross-engine oracle workload, shared by the differential
// suite (every τ engine must agree byte-for-byte) and the replication suite
// (a caught-up follower must answer every one of these byte-identically to
// its primary). Keeping one definition ensures "the oracle" means the same
// thing in both places — a follower that passes it serves exactly what the
// primary serves.

#ifndef XMLQ_TESTS_ORACLE_QUERIES_H_
#define XMLQ_TESTS_ORACLE_QUERIES_H_

namespace xmlq::tests {

/// XPath workload over the XMark-style auction document: linear chains,
/// twigs, wildcards, attribute steps, value predicates, existence
/// predicates, deep //. 30 paths.
inline constexpr const char* kAuctionXPaths[] = {
    "/site/people/person",
    "/site/people/person/name",
    "//person",
    "//person/name",
    "//person[address]/name",
    "//person[address][phone]/name",
    "//person[phone]/emailaddress",
    "//person/profile/education",
    "//person[profile/education]/name",
    "//person/profile[@income]",
    "//person[@id = 'person3']/name",
    "//item",
    "//item/location",
    "//item[payment = 'Cash']/location",
    "//item[quantity = '1']/name",
    "//item/mailbox/mail",
    "//item/mailbox/mail/text",
    "//item[mailbox/mail]/name",
    "//open_auction/bidder",
    "//open_auction[bidder]/current",
    "//closed_auction/price",
    "//closed_auction[price]/itemref",
    "//category/name",
    "//category/description/text",
    "/site/regions/*/item/name",
    "//regions//item[location = 'Dallas']",
    "//*[@id]/name",
    "//person/address/city",
    "//mail[date]/from",
    "//profile[interest]/gender",
};

/// XQuery workload over the same auction document (FLWOR, aggregates,
/// ordering, element construction). 10 queries.
inline constexpr const char* kAuctionXQueries[] = {
    "for $p in doc(\"auction.xml\")//person[address] return $p/name",
    "for $p in doc(\"auction.xml\")//person "
    "where count($p/phone) > 0 return $p/emailaddress",
    "count(doc(\"auction.xml\")//item)",
    "for $i in doc(\"auction.xml\")//item "
    "where $i/payment = 'Cash' return $i/location",
    "for $a in doc(\"auction.xml\")//open_auction "
    "where count($a/bidder) > 1 return $a/current",
    "avg(doc(\"auction.xml\")//closed_auction/price)",
    "for $c in doc(\"auction.xml\")//category "
    "order by $c/name return $c/name",
    "<out>{for $p in doc(\"auction.xml\")//person[profile] "
    "return <p>{$p/name}</p>}</out>",
    "for $m in doc(\"auction.xml\")//mailbox/mail "
    "where $m/date return $m/from",
    "sum(doc(\"auction.xml\")//closed_auction/quantity)",
};

/// Fixed XPath workload over the random-tree generator's t0..t4 / a0..a2
/// vocabulary; the seed varies the document, not the workload. 14 paths.
inline constexpr const char* kRandomTreeXPaths[] = {
    "//t0",
    "//t0/t1",
    "//t0//t2",
    "/t0/*",
    "//t1[t2]",
    "//t0[t1][t2]",
    "//t2[@a0]",
    "//t3[@a1]/t0",
    "//t1[. < 40]",
    "//t0[t1 = '7']",
    "//*[t4]",
    "//t2/t3/t4",
    "//t0[t2]//t1",
    "//t4[@a2][t0]",
};

}  // namespace xmlq::tests

#endif  // XMLQ_TESTS_ORACLE_QUERIES_H_
