// Morsel-parallel serving stress (the TSan target for DESIGN.md §12):
// worker threads run mixed queries at varying intra-query parallelism —
// including the adversarial one-element-morsel split — while a writer
// swaps the document between two versions and a canceller kills random
// in-flight queries mid-morsel. Every query must end in exactly one of
// {ordered-correct result for SOME pinned document version, kCancelled,
// kResourceExhausted} — the same trichotomy the serial stress suite
// asserts, now with lanes racing inside each query. A second suite proves
// resource limits (deadline, step budget) still trip when the budget is
// sliced across lanes, and that queries and the scrubber can share the
// process-wide MorselPool concurrently.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "xmlq/api/database.h"
#include "xmlq/base/limits.h"
#include "xmlq/base/random.h"
#include "xmlq/datagen/auction_gen.h"
#include "xmlq/exec/admission.h"

namespace xmlq {
namespace {

std::unique_ptr<xml::Document> Auction(double scale, uint64_t seed) {
  datagen::AuctionOptions options;
  options.scale = scale;
  options.seed = seed;
  return datagen::GenerateAuctionSite(options);
}

TEST(ParallelStressTest, ConcurrentParallelQueriesSwapsAndCancels) {
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 25;
  constexpr uint64_t kSeed = 2027;

  const char* kPaths[] = {
      "//person/name",
      "//person[address]/name",
      "//item/location",
      "//open_auction[bidder]/current",
  };
  // Per-query knobs the workers cycle through: every stream engine plus
  // auto, at parallelism 2/4/8/0(=hardware), with the adversarial
  // one-element morsel split in the mix.
  struct Knobs {
    bool auto_optimize;
    exec::PatternStrategy strategy;
    uint32_t parallelism;
    size_t morsel_elements;
  };
  const Knobs kKnobs[] = {
      {true, exec::PatternStrategy::kNok, 4, 0},
      {false, exec::PatternStrategy::kNok, 2, 0},
      {false, exec::PatternStrategy::kTwigStack, 8, 0},
      {false, exec::PatternStrategy::kTwigStack, 4, 1},
      {false, exec::PatternStrategy::kPathStack, 4, 0},
      {false, exec::PatternStrategy::kBinaryJoin, 4, 0},
      {false, exec::PatternStrategy::kBinaryJoin, 8, 1},
      {true, exec::PatternStrategy::kNok, 0, 0},
  };

  // Precompute the expected answers for both document versions so a worker
  // can verify its pinned result no matter which version it saw.
  std::vector<std::string> expected_v1, expected_v2;
  {
    api::Database ref;
    ASSERT_TRUE(ref.RegisterDocument("a.xml", Auction(0.02, 7)).ok());
    for (const char* path : kPaths) {
      auto r = ref.QueryPath(path);
      ASSERT_TRUE(r.ok());
      expected_v1.push_back(api::Database::ToXml(*r));
    }
  }
  {
    api::Database ref;
    ASSERT_TRUE(ref.RegisterDocument("a.xml", Auction(0.02, 99)).ok());
    for (const char* path : kPaths) {
      auto r = ref.QueryPath(path);
      ASSERT_TRUE(r.ok());
      expected_v2.push_back(api::Database::ToXml(*r));
    }
  }

  api::Database db;
  ASSERT_TRUE(db.RegisterDocument("a.xml", Auction(0.02, 7)).ok());
  db.SetAdmission({.max_concurrent = 4, .max_queue = 8,
                   .queue_deadline_micros = 5000});

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> latest_query_id{0};
  std::atomic<int> correct{0}, cancelled{0}, exhausted{0};
  std::atomic<int> failures{0};
  std::vector<std::string> failure_notes(kThreads);

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng = Rng::Stream(kSeed, static_cast<uint64_t>(t));
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const size_t which = rng.Below(std::size(kPaths));
        const Knobs& knobs = kKnobs[rng.Below(std::size(kKnobs))];
        api::QueryOptions options;
        options.auto_optimize = knobs.auto_optimize;
        options.strategy = knobs.strategy;
        options.parallelism = knobs.parallelism;
        options.morsel_elements = knobs.morsel_elements;
        std::atomic<uint64_t> id{0};
        options.query_id_out = &id;
        auto result = db.QueryPath(kPaths[which], {}, options);
        latest_query_id.store(id.load(), std::memory_order_relaxed);
        if (result.ok()) {
          const std::string got = api::Database::ToXml(*result);
          if (got == expected_v1[which] || got == expected_v2[which]) {
            correct.fetch_add(1);
          } else {
            failures.fetch_add(1);
            failure_notes[t] =
                std::string("wrong result for ") + kPaths[which];
          }
        } else if (result.status().code() == StatusCode::kCancelled) {
          cancelled.fetch_add(1);
        } else if (result.status().code() ==
                   StatusCode::kResourceExhausted) {
          exhausted.fetch_add(1);
        } else {
          failures.fetch_add(1);
          failure_notes[t] = result.status().ToString();
        }
      }
    });
  }

  // Writer: swap between the two versions while parallel queries pin
  // whichever catalog snapshot they started on.
  std::thread swapper([&] {
    uint64_t flip = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t seed = (flip++ % 2 == 0) ? 99 : 7;
      ASSERT_TRUE(db.RegisterDocument("a.xml", Auction(0.02, seed)).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Canceller: fire at the last published id — with lanes in flight the
  // cancel must propagate through every lane guard.
  std::thread canceller([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t id = latest_query_id.load(std::memory_order_relaxed);
      if (id != 0) db.Cancel(id);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  swapper.join();
  canceller.join();

  EXPECT_EQ(failures.load(), 0)
      << "first failure note: " << [&] {
           for (const std::string& note : failure_notes) {
             if (!note.empty()) return note;
           }
           return std::string("none");
         }();
  EXPECT_EQ(correct.load() + cancelled.load() + exhausted.load(),
            kThreads * kQueriesPerThread);
  EXPECT_GT(correct.load(), 0);

  const exec::AdmissionStats stats = db.admission_stats();
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.queued, 0u);
}

TEST(ParallelStressTest, CancelLandsMidMorsel) {
  api::Database db;
  ASSERT_TRUE(db.RegisterDocument("a.xml", Auction(0.15, 7)).ok());
  // Several rounds so the cancel lands at different points of the morsel
  // schedule; each round must end cleanly either way.
  for (int round = 0; round < 5; ++round) {
    std::atomic<uint64_t> query_id{0};
    std::atomic<bool> done{false};
    Status status = Status::Ok();
    std::thread runner([&] {
      api::QueryOptions options;
      options.query_id_out = &query_id;
      options.parallelism = 8;
      options.morsel_elements = 1;  // maximize morsel count -> cancel windows
      auto result = db.Query(
          "for $p in doc(\"a.xml\")//person, $q in doc(\"a.xml\")//person "
          "where $p/name = $q/name return $p/name",
          options);
      if (!result.ok()) status = result.status();
      done.store(true);
    });
    while (query_id.load(std::memory_order_acquire) == 0) {
      std::this_thread::yield();
    }
    const bool hit = db.Cancel(query_id.load());
    runner.join();
    ASSERT_TRUE(done.load());
    if (hit && !status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kCancelled) << status.ToString();
    }
  }
}

TEST(ParallelStressTest, StepBudgetTripsWithSlicedLanes) {
  api::Database db;
  ASSERT_TRUE(db.RegisterDocument("a.xml", Auction(0.05, 7)).ok());
  api::QueryOptions options;
  options.limits.max_steps = 50;  // far below what the query needs
  for (const uint32_t parallelism : {1u, 4u, 8u}) {
    options.parallelism = parallelism;
    auto result = db.QueryPath("//person[address]/name", {}, options);
    ASSERT_FALSE(result.ok()) << "parallelism " << parallelism;
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << "parallelism " << parallelism << ": "
        << result.status().ToString();
  }
}

TEST(ParallelStressTest, ExpiredDeadlineTripsAtAnyParallelism) {
  api::Database db;
  ASSERT_TRUE(db.RegisterDocument("a.xml", Auction(0.05, 7)).ok());
  for (const uint32_t parallelism : {1u, 8u}) {
    api::QueryOptions options;
    options.parallelism = parallelism;
    options.limits.deadline_micros = 1;  // already expired at first tick
    auto result = db.QueryPath("//person[address]/name", {}, options);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
          << result.status().ToString();
    }
  }
}

// Queries and the scrubber share MorselPool::Shared(); run both parallel at
// once against a live store to prove batches stay isolated and quarantine
// decisions stay clean-store-correct under contention.
TEST(ParallelStressTest, ParallelQueriesAndParallelScrubShareThePool) {
  const std::string dir = "parallel_stress_store";
  std::filesystem::remove_all(dir);
  api::Database db;
  ASSERT_TRUE(db.RegisterDocument("a.xml", Auction(0.02, 7)).ok());
  auto attached = db.Attach(dir, storage::SnapshotOpenMode::kCopy);
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  ASSERT_TRUE(db.Persist("a.xml").ok());

  std::atomic<bool> stop{false};
  std::atomic<int> scrub_errors{0};
  std::atomic<int> query_errors{0};
  std::thread scrubber([&] {
    for (int i = 0; i < 20; ++i) {
      api::ScrubOptions scrub;
      scrub.deep = i % 2 == 1;
      scrub.parallelism = 4;
      auto report = db.Scrub(scrub);
      if (!report.ok() || report->corrupt != 0) ++scrub_errors;
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      api::QueryOptions options;
      options.parallelism = 4;
      while (!stop.load(std::memory_order_acquire)) {
        auto result = db.QueryPath("//person/name", "a.xml", options);
        if (!result.ok()) ++query_errors;
      }
    });
  }
  scrubber.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(scrub_errors.load(), 0);
  EXPECT_EQ(query_errors.load(), 0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace xmlq
