#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xmlq/base/random.h"
#include "xmlq/datagen/auction_gen.h"
#include "xmlq/datagen/bib_gen.h"
#include "xmlq/xml/parser.h"
#include "xmlq/xml/serializer.h"

namespace xmlq {
namespace {

// Seed corpus: small valid documents covering the parser's surface (nesting,
// attributes, entities, comments, PIs, CDATA-ish text, prolog) plus
// generator output so real tag distributions are in the mix.
std::vector<std::string> BuildCorpus() {
  std::vector<std::string> corpus = {
      "<a/>",
      "<a b=\"c\" d=\"e\"/>",
      "<a><b>text</b><c/><b>more</b></a>",
      "<?xml version=\"1.0\"?><root attr=\"v\">x</root>",
      "<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x41;</a>",
      "<a><!-- comment --><b/><?pi body?></a>",
      "<r><x y=\"1\">t1</x><x y=\"2\">t2</x><x y=\"3\">t3</x></r>",
      "<deep><deep><deep><deep><deep>v</deep></deep></deep></deep></deep>",
      "<mixed>text<inline/>tail<inline2>i</inline2>end</mixed>",
      "<ns:a xmlns:ns=\"urn:x\"><ns:b/></ns:a>",
  };
  {
    datagen::BibOptions options;
    options.num_books = 3;
    auto doc = datagen::GenerateBibliography(options);
    corpus.push_back(xml::Serialize(*doc, doc->root(), {}));
  }
  {
    datagen::AuctionOptions options;
    options.scale = 0.002;
    auto doc = datagen::GenerateAuctionSite(options);
    std::string text = xml::Serialize(*doc, doc->root(), {});
    corpus.push_back(text.substr(0, 2000));  // truncated: already hostile
    corpus.push_back(std::move(text));
  }
  return corpus;
}

// One random structure-unaware mutation, in the spirit of a byte-level
// fuzzer: bit flips, truncations, insertions, deletions and cross-document
// splices.
void Mutate(Rng& rng, const std::vector<std::string>& corpus,
            std::string* input) {
  if (input->empty()) {
    *input = corpus[rng.Below(corpus.size())];
    if (input->empty()) return;
  }
  switch (rng.Below(6)) {
    case 0: {  // flip one bit
      const size_t pos = rng.Below(input->size());
      (*input)[pos] = static_cast<char>((*input)[pos] ^ (1 << rng.Below(8)));
      break;
    }
    case 1:  // truncate
      input->resize(rng.Below(input->size()));
      break;
    case 2: {  // overwrite with a random interesting byte
      static constexpr char kBytes[] = {'<', '>', '&', ';', '"', '\'', '/',
                                        '=', '\0', '\n', ' ', '!', '-', '?'};
      (*input)[rng.Below(input->size())] = kBytes[rng.Below(sizeof(kBytes))];
      break;
    }
    case 3: {  // delete a span
      const size_t begin = rng.Below(input->size());
      const size_t len = 1 + rng.Below(16);
      input->erase(begin, len);
      break;
    }
    case 4: {  // insert a snippet from another corpus entry
      const std::string& donor = corpus[rng.Below(corpus.size())];
      if (donor.empty()) break;
      const size_t begin = rng.Below(donor.size());
      const size_t len = 1 + rng.Below(32);
      input->insert(rng.Below(input->size() + 1),
                    donor.substr(begin, len));
      break;
    }
    default: {  // duplicate a span of this entry (nesting amplification)
      const size_t begin = rng.Below(input->size());
      const size_t len = 1 + rng.Below(32);
      const std::string span = input->substr(begin, len);
      input->insert(rng.Below(input->size() + 1), span);
      break;
    }
  }
}

// Drains the pull parser over `input`, touching every event field so
// dangling string_views would be caught (especially under ASan). The event
// cap bounds runaway loops; hitting it is itself a failure.
void DrainParser(const std::string& input, const xml::ParseOptions& options) {
  xml::StreamParser parser(input, options);
  size_t checksum = 0;
  for (size_t events = 0;; ++events) {
    ASSERT_LT(events, 10u * 1024 * 1024) << "parser failed to terminate";
    auto event = parser.Next();
    if (!event.ok()) {
      EXPECT_FALSE(event.status().message().empty());
      return;
    }
    checksum += event->name.size() + event->text.size();
    if (event->kind == xml::ParseEvent::Kind::kStartElement) {
      for (const auto& attr : parser.attributes()) {
        checksum += attr.name.size() + attr.value.size();
      }
    }
    if (event->kind == xml::ParseEvent::Kind::kEndDocument) break;
  }
  (void)checksum;
}

TEST(ParserFuzzTest, MutatedInputsNeverCrash) {
  const std::vector<std::string> corpus = BuildCorpus();
  Rng rng(20260805);
  xml::ParseOptions options;
  // Tight limits so hostile growth trips cleanly instead of consuming the
  // test's time budget.
  options.max_depth = 4096;
  options.max_attributes = 256;
  options.max_entity_expansions = 1 << 16;
  options.max_input_bytes = 1 << 22;
  options.keep_comments = true;
  options.keep_processing_instructions = true;

  constexpr int kIterations = 10000;
  for (int i = 0; i < kIterations; ++i) {
    std::string input = corpus[rng.Below(corpus.size())];
    const int mutations = 1 + static_cast<int>(rng.Below(4));
    for (int m = 0; m < mutations; ++m) Mutate(rng, corpus, &input);

    DrainParser(input, options);
    if (HasFatalFailure()) FAIL() << "iteration " << i;

    // The DOM builder path must agree: clean value or clean error.
    auto doc = xml::ParseDocument(input, options);
    if (doc.ok()) {
      // A successfully parsed mutant must serialize without crashing.
      const std::string out = xml::Serialize(*doc, doc->root(), {});
      EXPECT_TRUE(doc->IsPreorder());
      (void)out;
    } else {
      EXPECT_FALSE(doc.status().message().empty());
    }
  }
}

TEST(ParserFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(42);
  xml::ParseOptions options;
  options.max_depth = 4096;
  for (int i = 0; i < 2000; ++i) {
    std::string input;
    const size_t len = rng.Below(512);
    input.reserve(len);
    for (size_t b = 0; b < len; ++b) {
      input.push_back(static_cast<char>(rng.Below(256)));
    }
    DrainParser(input, options);
    if (HasFatalFailure()) FAIL() << "iteration " << i;
    (void)xml::ParseDocument(input, options);
  }
}

}  // namespace
}  // namespace xmlq
