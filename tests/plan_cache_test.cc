// Plan-cache subsystem suite (DESIGN.md §11): query normalization and
// fingerprinting, the transparent cache inside Database::Query, bind-slot
// round-trips against an uncached differential oracle, prepared statements,
// generation invalidation, memory-budget eviction, feedback-driven adaptive
// re-planning, fault injection at the insert site, and a multi-thread
// hit/miss/invalidate stress (CI re-runs this file under ASan and TSan).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "xmlq/api/database.h"
#include "xmlq/base/fault_injector.h"
#include "xmlq/cache/normalize.h"
#include "xmlq/cache/plan_cache.h"
#include "xmlq/datagen/auction_gen.h"
#include "xmlq/datagen/bib_gen.h"

namespace xmlq {
namespace {

constexpr std::string_view kBib =
    "<bib>"
    "<book year=\"1994\"><title>TCP/IP Illustrated</title>"
    "<author><last>Stevens</last><first>W.</first></author>"
    "<publisher>Addison-Wesley</publisher><price>65.95</price></book>"
    "<book year=\"2000\"><title>Data on the Web</title>"
    "<author><last>Abiteboul</last><first>Serge</first></author>"
    "<author><last>Buneman</last><first>Peter</first></author>"
    "<publisher>Morgan Kaufmann</publisher><price>39.95</price></book>"
    "</bib>";

// ---------------------------------------------------------------------------
// Normalization + fingerprinting
// ---------------------------------------------------------------------------

TEST(NormalizeTest, WhitespaceInsensitiveFingerprint) {
  const auto a = cache::NormalizeQuery("//book[ price < 50 ]/title");
  const auto b = cache::NormalizeQuery("//book[price<50]/title");
  const auto c = cache::NormalizeQuery("  //book  [price <  50] / title ");
  EXPECT_TRUE(a.parameterized);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.fingerprint, c.fingerprint);
  EXPECT_EQ(a.compile_text, b.compile_text);
}

TEST(NormalizeTest, ComparisonLiteralsShareOneFingerprint) {
  const auto a = cache::NormalizeQuery("//book[price < 50]/title");
  const auto b = cache::NormalizeQuery("//book[price < 90]/title");
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  ASSERT_EQ(a.values.size(), 1u);
  ASSERT_EQ(b.values.size(), 1u);
  EXPECT_EQ(a.values[0], "50");
  EXPECT_EQ(b.values[0], "90");
  ASSERT_EQ(a.slots.size(), 1u);
  EXPECT_TRUE(a.slots[0].numeric);
}

TEST(NormalizeTest, StringAndNumberSlotsAreDistinct) {
  // '1' compares as a string, 1 as a number — different semantics, so the
  // fingerprints must not collide ("?s" vs "?n" placeholders).
  const auto str = cache::NormalizeQuery("//item[quantity = '1']");
  const auto num = cache::NormalizeQuery("//item[quantity = 1]");
  EXPECT_NE(str.fingerprint, num.fingerprint);
  ASSERT_EQ(str.slots.size(), 1u);
  ASSERT_EQ(num.slots.size(), 1u);
  EXPECT_FALSE(str.slots[0].numeric);
  EXPECT_TRUE(num.slots[0].numeric);
}

TEST(NormalizeTest, PredicateOrderCanonicalized) {
  const auto a = cache::NormalizeQuery("//person[address][phone]/name");
  const auto b = cache::NormalizeQuery("//person[phone][address]/name");
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(NormalizeTest, PredicateOrderKeepsValuesWithTheirPredicate) {
  // Sorting [..][..] groups must carry each group's lifted literal along:
  // both orderings bind "Cash" to the payment predicate.
  const auto a =
      cache::NormalizeQuery("//item[payment = 'Cash'][mailbox]/name");
  const auto b =
      cache::NormalizeQuery("//item[mailbox][payment = 'Cash']/name");
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  ASSERT_EQ(a.values, b.values);
}

TEST(NormalizeTest, DocArgumentIsNotLifted) {
  // doc("...") names a catalog entry, not a comparison literal; lifting it
  // would make unrelated documents share a plan.
  const auto n = cache::NormalizeQuery(
      "for $b in doc(\"bib.xml\")/bib/book where $b/price > 50 "
      "return $b/title");
  ASSERT_EQ(n.values.size(), 1u);
  EXPECT_EQ(n.values[0], "50");
  EXPECT_NE(n.fingerprint.find("doc"), std::string::npos);
}

TEST(NormalizeTest, ConstructorsFallBackToRawMode) {
  // Element constructors (direct and enclosed) are beyond the normalizer's
  // token model — the query still caches, keyed on its exact text.
  const auto n = cache::NormalizeQuery(
      "<out>{for $p in doc(\"a.xml\")//person return <p>{$p/name}</p>}</out>");
  EXPECT_FALSE(n.parameterized);
  EXPECT_TRUE(n.slots.empty());
}

TEST(NormalizeTest, RawModeStillFingerprintsDistinctly) {
  const auto a = cache::NormalizeQuery("<a>{1}</a>");
  const auto b = cache::NormalizeQuery("<b>{1}</b>");
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(NormalizeTest, RawFingerprintsDoNotCollideWithTemplates) {
  // A raw query whose *text* is literally a placeholder render ('?' always
  // forces raw mode) must live in its own key namespace: resolving it to
  // the cached template would bind a slotted plan with zero values.
  const auto param = cache::NormalizeQuery("//book[price < 50]/title");
  ASSERT_TRUE(param.parameterized);
  const auto raw = cache::NormalizeQuery(param.fingerprint);
  EXPECT_FALSE(raw.parameterized);
  EXPECT_NE(raw.fingerprint, param.fingerprint);
}

TEST(NormalizeTest, SentinelLookalikeLiteralsDegradeToRawMode) {
  // A literal inside the reserved sentinel space must not be parameterized:
  // BindPlan substitution could rewrite it as if it were a slot.
  const auto lifted =
      cache::NormalizeQuery("//book[price = 9007100000000001]");
  EXPECT_FALSE(lifted.parameterized);
  const auto unlifted = cache::NormalizeQuery(
      "//book[f(9007100000000001)][title = 'x']");
  EXPECT_FALSE(unlifted.parameterized);
  const auto ctrl =
      cache::NormalizeQuery("//book[title = \"a\x01z\"]");
  EXPECT_FALSE(ctrl.parameterized);
  // A plain large number outside the reserved range still parameterizes.
  const auto plain = cache::NormalizeQuery("//book[price < 9999999999]");
  EXPECT_TRUE(plain.parameterized);
}

TEST(NormalizeTest, MinusStaysSeparatedFromNames) {
  // "-" is a name character in XML; re-rendering must not fuse "$a - $b"
  // into a single token (or split "foo-bar" apart).
  const auto spaced = cache::NormalizeQuery("//t0[t1 - 1 < 5]");
  const auto fused = cache::NormalizeQuery("//t0[t1-1 < 5]");
  // "t1 - 1" (binary minus) and "t1-1" (one name token) are different
  // queries; their fingerprints must differ.
  EXPECT_NE(spaced.fingerprint, fused.fingerprint);
}

// ---------------------------------------------------------------------------
// Transparent caching in Database::Query / QueryPath
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, RepeatQueryHitsCache) {
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  auto first = db.QueryPath("//book[price < 50]/title");
  ASSERT_TRUE(first.ok());
  auto second = db.QueryPath("//book[price < 50]/title");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(api::Database::ToXml(*first), api::Database::ToXml(*second));
  const cache::CacheStats stats = db.plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.resident_bytes, 0u);
  // Provenance is surfaced on the result itself.
  EXPECT_EQ(first->plan_provenance.substr(0, 5), "fresh");
  EXPECT_EQ(second->plan_provenance.substr(0, 6), "cached");
}

TEST(PlanCacheTest, DifferentLiteralIsStillAHit) {
  // The whole point of bind-slot lifting: a repeat of the same shape with a
  // new constant skips parse + optimize entirely.
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  ASSERT_TRUE(db.QueryPath("//book[@year = '1994']/title").ok());
  auto hit = db.QueryPath("//book[@year = '2000']/title");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(api::Database::ToXml(*hit), "<title>Data on the Web</title>");
  const cache::CacheStats stats = db.plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  // The substituted bind is visible in the provenance line.
  EXPECT_NE(hit->plan_provenance.find("binds [2000]"), std::string::npos)
      << hit->plan_provenance;
}

TEST(PlanCacheTest, RawQueryMatchingTemplateFingerprintIsNotAHit) {
  // Regression: wire-supplied text equal to a cached template's fingerprint
  // must not resolve to the template (binding it with zero values read out
  // of bounds). It fails to compile like any other garbage, crash-free.
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  ASSERT_TRUE(db.QueryPath("//book[price < 50]/title").ok());
  const auto param = cache::NormalizeQuery("//book[price < 50]/title");
  ASSERT_TRUE(param.parameterized);
  auto imposter = db.QueryPath(param.fingerprint);
  EXPECT_FALSE(imposter.ok());  // "?n" is not valid XPath
  EXPECT_EQ(db.plan_cache_stats().hits, 0u);
}

TEST(PlanCacheTest, OptOutBypassesCache) {
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  api::QueryOptions no_cache;
  no_cache.use_plan_cache = false;
  ASSERT_TRUE(db.QueryPath("//book/title", {}, no_cache).ok());
  ASSERT_TRUE(db.QueryPath("//book/title", {}, no_cache).ok());
  const cache::CacheStats stats = db.plan_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.bypass, 2u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(PlanCacheTest, DisabledCacheViaConfig) {
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  cache::CacheConfig config;
  config.enabled = false;
  db.SetPlanCache(config);
  ASSERT_TRUE(db.QueryPath("//book/title").ok());
  ASSERT_TRUE(db.QueryPath("//book/title").ok());
  const cache::CacheStats stats = db.plan_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.bypass, 2u);
}

TEST(PlanCacheTest, ForcedStrategyKeyedSeparatelyFromAuto) {
  // An auto-optimized plan and a forced-naive plan are different compiled
  // artifacts; the options class in the key must keep them apart.
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  ASSERT_TRUE(db.QueryPath("//book[author]/title").ok());
  api::QueryOptions forced;
  forced.auto_optimize = false;
  forced.strategy = exec::PatternStrategy::kNaive;
  ASSERT_TRUE(db.QueryPath("//book[author]/title", {}, forced).ok());
  const cache::CacheStats stats = db.plan_cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(PlanCacheTest, ExplainReportsProvenance) {
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  auto cold = db.Explain("//book[price < 50]/title");
  ASSERT_TRUE(cold.ok());
  EXPECT_NE(cold->find("-- plan: fresh (not cached)"), std::string::npos)
      << *cold;
  ASSERT_TRUE(db.Query("//book[price < 50]/title").ok());
  auto warm = db.Explain("//book[price < 90]/title");  // same fingerprint
  ASSERT_TRUE(warm.ok());
  EXPECT_NE(warm->find("-- plan: cached (gen "), std::string::npos) << *warm;
  EXPECT_NE(warm->find("binds [90]"), std::string::npos) << *warm;
  auto analyzed = db.ExplainAnalyze("//book[price < 70]/title");
  ASSERT_TRUE(analyzed.ok());
  EXPECT_NE(analyzed->find("-- plan: cached (gen "), std::string::npos)
      << *analyzed;
}

// ---------------------------------------------------------------------------
// Differential oracle: cached + bind-substituted == uncached literal runs
// ---------------------------------------------------------------------------

class CacheDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new api::Database;
    datagen::AuctionOptions options;
    options.scale = 0.06;
    options.seed = 11;
    ASSERT_TRUE(db_->RegisterDocument("auction.xml",
                                      datagen::GenerateAuctionSite(options))
                    .ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static api::Database* db_;
};

api::Database* CacheDifferentialTest::db_ = nullptr;

/// Runs `query` uncached (fresh literal compile), then twice through the
/// cache (miss + bound hit), and requires byte-identical serialization.
void ExpectCacheTransparent(api::Database& db, const std::string& query,
                            bool as_path) {
  api::QueryOptions uncached;
  uncached.use_plan_cache = false;
  auto reference = as_path ? db.QueryPath(query, {}, uncached)
                           : db.Query(query, uncached);
  ASSERT_TRUE(reference.ok()) << query << ": "
                              << reference.status().ToString();
  const std::string expected = api::Database::ToXml(*reference);
  for (int round = 0; round < 2; ++round) {
    auto cached = as_path ? db.QueryPath(query) : db.Query(query);
    ASSERT_TRUE(cached.ok()) << query << ": " << cached.status().ToString();
    ASSERT_EQ(api::Database::ToXml(*cached), expected)
        << query << " round " << round;
  }
}

TEST_F(CacheDifferentialTest, XPathSuiteIsCacheTransparent) {
  // The differential_test.cc XPath workload: every pattern shape the τ
  // engines support, now asserting cache hits change nothing.
  const char* paths[] = {
      "/site/people/person",
      "/site/people/person/name",
      "//person",
      "//person/name",
      "//person[address]/name",
      "//person[address][phone]/name",
      "//person[phone]/emailaddress",
      "//person/profile/education",
      "//person[profile/education]/name",
      "//person/profile[@income]",
      "//person[@id = 'person3']/name",
      "//item",
      "//item/location",
      "//item[payment = 'Cash']/location",
      "//item[quantity = '1']/name",
      "//item/mailbox/mail",
      "//item/mailbox/mail/text",
      "//item[mailbox/mail]/name",
      "//open_auction/bidder",
      "//open_auction[bidder]/current",
      "//closed_auction/price",
      "//closed_auction[price]/itemref",
      "//category/name",
      "//category/description/text",
      "/site/regions/*/item/name",
      "//regions//item[location = 'Dallas']",
      "//*[@id]/name",
      "//person/address/city",
      "//mail[date]/from",
      "//profile[interest]/gender",
  };
  for (const char* path : paths) {
    ExpectCacheTransparent(*db_, path, /*as_path=*/true);
  }
}

TEST_F(CacheDifferentialTest, XQuerySuiteIsCacheTransparent) {
  const char* queries[] = {
      "for $p in doc(\"auction.xml\")//person[address] return $p/name",
      "for $p in doc(\"auction.xml\")//person "
      "where count($p/phone) > 0 return $p/emailaddress",
      "count(doc(\"auction.xml\")//item)",
      "for $i in doc(\"auction.xml\")//item "
      "where $i/payment = 'Cash' return $i/location",
      "for $a in doc(\"auction.xml\")//open_auction "
      "where count($a/bidder) > 1 return $a/current",
      "avg(doc(\"auction.xml\")//closed_auction/price)",
      "for $c in doc(\"auction.xml\")//category "
      "order by $c/name return $c/name",
      "<out>{for $p in doc(\"auction.xml\")//person[profile] "
      "return <p>{$p/name}</p>}</out>",
      "for $m in doc(\"auction.xml\")//mailbox/mail "
      "where $m/date return $m/from",
      "sum(doc(\"auction.xml\")//closed_auction/quantity)",
  };
  for (const char* query : queries) {
    ExpectCacheTransparent(*db_, query, /*as_path=*/false);
  }
}

TEST_F(CacheDifferentialTest, BindSubstitutionMatchesLiteralRecompile) {
  // Prime one template, then sweep sibling literals through it: each bound
  // execution must equal a from-scratch uncached compile of that literal.
  ASSERT_TRUE(db_->QueryPath("//item[payment = 'Cash']/location").ok());
  api::QueryOptions uncached;
  uncached.use_plan_cache = false;
  for (const char* payment :
       {"Cash", "Creditcard", "Personal Check", "Money order"}) {
    const std::string query =
        std::string("//item[payment = '") + payment + "']/location";
    auto bound = db_->QueryPath(query);
    ASSERT_TRUE(bound.ok()) << query;
    auto fresh = db_->QueryPath(query, {}, uncached);
    ASSERT_TRUE(fresh.ok()) << query;
    EXPECT_EQ(api::Database::ToXml(*bound), api::Database::ToXml(*fresh))
        << query;
  }
}

// ---------------------------------------------------------------------------
// Prepared statements
// ---------------------------------------------------------------------------

TEST(PreparedQueryTest, DefaultsAndRebinding) {
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  auto prepared = db.Prepare("//book[@year = '1994']/title");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ASSERT_EQ(prepared->slot_count(), 1u);
  EXPECT_FALSE(prepared->slot_numeric(0));
  EXPECT_EQ(prepared->default_binds()[0], "1994");

  auto defaults = prepared->Execute();
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(api::Database::ToXml(*defaults),
            "<title>TCP/IP Illustrated</title>");
  auto rebound = prepared->Execute({"2000"});
  ASSERT_TRUE(rebound.ok());
  EXPECT_EQ(api::Database::ToXml(*rebound), "<title>Data on the Web</title>");
  auto nobody = prepared->Execute({"1950"});
  ASSERT_TRUE(nobody.ok());
  EXPECT_TRUE(nobody->value.empty());

  // One Prepare + three Executes = one compile, two hits.
  const cache::CacheStats stats = db.plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
}

TEST(PreparedQueryTest, NumericSlotValidation) {
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  auto prepared = db.Prepare("//book[price < 50]/title");
  ASSERT_TRUE(prepared.ok());
  ASSERT_EQ(prepared->slot_count(), 1u);
  EXPECT_TRUE(prepared->slot_numeric(0));
  auto ok = prepared->Execute({"90"});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->value.size(), 2u);
  // Non-numeric text into a numeric slot would change the comparison's
  // semantics — rejected, not coerced.
  auto bad = prepared->Execute({"cheap"});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  auto wrong_arity = prepared->Execute({"50", "90"});
  EXPECT_FALSE(wrong_arity.ok());
  EXPECT_EQ(wrong_arity.status().code(), StatusCode::kInvalidArgument);
}

TEST(PreparedQueryTest, MalformedNumericBindsRejected) {
  // The bound plan must be byte-for-byte what compiling the literal would
  // have produced; "1.2.3" would silently diverge into strtod's prefix
  // parse (1.2), so anything outside the strict number grammar is rejected.
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  auto prepared = db.Prepare("//book[price < 50]/title");
  ASSERT_TRUE(prepared.ok());
  for (const char* bad : {"1.2.3", "1.", ".5", "1..2", "."}) {
    auto result = prepared->Execute({bad});
    EXPECT_FALSE(result.ok()) << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  auto ok = prepared->Execute({"39.95"});
  EXPECT_TRUE(ok.ok());
}

TEST(PreparedQueryTest, SentinelSpaceBindsRejected) {
  // A bind value inside the reserved sentinel encoding could be mistaken
  // for another slot's sentinel during substitution.
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  auto numeric = db.Prepare("//book[price < 50]/title");
  ASSERT_TRUE(numeric.ok());
  EXPECT_FALSE(numeric->Execute({"9007100000000001"}).ok());
  EXPECT_TRUE(numeric->Execute({"9999999999"}).ok());  // outside the range
  auto str = db.Prepare("//book[@year = '1994']/title");
  ASSERT_TRUE(str.ok());
  EXPECT_FALSE(str->Execute({std::string("\x01") + "0" + "\x01"}).ok());
}

TEST(PreparedQueryTest, ExplicitBindsHonoredWhenCacheBypassed) {
  // Regression: with the cache disabled, Execute(binds) used to fall back
  // to re-compiling the original text — silently running the literals the
  // query was *prepared* with instead of this call's binds.
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  cache::CacheConfig config;
  config.enabled = false;
  db.SetPlanCache(config);
  auto prepared = db.Prepare("//book[@year = '1994']/title");
  ASSERT_TRUE(prepared.ok());
  auto rebound = prepared->Execute({"2000"});
  ASSERT_TRUE(rebound.ok());
  EXPECT_EQ(api::Database::ToXml(*rebound), "<title>Data on the Web</title>");
  auto defaults = prepared->Execute();
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(api::Database::ToXml(*defaults),
            "<title>TCP/IP Illustrated</title>");
}

TEST(PreparedQueryTest, InvalidQueryFailsAtPrepareTime) {
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  auto prepared = db.Prepare("//book[price <");
  EXPECT_FALSE(prepared.ok());
}

TEST(PreparedQueryTest, SurvivesCatalogSwap) {
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  auto prepared = db.Prepare("//book/title");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->Execute().ok());
  // Swap the document out from under the statement: the cached plan is
  // generation-stale, so the next Execute re-compiles against the new
  // catalog instead of serving the old plan.
  ASSERT_TRUE(db.LoadDocument(
                    "bib.xml",
                    "<bib><book year=\"2024\"><title>New Edition</title>"
                    "<price>10</price></book></bib>")
                  .ok());
  auto after = prepared->Execute();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(api::Database::ToXml(*after), "<title>New Edition</title>");
}

// ---------------------------------------------------------------------------
// Invalidation + eviction
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, CatalogSwapInvalidates) {
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  ASSERT_TRUE(db.QueryPath("//book/title").ok());
  EXPECT_EQ(db.plan_cache_stats().entries, 1u);
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());  // replace → new gen
  const cache::CacheStats swept = db.plan_cache_stats();
  EXPECT_EQ(swept.entries, 0u);
  EXPECT_EQ(swept.invalidations, 1u);
  EXPECT_EQ(swept.resident_bytes, 0u);
  // The next run re-compiles (miss), and correctness holds.
  auto again = db.QueryPath("//book/title");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(db.plan_cache_stats().misses, 2u);
}

TEST(PlanCacheTest, RemoveInvalidates) {
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("a.xml", kBib).ok());
  ASSERT_TRUE(db.LoadDocument("b.xml", kBib).ok());
  ASSERT_TRUE(db.QueryPath("//book/title", "b.xml").ok());
  ASSERT_EQ(db.plan_cache_stats().entries, 1u);
  ASSERT_TRUE(db.Remove("b.xml").ok());
  const cache::CacheStats stats = db.plan_cache_stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_GE(stats.invalidations, 1u);
  // Querying the removed document now fails cleanly (no stale plan serves).
  EXPECT_FALSE(db.QueryPath("//book/title", "b.xml").ok());
}

TEST(PlanCacheTest, FailedRemoveDoesNotInvalidate) {
  // Removing a document that doesn't exist must not bump the catalog
  // generation: a failed remove changing nothing must not wipe every
  // cached plan.
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("a.xml", kBib).ok());
  ASSERT_TRUE(db.QueryPath("//book/title", "a.xml").ok());
  ASSERT_EQ(db.plan_cache_stats().entries, 1u);
  EXPECT_EQ(db.Remove("nope.xml").code(), StatusCode::kNotFound);
  const cache::CacheStats stats = db.plan_cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.invalidations, 0u);
  auto again = db.QueryPath("//book/title", "a.xml");
  ASSERT_TRUE(again.ok());
  EXPECT_GE(db.plan_cache_stats().hits, 1u);
}

TEST(PlanCacheTest, EvictionUnderMemoryBudget) {
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  cache::CacheConfig config;
  config.shard_count = 1;          // one LRU so the budget math is exact
  config.memory_budget_bytes = 6 << 10;  // a few plans' worth
  db.SetPlanCache(config);
  // Distinct fingerprints (different tag names, not different literals), so
  // each one needs its own entry.
  const char* tags[] = {"title",  "author", "price", "publisher", "last",
                        "first",  "book",   "year",  "bib",       "editor",
                        "review", "isbn"};
  for (const char* tag : tags) {
    ASSERT_TRUE(db.QueryPath(std::string("//book/") + tag).ok());
  }
  const cache::CacheStats stats = db.plan_cache_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.resident_bytes, config.memory_budget_bytes);
  EXPECT_LT(stats.entries, sizeof(tags) / sizeof(tags[0]));
  // Evicted or not, every shape still answers correctly.
  auto result = db.QueryPath("//book/title");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->value.size(), 2u);
}

TEST(PlanCacheTest, OversizedEntryIsNotAdmitted) {
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  cache::CacheConfig config;
  config.shard_count = 1;
  config.memory_budget_bytes = 64;  // smaller than any plan footprint
  db.SetPlanCache(config);
  ASSERT_TRUE(db.QueryPath("//book/title").ok());
  EXPECT_EQ(db.plan_cache_stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// Feedback-driven adaptation
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, AdaptiveReplanOnHighQError) {
  api::Database db;
  datagen::AuctionOptions doc_options;
  doc_options.scale = 0.05;
  doc_options.seed = 7;
  ASSERT_TRUE(db.RegisterDocument("auction.xml",
                                  datagen::GenerateAuctionSite(doc_options))
                  .ok());
  cache::CacheConfig config;
  config.sample_period = 1;       // profile every execution
  config.min_samples = 1;         // decide on the first sample
  config.qerror_threshold = 0.5;  // q-error is >= 1 → always "bad"
  config.replan_cooldown_hits = 0;
  db.SetPlanCache(config);

  // Every execution reports a q-error above the threshold, so the entry
  // must walk the strategy ranking deterministically, then pin.
  const std::string query = "//person[address][phone]/name";
  std::string reference;
  for (int i = 0; i < 12; ++i) {
    auto result = db.QueryPath(query);
    ASSERT_TRUE(result.ok()) << i;
    const std::string got = api::Database::ToXml(*result);
    if (i == 0) {
      reference = got;
    } else {
      ASSERT_EQ(got, reference) << "re-plan changed results at run " << i;
    }
  }
  const cache::CacheStats stats = db.plan_cache_stats();
  EXPECT_GE(stats.replans, 1u);
  EXPECT_EQ(stats.misses, 1u);  // adaptation happens in place, no re-compile
  EXPECT_GE(stats.hits, 11u);
}

TEST(PlanCacheTest, CooldownDampsReplanFlapping) {
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  cache::CacheConfig config;
  config.sample_period = 1;
  config.min_samples = 1;
  config.qerror_threshold = 0.5;
  config.replan_cooldown_hits = 1000;  // one switch, then hold
  db.SetPlanCache(config);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.QueryPath("//book[author/last = 'Stevens']/title").ok());
  }
  EXPECT_LE(db.plan_cache_stats().replans, 1u);
}

TEST(PlanCacheTest, DegradedRunsDoNotPolluteWorkAccumulators) {
  // Regression: the unsampled degraded path commits work=0; folding that
  // into the mean-work accumulators dragged the faulting engine's mean
  // toward 0, so the terminal pinning step could pin the very strategy
  // that was degrading.
  cache::CacheConfig config;
  config.min_samples = 1;
  config.qerror_threshold = 0.5;
  config.replan_cooldown_hits = 0;
  cache::PlanCache pc(config);
  cache::CachedPlan entry;
  entry.adaptive = true;
  entry.strategy.store(exec::PatternStrategy::kTwigStack);
  entry.feedback.ranking = {{exec::PatternStrategy::kTwigStack, 1.0},
                            {exec::PatternStrategy::kNok, 2.0}};
  // TwigStack faults (degraded, no profile, work=0) → re-plan onto NoK.
  EXPECT_TRUE(pc.CommitFeedback(entry, /*sampled=*/false, /*q_error=*/0,
                                /*work=*/0, exec::PatternStrategy::kTwigStack,
                                /*degraded=*/true));
  EXPECT_EQ(entry.strategy.load(), exec::PatternStrategy::kNok);
  // NoK runs clean but over the q-error threshold; with every ranked
  // strategy tried, the entry pins the least mean work. TwigStack's only
  // observation was the degraded zero-work ghost — it must not win.
  EXPECT_FALSE(pc.CommitFeedback(entry, /*sampled=*/true, /*q_error=*/100.0,
                                 /*work=*/500.0, exec::PatternStrategy::kNok,
                                 /*degraded=*/false));
  EXPECT_TRUE(entry.feedback.pinned);
  EXPECT_EQ(entry.strategy.load(), exec::PatternStrategy::kNok);
}

TEST(PlanCacheTest, ForcedStrategyNeverAdapts) {
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  cache::CacheConfig config;
  config.sample_period = 1;
  config.min_samples = 1;
  config.qerror_threshold = 0.5;
  config.replan_cooldown_hits = 0;
  db.SetPlanCache(config);
  api::QueryOptions forced;
  forced.auto_optimize = false;
  forced.strategy = exec::PatternStrategy::kNaive;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(db.QueryPath("//book[author]/title", {}, forced).ok());
  }
  EXPECT_EQ(db.plan_cache_stats().replans, 0u);
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, InsertFaultDegradesToUncached) {
  FaultInjector::Instance().Reset();
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  FaultInjector::Instance().Arm("cache.plan.insert");
  auto first = db.QueryPath("//book/title");
  ASSERT_TRUE(first.ok());  // the query itself must not fail
  EXPECT_EQ(first->value.size(), 2u);
  auto second = db.QueryPath("//book/title");
  ASSERT_TRUE(second.ok());
  FaultInjector::Instance().Reset();
  const cache::CacheStats faulted = db.plan_cache_stats();
  EXPECT_EQ(faulted.entries, 0u);
  EXPECT_EQ(faulted.insert_faults, 2u);
  EXPECT_EQ(faulted.misses, 2u);
  // With the fault cleared, caching resumes.
  ASSERT_TRUE(db.QueryPath("//book/title").ok());
  ASSERT_TRUE(db.QueryPath("//book/title").ok());
  const cache::CacheStats healed = db.plan_cache_stats();
  EXPECT_EQ(healed.entries, 1u);
  EXPECT_GE(healed.hits, 1u);
}

// ---------------------------------------------------------------------------
// Concurrency stress (CI runs this under TSan via `-L cache`)
// ---------------------------------------------------------------------------

TEST(PlanCacheStressTest, ConcurrentHitsMissesAndInvalidations) {
  api::Database db;
  ASSERT_TRUE(db.LoadDocument("bib.xml", kBib).ok());
  cache::CacheConfig config;
  config.shard_count = 4;
  config.memory_budget_bytes = 32 << 10;  // small: force evictions too
  config.sample_period = 2;               // frequent feedback commits
  config.min_samples = 2;
  config.qerror_threshold = 0.5;
  config.replan_cooldown_hits = 4;
  db.SetPlanCache(config);

  constexpr int kThreads = 8;
  constexpr int kIters = 120;
  std::atomic<int> failures{0};
  std::atomic<uint64_t> queries{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &failures, &queries, t] {
      const std::string year = "'" + std::to_string(1990 + t) + "'";
      for (int i = 0; i < kIters; ++i) {
        switch ((t + i) % 4) {
          case 0: {  // shared hot query: mostly hits
            ++queries;
            if (!db.QueryPath("//book[author]/title").ok()) ++failures;
            break;
          }
          case 1: {  // per-thread literal: bind-slot hits on one template
            ++queries;
            if (!db.QueryPath("//book[@year = " + year + "]/title").ok()) {
              ++failures;
            }
            break;
          }
          case 2: {  // per-thread+iteration shape: misses + evictions
            ++queries;
            if (!db.QueryPath("//book/author[last][first]").ok()) ++failures;
            break;
          }
          case 3: {
            if (t == 0 && i % 16 == 3) {
              // Catalog swap under load: every cached plan goes stale.
              if (!db.LoadDocument("bib.xml", std::string(kBib)).ok()) {
                ++failures;
              }
            } else {
              ++queries;
              if (!db.Query("count(//book)").ok()) ++failures;
            }
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const cache::CacheStats stats = db.plan_cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.invalidations, 0u);
  // Counter sanity: every lookup was a hit, miss, or bypass.
  EXPECT_EQ(stats.hits + stats.misses + stats.bypass, queries.load());
}

}  // namespace
}  // namespace xmlq
