// Metric-based complexity regressions over the OpStats counters: instead of
// timing (noisy), these tests pin the *algorithmic* behavior of each engine —
// TwigStack and PathStack consume each stream element exactly once (visits
// linear in stream size), NoK's single scan never revisits a subtree, and
// structural-join probe counts match the region index exactly. A final group
// checks the executor-level profile: determinism across runs, stack-push/pop
// balance, and the zero-cost disabled path.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "xmlq/api/database.h"
#include "xmlq/datagen/auction_gen.h"
#include "xmlq/datagen/random_tree.h"
#include "xmlq/exec/nok_matcher.h"
#include "xmlq/exec/path_stack.h"
#include "xmlq/exec/structural_join.h"
#include "xmlq/exec/twig_stack.h"
#include "xmlq/xpath/compiler.h"
#include "xmlq/xpath/parser.h"

namespace xmlq::exec {
namespace {

using algebra::PatternGraph;
using algebra::VertexId;

struct TestDoc {
  std::unique_ptr<xml::Document> dom;
  std::unique_ptr<storage::SuccinctDocument> succinct;
  std::unique_ptr<storage::RegionIndex> regions;
  IndexedDocument view;

  explicit TestDoc(std::unique_ptr<xml::Document> d) : dom(std::move(d)) {
    succinct = std::make_unique<storage::SuccinctDocument>(
        storage::SuccinctDocument::Build(*dom));
    regions = std::make_unique<storage::RegionIndex>(*dom);
    view = IndexedDocument{dom.get(), succinct.get(), regions.get(), nullptr};
  }
};

TestDoc AuctionDoc(double scale) {
  datagen::AuctionOptions options;
  options.scale = scale;
  options.seed = 19;
  return TestDoc(datagen::GenerateAuctionSite(options));
}

TestDoc RandomDoc(size_t num_elements, uint64_t seed) {
  datagen::RandomTreeOptions options;
  options.num_elements = num_elements;
  options.seed = seed;
  options.tag_vocabulary = 4;
  return TestDoc(datagen::GenerateRandomTree(options));
}

PatternGraph FromXPath(std::string_view path) {
  auto ast = xpath::ParsePath(path);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  auto graph = xpath::CompileToPattern(*ast);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  return std::move(*graph);
}

/// Total input size for a stream-based engine: one region per pattern vertex
/// stream element. Only valid for predicate-free, non-wildcard patterns,
/// where BuildVertexStream returns the raw region-index tag stream (plus the
/// single document region for the pattern root).
uint64_t TotalStreamSize(const TestDoc& doc, const PatternGraph& graph) {
  uint64_t total = 0;
  for (VertexId v = 0; v < graph.VertexCount(); ++v) {
    const auto& vertex = graph.vertex(v);
    if (vertex.is_root) {
      total += 1;  // the document region
    } else {
      const xml::NameId name = doc.dom->pool().Find(vertex.label);
      total += vertex.is_attribute
                   ? doc.regions->AttributeStream(name).size()
                   : doc.regions->ElementStream(name).size();
    }
  }
  return total;
}

// --- TwigStack: visits each stream element exactly once -------------------

TEST(TwigStackComplexityTest, VisitsEqualTotalStreamSize) {
  const TestDoc doc = AuctionDoc(0.05);
  for (const char* query : {
           "//person",
           "//person/name",
           "//person[address][phone]/name",
           "//item[mailbox/mail]/name",
           "//open_auction[bidder]/current",
       }) {
    const PatternGraph graph = FromXPath(query);
    OpStats stats;
    auto result = TwigStackMatch(doc.view, graph, nullptr, &stats);
    ASSERT_TRUE(result.ok()) << query << ": " << result.status().ToString();
    // Holistic twig join: every stream element is consumed exactly once, so
    // node visits are *linear* in the input streams — the paper's O(input +
    // output) claim, pinned as an exact counter identity.
    EXPECT_EQ(stats.nodes_visited, TotalStreamSize(doc, graph)) << query;
    // Streams come straight from the region index.
    EXPECT_EQ(stats.index_probes, TotalStreamSize(doc, graph)) << query;
    // Every push is eventually popped or accounted by the final stacks.
    EXPECT_LE(stats.stack_pops, stats.stack_pushes) << query;
  }
}

TEST(TwigStackComplexityTest, VisitsScaleLinearlyWithDocumentSize) {
  const TestDoc small = AuctionDoc(0.04);
  const TestDoc large = AuctionDoc(0.16);  // 4x the entity counts
  const PatternGraph graph = FromXPath("//person[address]/name");
  OpStats small_stats, large_stats;
  ASSERT_TRUE(TwigStackMatch(small.view, graph, nullptr, &small_stats).ok());
  ASSERT_TRUE(TwigStackMatch(large.view, graph, nullptr, &large_stats).ok());
  ASSERT_GT(small_stats.nodes_visited, 0u);
  const double ratio = static_cast<double>(large_stats.nodes_visited) /
                       static_cast<double>(small_stats.nodes_visited);
  // 4x input => ~4x visits (exactly proportional to stream growth; the
  // generous band only absorbs rounding in entity counts).
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 6.0);
}

// --- PathStack: linear merge over the step streams ------------------------

TEST(PathStackComplexityTest, MergeConsumesEachStreamElementOnce) {
  const TestDoc doc = AuctionDoc(0.05);
  for (const char* query : {
           "//person/name",
           "//item/mailbox/mail/text",
           "/site/people/person",
           "//closed_auction/price",
       }) {
    const PatternGraph graph = FromXPath(query);
    OpStats stats;
    auto result = PathStackMatch(doc.view, graph, nullptr, &stats);
    ASSERT_TRUE(result.ok()) << query << ": " << result.status().ToString();
    EXPECT_EQ(stats.nodes_visited, TotalStreamSize(doc, graph)) << query;
    EXPECT_EQ(stats.index_probes, TotalStreamSize(doc, graph)) << query;
    EXPECT_LE(stats.stack_pops, stats.stack_pushes) << query;
  }
}

// --- NoK: the single scan never revisits a subtree ------------------------

TEST(NokComplexityTest, SingleScanNeverRevisitsNodes) {
  for (const uint64_t seed : {5ull, 6ull, 7ull}) {
    const TestDoc doc = RandomDoc(400, seed);
    for (const char* query : {
             "//t0[t1]",
             "//t0[t1][t2]/t3",
             "/t0/*",
             "//t2[t3]",
         }) {
      const PatternGraph graph = FromXPath(query);
      OpStats stats;
      auto result = MatchNokPattern(*doc.succinct, graph, nullptr, &stats);
      if (!result.ok()) continue;  // multi-part patterns go through hybrid
      // One Open() per reached node, never more: visits are bounded by the
      // document size regardless of pattern shape or match count.
      EXPECT_LE(stats.nodes_visited, doc.succinct->NodeCount())
          << query << " seed=" << seed;
      EXPECT_GT(stats.nodes_visited, 0u) << query << " seed=" << seed;
      // The scan's frame stack is balanced: every push has its pop (Close or
      // subtree skip).
      EXPECT_EQ(stats.stack_pushes, stats.stack_pops)
          << query << " seed=" << seed;
      EXPECT_EQ(stats.stack_pushes, stats.nodes_visited)
          << query << " seed=" << seed;
    }
  }
}

// --- Structural join: probes match the region index -----------------------

TEST(StructuralJoinComplexityTest, VertexStreamProbesMatchRegionIndex) {
  const TestDoc doc = AuctionDoc(0.05);
  const PatternGraph graph = FromXPath("//person/name");
  for (VertexId v = 0; v < graph.VertexCount(); ++v) {
    const auto& vertex = graph.vertex(v);
    if (vertex.is_root) continue;
    OpStats stats;
    auto stream = BuildVertexStream(doc.view, vertex, &stats);
    ASSERT_TRUE(stream.ok());
    const xml::NameId name = doc.dom->pool().Find(vertex.label);
    // One probe per region fetched from the per-tag stream — no hidden
    // index traffic.
    EXPECT_EQ(stats.index_probes, doc.regions->ElementStream(name).size());
    EXPECT_EQ(stats.index_probes, stream->size());
  }
}

TEST(StructuralJoinComplexityTest, MergeVisitsBothInputsOnce) {
  const TestDoc doc = AuctionDoc(0.05);
  const xml::NameId person = doc.dom->pool().Find("person");
  const xml::NameId name = doc.dom->pool().Find("name");
  std::vector<storage::Region> ancestors(
      doc.regions->ElementStream(person).begin(),
      doc.regions->ElementStream(person).end());
  std::vector<storage::Region> descendants(
      doc.regions->ElementStream(name).begin(),
      doc.regions->ElementStream(name).end());
  OpStats stats;
  const auto pairs = StructuralJoinPairs(ancestors, descendants,
                                         /*parent_child=*/true, nullptr,
                                         &stats);
  ASSERT_FALSE(pairs.empty());
  // Stack-tree merge: each input element enters the merge exactly once
  // (every person precedes its name child, so all ancestors are consumed).
  EXPECT_EQ(stats.nodes_visited, ancestors.size() + descendants.size());
  // Every consumed ancestor is pushed exactly once; entries still open when
  // the merge ends are never popped.
  EXPECT_EQ(stats.stack_pushes, ancestors.size());
  EXPECT_LE(stats.stack_pops, stats.stack_pushes);
}

TEST(StructuralJoinComplexityTest, BinaryJoinPlanProbesCoverAllStreams) {
  const TestDoc doc = AuctionDoc(0.05);
  const PatternGraph graph = FromXPath("//person[address]/name");
  OpStats stats;
  auto result = BinaryJoinPlanMatch(doc.view, graph, {}, nullptr, nullptr,
                                    &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Initial vertex streams all come from the region index; the semi-join
  // reduction re-fetches regions for surviving candidates on top of that.
  EXPECT_GE(stats.index_probes, TotalStreamSize(doc, graph));
}

// --- Executor-level profile ------------------------------------------------

TEST(ProfileDeterminismTest, CountersAndRenderingStableAcrossRuns) {
  api::Database db;
  datagen::AuctionOptions gen;
  gen.scale = 0.04;
  ASSERT_TRUE(
      db.RegisterDocument("auction.xml", datagen::GenerateAuctionSite(gen))
          .ok());
  api::QueryOptions options;
  options.collect_stats = true;
  for (const char* query : {
           "//person[address][phone]/name",
           "for $p in doc(\"auction.xml\")//person[profile] "
           "return $p/name",
           "count(doc(\"auction.xml\")//item)",
       }) {
    auto first = db.Query(query, options);
    auto second = db.Query(query, options);
    ASSERT_TRUE(first.ok()) << query;
    ASSERT_TRUE(second.ok()) << query;
    ASSERT_NE(first->profile, nullptr);
    ASSERT_NE(second->profile, nullptr);
    // Every counter except wall time is identical run to run; the timeless
    // rendering is therefore byte-stable.
    EXPECT_EQ(first->profile->ToString(/*include_time=*/false),
              second->profile->ToString(/*include_time=*/false))
        << query;
    EXPECT_TRUE(first->profile->root().stats.DeterministicEquals(
        second->profile->root().stats))
        << query;
  }
}

TEST(ProfileDeterminismTest, DisabledCollectionYieldsNoProfile) {
  api::Database db;
  datagen::AuctionOptions gen;
  gen.scale = 0.02;
  ASSERT_TRUE(
      db.RegisterDocument("auction.xml", datagen::GenerateAuctionSite(gen))
          .ok());
  auto result = db.Query("//person/name");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->profile, nullptr);
}

TEST(ProfileDeterminismTest, ProfileRecordsActualOutputRows) {
  api::Database db;
  datagen::AuctionOptions gen;
  gen.scale = 0.04;
  ASSERT_TRUE(
      db.RegisterDocument("auction.xml", datagen::GenerateAuctionSite(gen))
          .ok());
  api::QueryOptions options;
  options.collect_stats = true;
  auto result = db.Query("//person/name", options);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->profile, nullptr);
  // The root operator's recorded output matches the query result itself.
  EXPECT_EQ(result->profile->root().stats.output_rows, result->value.size());
  EXPECT_GE(result->profile->root().stats.invocations, 1u);
}

TEST(ProfileDeterminismTest, ExplainAnalyzeRendersEstimatesAndCounters) {
  api::Database db;
  datagen::AuctionOptions gen;
  gen.scale = 0.04;
  ASSERT_TRUE(
      db.RegisterDocument("auction.xml", datagen::GenerateAuctionSite(gen))
          .ok());
  auto text = db.ExplainAnalyze("//person[address]/name");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("TreePattern"), std::string::npos) << *text;
  EXPECT_NE(text->find("est="), std::string::npos) << *text;
  EXPECT_NE(text->find("rows="), std::string::npos) << *text;
  EXPECT_NE(text->find("err="), std::string::npos) << *text;
  EXPECT_NE(text->find("item(s)"), std::string::npos) << *text;
}

}  // namespace
}  // namespace xmlq::exec
