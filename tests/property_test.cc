// Cross-cutting randomized properties that tie the layers together:
// generated path strings survive parse → compile → execute on every engine,
// serializer round-trips adversarial content, FLWOR evaluation modes agree,
// and the value index matches a full scan.

#include <gtest/gtest.h>

#include <memory>

#include "xmlq/api/database.h"
#include "xmlq/base/random.h"
#include "xmlq/datagen/random_tree.h"
#include "xmlq/storage/value_index.h"
#include "xmlq/xml/parser.h"
#include "xmlq/xml/serializer.h"

namespace xmlq {
namespace {

/// Random XPath strings over the random-tree vocabulary.
std::string RandomPathString(Rng* rng) {
  std::string path;
  const int steps = static_cast<int>(rng->Range(1, 3));
  for (int i = 0; i < steps; ++i) {
    path += rng->Chance(0.5) ? "//" : "/";
    if (rng->Chance(0.15)) {
      path += "*";
    } else {
      path += "t" + std::to_string(rng->Below(4));
    }
    if (rng->Chance(0.35)) {
      switch (rng->Below(4)) {
        case 0:
          path += "[t" + std::to_string(rng->Below(4)) + "]";
          break;
        case 1:
          path += "[@a" + std::to_string(rng->Below(3)) + "]";
          break;
        case 2:
          path += "[. < " + std::to_string(rng->Below(60)) + "]";
          break;
        default:
          path += "[t" + std::to_string(rng->Below(4)) + " = '" +
                  std::to_string(rng->Below(100)) + "']";
          break;
      }
    }
  }
  return path;
}

class PathStringPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PathStringPropertyTest, AllStrategiesAgreeOnGeneratedPathStrings) {
  datagen::RandomTreeOptions options;
  options.seed = GetParam();
  options.num_elements = 180;
  options.tag_vocabulary = 4;
  api::Database db;
  ASSERT_TRUE(
      db.RegisterDocument("r.xml", datagen::GenerateRandomTree(options)).ok());
  Rng rng(GetParam() * 31337 + 7);
  for (int q = 0; q < 30; ++q) {
    const std::string path = RandomPathString(&rng);
    std::string reference;
    bool have_reference = false;
    for (const exec::PatternStrategy strategy :
         {exec::PatternStrategy::kNaive, exec::PatternStrategy::kNok,
          exec::PatternStrategy::kTwigStack,
          exec::PatternStrategy::kPathStack,
          exec::PatternStrategy::kBinaryJoin}) {
      api::QueryOptions qopt;
      qopt.auto_optimize = false;
      qopt.strategy = strategy;
      auto result = db.QueryPath(path, {}, qopt);
      ASSERT_TRUE(result.ok())
          << path << ": " << result.status().ToString();
      const std::string got = api::Database::ToXml(*result);
      if (!have_reference) {
        reference = got;
        have_reference = true;
      } else {
        ASSERT_EQ(got, reference)
            << path << " with " << exec::PatternStrategyName(strategy);
      }
    }
    // The XQuery front end agrees with the XPath front end on the same
    // string (both route through Database::Query's fallback).
    auto via_query = db.Query(path);
    ASSERT_TRUE(via_query.ok()) << path;
    ASSERT_EQ(api::Database::ToXml(*via_query), reference) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathStringPropertyTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull));

TEST(SerializerFuzzTest, AdversarialContentRoundTrips) {
  Rng rng(99);
  const std::string_view alphabet =
      "ab<>&\"' \t\n{}]=;:/!-#x\xc3\xa9";  // includes a UTF-8 é
  for (int round = 0; round < 50; ++round) {
    xml::Document doc;
    const xml::NodeId root = doc.AddElement(doc.root(), "r");
    for (int i = 0; i < 8; ++i) {
      std::string text;
      const int len = static_cast<int>(rng.Range(0, 12));
      for (int k = 0; k < len; ++k) {
        // Keep multi-byte sequences intact: pick from the ASCII prefix or
        // append the two-byte é as a unit.
        const size_t idx = rng.Below(alphabet.size() - 1);
        if ((alphabet[idx] & 0x80) != 0) {
          text += "\xc3\xa9";
        } else {
          text.push_back(alphabet[idx]);
        }
      }
      const xml::NodeId elem = doc.AddElement(root, "e");
      doc.AddAttribute(elem, "v", text);
      if (!text.empty()) doc.AddText(elem, text);
    }
    const std::string once = Serialize(doc);
    xml::ParseOptions keep;
    keep.drop_whitespace_text = false;
    auto reparsed = xml::ParseDocument(once, keep);
    ASSERT_TRUE(reparsed.ok())
        << reparsed.status().ToString() << "\nxml: " << once;
    EXPECT_EQ(Serialize(*reparsed), once) << "round " << round;
  }
}

TEST(ValueIndexPropertyTest, LookupMatchesFullScan) {
  datagen::RandomTreeOptions options;
  options.seed = 1234;
  options.num_elements = 300;
  options.text_probability = 0.7;
  auto doc = datagen::GenerateRandomTree(options);
  storage::ValueIndex index(*doc);
  // Reference: scan all data elements.
  for (const char* tag : {"t0", "t1", "t2"}) {
    const xml::NameId name = doc->pool().Find(tag);
    for (const char* value : {"7", "42", "99", "nope"}) {
      exec::NodeList expected;
      for (xml::NodeId i = 0; i < doc->NodeCount(); ++i) {
        if (doc->Kind(i) != xml::NodeKind::kElement || doc->Name(i) != name) {
          continue;
        }
        const xml::NodeId child = doc->FirstChild(i);
        if (child != xml::kNullNode &&
            doc->Kind(child) == xml::NodeKind::kText &&
            doc->NextSibling(child) == xml::kNullNode &&
            doc->Text(child) == value) {
          expected.push_back(i);
        }
      }
      EXPECT_EQ(index.Lookup(name, value, false), expected)
          << tag << "=" << value;
    }
    // Numeric range agrees with a predicate scan.
    const auto ranged = index.LookupNumericRange(name, 10, true, 50, false,
                                                 /*attribute=*/false);
    for (const xml::NodeId n : ranged) {
      const double v = std::stod(doc->StringValue(n));
      EXPECT_GE(v, 10.0);
      EXPECT_LT(v, 50.0);
    }
  }
}

TEST(FlworModePropertyTest, EnvAndPipelinedAgreeOnQuerySuite) {
  datagen::RandomTreeOptions options;
  options.seed = 4321;
  options.num_elements = 150;
  options.text_probability = 0.6;
  api::Database db;
  ASSERT_TRUE(
      db.RegisterDocument("r.xml", datagen::GenerateRandomTree(options)).ok());
  const char* queries[] = {
      "for $a in //t0 return count($a/t1)",
      "for $a in //t0 for $b in $a/t1 return $b",
      "for $a in //t0 let $k := $a/t1 where count($k) > 0 return $k",
      "for $a in //t1 order by $a descending return $a",
      "for $a in //t0, $b in //t1 where $a = $b return 1",
      "<w>{for $a in //t2 return <i n=\"{count($a/t0)}\">{$a/t3}</i>}</w>",
  };
  for (const char* query : queries) {
    api::QueryOptions env_mode;
    env_mode.flwor_mode = exec::FlworMode::kEnv;
    api::QueryOptions pipe_mode;
    pipe_mode.flwor_mode = exec::FlworMode::kPipelined;
    auto a = db.Query(query, env_mode);
    auto b = db.Query(query, pipe_mode);
    ASSERT_TRUE(a.ok()) << query << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << query << ": " << b.status().ToString();
    EXPECT_EQ(api::Database::ToXml(*a), api::Database::ToXml(*b)) << query;
  }
}

}  // namespace
}  // namespace xmlq
