// Crash-safe catalog persistence (DESIGN.md §9): manifest journal replay
// (torn tails, bit flips, hostile bytes), the kill-point recovery matrix —
// fork a child, crash it at every write boundary of save/replace/remove,
// and assert recovery always yields exactly the old or exactly the new
// catalog state — snapshot quarantine on Attach, and the integrity
// scrubber, including single-bit corruption hiding behind recomputed
// in-file checksums.
//
// Crash model: the child dies with _Exit(2), which preserves everything
// already written to the page cache. A kill point between two syscalls
// therefore models a crash where all earlier writes persisted; torn writes
// are modeled by dedicated sites that write a prefix before dying.
//
// All temp paths are relative, so they land under the build tree.

#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "xmlq/api/database.h"
#include "xmlq/base/crc32.h"
#include "xmlq/base/fault_injector.h"
#include "xmlq/base/file_io.h"
#include "xmlq/base/random.h"
#include "xmlq/datagen/bib_gen.h"
#include "xmlq/storage/manifest.h"
#include "xmlq/storage/snapshot.h"
#include "xmlq/xml/serializer.h"

namespace xmlq {
namespace {

using api::Database;
using api::ScrubOptions;
using storage::Manifest;
using storage::ManifestOp;
using storage::ManifestRecord;
using storage::SnapshotOpenMode;

/// Removes the directory tree on construction and destruction, so a failed
/// earlier run never contaminates this one.
class TempDir {
 public:
  explicit TempDir(std::string path) : path_(std::move(path)) {
    std::filesystem::remove_all(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::unique_ptr<xml::Document> MakeBib(size_t books) {
  datagen::BibOptions options;
  options.num_books = books;
  return datagen::GenerateBibliography(options);
}

/// Serialized image of the named document in `db`, "" when absent — the
/// byte-identical oracle the crash matrix compares recovered states to.
std::string DocImage(const Database& db, const std::string& name) {
  const exec::IndexedDocument* doc = db.Get(name);
  return doc == nullptr ? std::string() : xml::Serialize(*doc->dom);
}

/// What a bib of `books` books serializes to (datagen is deterministic).
std::string ExpectedImage(size_t books) {
  return xml::Serialize(*MakeBib(books));
}

std::string ReadRaw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteRaw(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

/// Seeds `dir` with a 12-book "bib.xml" persisted at generation 1.
void SeedStore(const std::string& dir) {
  Database db;
  ASSERT_TRUE(db.Attach(dir, SnapshotOpenMode::kCopy).ok());
  ASSERT_TRUE(db.RegisterDocument("bib.xml", MakeBib(12)).ok());
  ASSERT_TRUE(db.Persist("bib.xml").ok());
}

/// The single live snapshot file in `dir` (fails the test when != 1).
std::string OnlySnapshotIn(const std::string& dir) {
  std::string found;
  int count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 7 && name.ends_with(".xqpack")) {
      found = entry.path().string();
      ++count;
    }
  }
  EXPECT_EQ(count, 1) << "expected exactly one live snapshot in " << dir;
  return found;
}

// ---------------------------------------------------------------------------
// Manifest journal

TEST(ManifestTest, RoundTripRemoveAndGenerations) {
  TempDir dir("recovery_manifest_rt");
  auto manifest = Manifest::Open(dir.path());
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ManifestRecord record;
  record.op = ManifestOp::kRegister;
  record.generation = manifest->NextGeneration();
  record.name = "a";
  record.file = "a-g1.xqpack";
  record.snapshot_size = 123;
  record.snapshot_crc = 0xabcdef01;
  ASSERT_TRUE(manifest->Append(record).ok());
  record.name = "b";
  record.generation = manifest->NextGeneration();
  record.file = "b-g2.xqpack";
  ASSERT_TRUE(manifest->Append(record).ok());
  ManifestRecord removal;
  removal.op = ManifestOp::kRemove;
  removal.generation = manifest->NextGeneration();
  removal.name = "a";
  ASSERT_TRUE(manifest->Append(removal).ok());

  auto reopened = Manifest::Open(dir.path());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->replay().records, 3u);
  EXPECT_EQ(reopened->replay().torn_bytes, 0u);
  ASSERT_EQ(reopened->entries().size(), 1u);
  const ManifestRecord& live = reopened->entries().begin()->second;
  EXPECT_EQ(live.name, "b");
  EXPECT_EQ(live.file, "b-g2.xqpack");
  EXPECT_EQ(live.snapshot_size, 123u);
  EXPECT_EQ(live.snapshot_crc, 0xabcdef01u);
  // Generations never restart, even after removals.
  EXPECT_EQ(reopened->NextGeneration(), 4u);
}

TEST(ManifestTest, CompactionSnapshotsLiveEntriesAtomically) {
  TempDir dir("recovery_manifest_compact");
  auto manifest = Manifest::Open(dir.path());
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_FALSE(manifest->ShouldCompact()) << "empty journal must not compact";

  // Churn two names through many register/remove cycles plus one name that
  // stays live, so the journal is mostly dead weight.
  ManifestRecord keeper;
  keeper.op = ManifestOp::kRegister;
  keeper.generation = manifest->NextGeneration();
  keeper.name = "keeper";
  keeper.file = "keeper-g1.xqpack";
  keeper.snapshot_size = 321;
  keeper.snapshot_crc = 0xfeedbeef;
  ASSERT_TRUE(manifest->Append(keeper).ok());
  for (int cycle = 0; cycle < 40; ++cycle) {
    ManifestRecord churn;
    churn.op = ManifestOp::kRegister;
    churn.generation = manifest->NextGeneration();
    churn.name = "churn";
    churn.file = "churn-g" + std::to_string(churn.generation) + ".xqpack";
    ASSERT_TRUE(manifest->Append(churn).ok());
    churn.op = ManifestOp::kRemove;
    churn.generation = manifest->NextGeneration();
    churn.file.clear();
    ASSERT_TRUE(manifest->Append(churn).ok());
  }
  ASSERT_EQ(manifest->records(), 81u);
  ASSERT_TRUE(manifest->ShouldCompact());
  const uint64_t bloated = std::filesystem::file_size(manifest->journal_path());

  // An injected compaction failure leaves the journal fully intact (the
  // rewrite is atomic old-or-new) and the catalog still replayable.
  FaultInjector::Instance().Arm("store.manifest.compact", 0, 1);
  EXPECT_FALSE(manifest->Compact().ok());
  FaultInjector::Instance().Reset();
  EXPECT_EQ(std::filesystem::file_size(manifest->journal_path()), bloated);

  ASSERT_TRUE(manifest->Compact().ok());
  EXPECT_EQ(manifest->records(), 1u);
  EXPECT_FALSE(manifest->ShouldCompact());
  EXPECT_LT(std::filesystem::file_size(manifest->journal_path()), bloated / 10);

  // The compacted journal replays to the identical catalog, appends still
  // work, and generations never rewind for live entries.
  auto reopened = Manifest::Open(dir.path());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->replay().records, 1u);
  EXPECT_EQ(reopened->replay().torn_bytes, 0u);
  ASSERT_EQ(reopened->entries().size(), 1u);
  const ManifestRecord& live = reopened->entries().at("keeper");
  EXPECT_EQ(live.generation, 1u);
  EXPECT_EQ(live.file, "keeper-g1.xqpack");
  EXPECT_EQ(live.snapshot_size, 321u);
  EXPECT_EQ(live.snapshot_crc, 0xfeedbeefu);
  ManifestRecord after;
  after.op = ManifestOp::kRegister;
  after.generation = reopened->NextGeneration();
  after.name = "after";
  after.file = "after.xqpack";
  ASSERT_TRUE(reopened->Append(after).ok());
  auto final_state = Manifest::Open(dir.path());
  ASSERT_TRUE(final_state.ok());
  EXPECT_EQ(final_state->entries().size(), 2u);
}

TEST(ManifestTest, TornTailIsTruncatedAndJournalStaysAppendable) {
  TempDir dir("recovery_manifest_torn");
  std::string journal;
  {
    auto manifest = Manifest::Open(dir.path());
    ASSERT_TRUE(manifest.ok());
    journal = manifest->journal_path();
    ManifestRecord record;
    record.op = ManifestOp::kRegister;
    record.generation = manifest->NextGeneration();
    record.name = "doc";
    record.file = "doc-g1.xqpack";
    ASSERT_TRUE(manifest->Append(record).ok());
  }
  // A crashed append: half of the next record made it to disk.
  ManifestRecord torn;
  torn.op = ManifestOp::kRegister;
  torn.generation = 2;
  torn.name = "doc";
  torn.file = "doc-g2.xqpack";
  const std::string encoded = Manifest::EncodeRecord(torn);
  {
    std::ofstream out(journal, std::ios::binary | std::ios::app);
    out.write(encoded.data(),
              static_cast<std::streamsize>(encoded.size() / 2));
  }
  const uint64_t torn_size = std::filesystem::file_size(journal);

  auto recovered = Manifest::Open(dir.path());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->replay().records, 1u);
  EXPECT_GT(recovered->replay().torn_bytes, 0u);
  EXPECT_FALSE(recovered->replay().torn_detail.empty());
  // Replay truncated the torn tail on disk, so the journal ends at a valid
  // record boundary again...
  EXPECT_LT(std::filesystem::file_size(journal), torn_size);
  EXPECT_EQ(std::filesystem::file_size(journal),
            recovered->replay().valid_bytes);
  // ...and the next append commits a fully valid record.
  torn.generation = recovered->NextGeneration();
  ASSERT_TRUE(recovered->Append(torn).ok());
  auto clean = Manifest::Open(dir.path());
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->replay().records, 2u);
  EXPECT_EQ(clean->replay().torn_bytes, 0u);
  EXPECT_EQ(clean->entries().at("doc").file, "doc-g2.xqpack");
}

TEST(ManifestTest, BitFlipInvalidatesRecordAndSuffix) {
  TempDir dir("recovery_manifest_flip");
  std::string journal;
  uint64_t first_record_end = 0;
  {
    auto manifest = Manifest::Open(dir.path());
    ASSERT_TRUE(manifest.ok());
    journal = manifest->journal_path();
    ManifestRecord record;
    record.op = ManifestOp::kRegister;
    for (const char* name : {"a", "b", "c"}) {
      record.generation = manifest->NextGeneration();
      record.name = name;
      record.file = std::string(name) + ".xqpack";
      ASSERT_TRUE(manifest->Append(record).ok());
      if (first_record_end == 0) {
        first_record_end = std::filesystem::file_size(journal);
      }
    }
  }
  // Flip one bit inside the second record: it and everything after it must
  // be discarded (the fsync ordering means later records are later writes).
  std::string bytes = ReadRaw(journal);
  bytes[first_record_end + 8] ^= 0x40;
  WriteRaw(journal, bytes);

  auto recovered = Manifest::Open(dir.path());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->replay().records, 1u);
  EXPECT_NE(recovered->replay().torn_detail.find("checksum"),
            std::string::npos)
      << recovered->replay().torn_detail;
  ASSERT_EQ(recovered->entries().size(), 1u);
  EXPECT_EQ(recovered->entries().begin()->first, "a");
}

TEST(ManifestTest, CorruptHeaderIsPositionedError) {
  TempDir dir("recovery_manifest_hdr");
  std::filesystem::create_directories(dir.path());
  const std::string journal = dir.path() + "/catalog.xqm";
  WriteRaw(journal, "XQMANF\r\n garbage that is not a valid header at all");
  auto manifest = Manifest::Open(dir.path());
  ASSERT_FALSE(manifest.ok());
  EXPECT_NE(manifest.status().message().find("manifest"), std::string::npos);
  EXPECT_NE(manifest.status().message().find("offset"), std::string::npos);
}

TEST(ManifestTest, FuzzedJournalsNeverCrashReplay) {
  TempDir dir("recovery_manifest_fuzz");
  // A valid journal with three records, then 200 seeded mutations: replay
  // must always terminate with either a recovered prefix or a positioned
  // error — never a crash, hang, or huge allocation.
  std::string valid;
  {
    auto manifest = Manifest::Open(dir.path());
    ASSERT_TRUE(manifest.ok());
    ManifestRecord record;
    record.op = ManifestOp::kRegister;
    for (const char* name : {"x", "y", "z"}) {
      record.generation = manifest->NextGeneration();
      record.name = name;
      record.file = std::string(name) + ".xqpack";
      ASSERT_TRUE(manifest->Append(record).ok());
    }
    valid = ReadRaw(manifest->journal_path());
  }
  Rng rng(20260805);
  const std::string journal = dir.path() + "/catalog.xqm";
  for (int round = 0; round < 200; ++round) {
    std::string mutant = valid;
    const int edits = 1 + static_cast<int>(rng.Next() % 4);
    for (int e = 0; e < edits; ++e) {
      switch (rng.Next() % 3) {
        case 0:  // flip a byte
          mutant[rng.Next() % mutant.size()] ^=
              static_cast<char>(1 + rng.Next() % 255);
          break;
        case 1:  // truncate
          mutant.resize(rng.Next() % (mutant.size() + 1));
          break;
        case 2:  // append garbage
          for (uint64_t i = 0, n = rng.Next() % 64; i < n; ++i) {
            mutant.push_back(static_cast<char>(rng.Next()));
          }
          break;
      }
      if (mutant.empty()) mutant = "?";
    }
    WriteRaw(journal, mutant);
    auto result = Manifest::Open(dir.path());
    if (result.ok()) {
      EXPECT_LE(result->replay().valid_bytes, mutant.size());
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Kill-point recovery matrix

enum class CrashOp { kSave, kReplace, kRemove };

/// Forks a child that attaches the store, arms XMLQ_CRASH=`site`, and runs
/// `op`. Returns the child's exit code: 2 = killed at the site, 0 = the
/// operation completed without hitting it.
int RunCrashChild(const std::string& dir, CrashOp op,
                  const std::string& site) {
  const pid_t pid = fork();
  if (pid == 0) {
    // In the child: only _exit() paths from here on (no gtest teardown).
    Database db;
    if (!db.Attach(dir, SnapshotOpenMode::kCopy).ok()) _exit(3);
    Status status = Status::Ok();
    if (op == CrashOp::kSave || op == CrashOp::kReplace) {
      status =
          db.RegisterDocument("bib.xml", MakeBib(op == CrashOp::kSave ? 12
                                                                      : 25));
      if (!status.ok()) _exit(3);
    }
    ::setenv("XMLQ_CRASH", site.c_str(), 1);
    switch (op) {
      case CrashOp::kSave:
      case CrashOp::kReplace:
        status = db.Persist("bib.xml");
        break;
      case CrashOp::kRemove:
        status = db.Remove("bib.xml");
        break;
    }
    _exit(status.ok() ? 0 : 4);
  }
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
}

struct MatrixCase {
  CrashOp op;
  const char* label;
  std::vector<const char*> sites;
};

TEST(CrashMatrixTest, EveryKillPointRecoversToOldOrNewState) {
  // Every write boundary of each durable operation. The file.* sites fire
  // inside WriteSnapshot's atomic write and the manifest append; the
  // persist.*/remove.* sites bracket the operation's commit point.
  const std::vector<MatrixCase> matrix = {
      {CrashOp::kSave,
       "save",
       {"persist.begin", "file.atomic.torn", "file.atomic.tmp_written",
        "file.atomic.tmp_synced", "file.atomic.renamed",
        "persist.snapshot_written", "file.append.torn",
        "file.append.written", "file.append.synced", "persist.committed"}},
      {CrashOp::kReplace,
       "replace",
       {"persist.begin", "file.atomic.torn", "file.atomic.tmp_written",
        "file.atomic.tmp_synced", "file.atomic.renamed",
        "persist.snapshot_written", "file.append.torn",
        "file.append.written", "file.append.synced", "persist.committed"}},
      {CrashOp::kRemove,
       "remove",
       {"remove.begin", "file.append.torn", "file.append.written",
        "file.append.synced", "remove.committed"}},
  };
  const std::string old_image = ExpectedImage(12);
  const std::string new_image = ExpectedImage(25);

  for (const MatrixCase& test_case : matrix) {
    for (const char* site : test_case.sites) {
      SCOPED_TRACE(std::string(test_case.label) + " @ " + site);
      TempDir dir("recovery_matrix_store");
      if (test_case.op == CrashOp::kSave) {
        // Save starts from a store without the document.
        Database seed_db;
        ASSERT_TRUE(seed_db.Attach(dir.path(),
                                   SnapshotOpenMode::kCopy).ok());
      } else {
        SeedStore(dir.path());
      }
      const int exit_code = RunCrashChild(dir.path(), test_case.op, site);
      ASSERT_EQ(exit_code, 2) << "kill point never fired";

      Database recovered;
      auto report = recovered.Attach(dir.path(), SnapshotOpenMode::kCopy);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      // A crash must never cost us a *committed* snapshot: quarantine here
      // would mean the store tore.
      EXPECT_TRUE(report->quarantined.empty())
          << report->quarantined.front();

      const std::string expected_old =
          test_case.op == CrashOp::kSave ? std::string() : old_image;
      const std::string expected_new =
          test_case.op == CrashOp::kRemove
              ? std::string()
              : (test_case.op == CrashOp::kReplace ? new_image : old_image);
      const std::string image = DocImage(recovered, "bib.xml");
      EXPECT_TRUE(image == expected_old || image == expected_new)
          << "torn state: " << image.size() << " bytes, expected old ("
          << expected_old.size() << ") or new (" << expected_new.size()
          << ")";
      // The boundaries are deterministic under the page-cache crash model:
      // before any write → old; after the fsync'd commit append → new.
      if (std::string_view(site) == "persist.begin" ||
          std::string_view(site) == "remove.begin") {
        EXPECT_EQ(image, expected_old);
      }
      if (std::string_view(site) == "persist.committed" ||
          std::string_view(site) == "remove.committed") {
        EXPECT_EQ(image, expected_new);
      }
      // Recovery is idempotent: a second attach sees the same state.
      Database again;
      auto second = again.Attach(dir.path(), SnapshotOpenMode::kCopy);
      ASSERT_TRUE(second.ok());
      EXPECT_EQ(DocImage(again, "bib.xml"), image);
    }
  }
}

// ---------------------------------------------------------------------------
// Attach recovery & quarantine

TEST(DurableStoreTest, PersistAttachRoundTrip) {
  TempDir dir("recovery_roundtrip");
  {
    Database db;
    auto report = db.Attach(dir.path(), SnapshotOpenMode::kCopy);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->manifest_records, 0u);
    ASSERT_TRUE(db.RegisterDocument("bib.xml", MakeBib(12)).ok());
    ASSERT_TRUE(db.RegisterDocument("more.xml", MakeBib(5)).ok());
    ASSERT_TRUE(db.Persist("bib.xml").ok());
    ASSERT_TRUE(db.Persist("more.xml").ok());
  }
  Database db;
  auto report = db.Attach(dir.path(), SnapshotOpenMode::kMap);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->loaded.size(), 2u);
  EXPECT_TRUE(report->quarantined.empty());
  EXPECT_EQ(DocImage(db, "bib.xml"), ExpectedImage(12));
  EXPECT_EQ(DocImage(db, "more.xml"), ExpectedImage(5));
  // Lowest generation becomes the default document.
  EXPECT_EQ(db.default_document(), "bib.xml");
  auto result = db.Query("count(doc(\"bib.xml\")//book)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->value.at(0).StringValue(), "12");
}

TEST(DurableStoreTest, ReplaceUnlinksOldGeneration) {
  TempDir dir("recovery_replace");
  SeedStore(dir.path());
  {
    Database db;
    ASSERT_TRUE(db.Attach(dir.path(), SnapshotOpenMode::kCopy).ok());
    ASSERT_TRUE(db.RegisterDocument("bib.xml", MakeBib(25)).ok());
    ASSERT_TRUE(db.Persist("bib.xml").ok());
  }
  // Exactly one live snapshot remains, and it is the new generation.
  const std::string snapshot = OnlySnapshotIn(dir.path());
  EXPECT_NE(snapshot.find("-g2"), std::string::npos) << snapshot;
  Database db;
  ASSERT_TRUE(db.Attach(dir.path(), SnapshotOpenMode::kCopy).ok());
  EXPECT_EQ(DocImage(db, "bib.xml"), ExpectedImage(25));
}

TEST(DurableStoreTest, PersistCompactsTheJournalPastTheThreshold) {
  TempDir dir("recovery_compact_e2e");
  const std::string journal =
      dir.path() + "/" + storage::kManifestFileName;
  {
    Database db;
    ASSERT_TRUE(db.Attach(dir.path(), SnapshotOpenMode::kCopy).ok());
    ASSERT_TRUE(db.RegisterDocument("bib.xml", MakeBib(12)).ok());
    // Each Persist of an already-persisted name appends one replace record;
    // crossing Manifest::kCompactMinRecords must trigger the in-line
    // compaction, collapsing the journal back to one record per live doc.
    uint64_t peak = 0;
    for (uint64_t i = 0; i < Manifest::kCompactMinRecords + 4; ++i) {
      ASSERT_TRUE(db.Persist("bib.xml").ok());
      peak = std::max(peak, std::filesystem::file_size(journal));
    }
    EXPECT_LT(std::filesystem::file_size(journal), peak / 8)
        << "journal never compacted";
  }
  // The compacted store recovers to the exact same catalog.
  Database db;
  auto report = db.Attach(dir.path(), SnapshotOpenMode::kCopy);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->loaded.size(), 1u);
  // One compacted record plus the appends that landed after the compact.
  EXPECT_LE(report->manifest_records, 5u) << "replayed a bloated journal";
  EXPECT_TRUE(report->quarantined.empty());
  EXPECT_EQ(DocImage(db, "bib.xml"), ExpectedImage(12));
  // Exactly one snapshot file survived all the churn.
  OnlySnapshotIn(dir.path());
}

TEST(DurableStoreTest, RemoveIsDurable) {
  TempDir dir("recovery_remove");
  SeedStore(dir.path());
  {
    Database db;
    ASSERT_TRUE(db.Attach(dir.path(), SnapshotOpenMode::kCopy).ok());
    ASSERT_TRUE(db.Remove("bib.xml").ok());
    EXPECT_FALSE(db.Contains("bib.xml"));
  }
  Database db;
  auto report = db.Attach(dir.path(), SnapshotOpenMode::kCopy);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->loaded.empty());
  EXPECT_FALSE(db.Contains("bib.xml"));
}

TEST(DurableStoreTest, AttachQuarantinesCorruptSnapshotKeepsServingRest) {
  TempDir dir("recovery_quarantine");
  {
    Database db;
    ASSERT_TRUE(db.Attach(dir.path(), SnapshotOpenMode::kCopy).ok());
    ASSERT_TRUE(db.RegisterDocument("good.xml", MakeBib(5)).ok());
    ASSERT_TRUE(db.RegisterDocument("bad.xml", MakeBib(12)).ok());
    ASSERT_TRUE(db.Persist("good.xml").ok());
    ASSERT_TRUE(db.Persist("bad.xml").ok());
  }
  // Flip one bit in bad.xml's snapshot.
  const std::string victim = dir.path() + "/bad.xml-g2.xqpack";
  std::string bytes = ReadRaw(victim);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x10;
  WriteRaw(victim, bytes);

  Database db;
  auto report = db.Attach(dir.path(), SnapshotOpenMode::kCopy);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->quarantined.size(), 1u);
  EXPECT_NE(report->quarantined[0].find("bad.xml"), std::string::npos);
  EXPECT_NE(report->quarantined[0].find("checksum"), std::string::npos)
      << report->quarantined[0];
  // The evidence is kept aside; the healthy document keeps serving.
  EXPECT_TRUE(std::filesystem::exists(victim + ".quarantined"));
  EXPECT_FALSE(std::filesystem::exists(victim));
  EXPECT_FALSE(db.Contains("bad.xml"));
  EXPECT_EQ(DocImage(db, "good.xml"), ExpectedImage(5));
  // The quarantine is journaled: the next attach does not retry the file.
  Database again;
  auto second = again.Attach(dir.path(), SnapshotOpenMode::kCopy);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->quarantined.empty());
}

TEST(DurableStoreTest, ParallelAttachQuarantinesIdenticallyToSerial) {
  // Two identically-seeded stores, the same single-bit corruption planted
  // in each; a serial attach and a parallelism-4 attach (per-record verify
  // fan-out) must load and quarantine exactly the same documents.
  auto seed_corrupted = [](const std::string& dir) {
    {
      Database db;
      ASSERT_TRUE(db.Attach(dir, SnapshotOpenMode::kCopy).ok());
      ASSERT_TRUE(db.RegisterDocument("good1.xml", MakeBib(5)).ok());
      ASSERT_TRUE(db.RegisterDocument("bad.xml", MakeBib(12)).ok());
      ASSERT_TRUE(db.RegisterDocument("good2.xml", MakeBib(9)).ok());
      ASSERT_TRUE(db.Persist("good1.xml").ok());
      ASSERT_TRUE(db.Persist("bad.xml").ok());
      ASSERT_TRUE(db.Persist("good2.xml").ok());
    }
    const std::string victim = dir + "/bad.xml-g2.xqpack";
    std::string bytes = ReadRaw(victim);
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() / 2] ^= 0x10;
    WriteRaw(victim, bytes);
  };
  TempDir serial_dir("recovery_par_attach_serial");
  TempDir parallel_dir("recovery_par_attach_parallel");
  seed_corrupted(serial_dir.path());
  seed_corrupted(parallel_dir.path());

  Database serial_db;
  auto serial = serial_db.Attach(serial_dir.path(), SnapshotOpenMode::kCopy,
                                 /*parallelism=*/1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  Database parallel_db;
  auto parallel = parallel_db.Attach(parallel_dir.path(),
                                     SnapshotOpenMode::kCopy,
                                     /*parallelism=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  // Identical outcomes: same documents recovered (manifest order), same
  // single quarantine naming the same file for the same reason.
  EXPECT_EQ(parallel->loaded, serial->loaded);
  ASSERT_EQ(serial->quarantined.size(), 1u);
  ASSERT_EQ(parallel->quarantined.size(), 1u);
  EXPECT_NE(parallel->quarantined[0].find("bad.xml"), std::string::npos);
  EXPECT_NE(parallel->quarantined[0].find("checksum"), std::string::npos)
      << parallel->quarantined[0];
  for (Database* db : {&serial_db, &parallel_db}) {
    EXPECT_FALSE(db->Contains("bad.xml"));
    EXPECT_EQ(DocImage(*db, "good1.xml"), ExpectedImage(5));
    EXPECT_EQ(DocImage(*db, "good2.xml"), ExpectedImage(9));
  }
}

TEST(DurableStoreTest, AttachSweepsOrphanFiles) {
  TempDir dir("recovery_orphans");
  SeedStore(dir.path());
  // An uncommitted snapshot (Persist crashed before its manifest append)
  // and a torn atomic-write temp file.
  WriteRaw(dir.path() + "/bib.xml-g9.xqpack", "uncommitted");
  WriteRaw(dir.path() + "/bib.xml-g9.xqpack.tmp", "torn");
  Database db;
  auto report = db.Attach(dir.path(), SnapshotOpenMode::kCopy);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->orphans_removed.size(), 2u);
  EXPECT_FALSE(std::filesystem::exists(dir.path() + "/bib.xml-g9.xqpack"));
  EXPECT_FALSE(
      std::filesystem::exists(dir.path() + "/bib.xml-g9.xqpack.tmp"));
  // The committed generation survived the sweep.
  EXPECT_EQ(DocImage(db, "bib.xml"), ExpectedImage(12));
}

TEST(DurableStoreTest, ErrorsAreActionable) {
  TempDir dir("recovery_errors");
  Database db;
  ASSERT_TRUE(db.RegisterDocument("bib.xml", MakeBib(3)).ok());
  const Status unattached = db.Persist("bib.xml");
  ASSERT_FALSE(unattached.ok());
  EXPECT_NE(unattached.message().find("Attach"), std::string::npos);
  ASSERT_TRUE(db.Attach(dir.path(), SnapshotOpenMode::kCopy).ok());
  const auto twice = db.Attach(dir.path(), SnapshotOpenMode::kCopy);
  ASSERT_FALSE(twice.ok());
  EXPECT_NE(twice.status().message().find("already attached"),
            std::string::npos);
  EXPECT_FALSE(db.Persist("missing.xml").ok());
  EXPECT_FALSE(db.Remove("missing.xml").ok());
  EXPECT_EQ(db.store_dir(), dir.path());
}

// ---------------------------------------------------------------------------
// Integrity scrubber

/// Flips one bit in a section payload of an xqpack image and *recomputes*
/// the section CRC, table CRC and header CRC, so every in-file checksum is
/// consistent with the corrupted bytes — the cover-your-tracks corruption
/// only the manifest's independently-stored whole-file CRC can catch.
std::string CorruptBehindRecomputedChecksums(std::string image,
                                             uint64_t payload_byte) {
  storage::SnapshotHeader header;
  std::memcpy(&header, image.data(), sizeof(header));
  std::vector<storage::SnapshotSection> table(header.section_count);
  std::memcpy(table.data(), image.data() + sizeof(header),
              table.size() * sizeof(storage::SnapshotSection));
  // Find the section containing the payload_byte-th payload byte.
  uint64_t remaining = payload_byte;
  for (storage::SnapshotSection& section : table) {
    if (section.size == 0) continue;
    if (remaining >= section.size) {
      remaining -= section.size;
      continue;
    }
    image[section.offset + remaining] ^= 0x04;
    section.crc = Crc32(image.data() + section.offset, section.size);
    break;
  }
  header.table_crc =
      Crc32(table.data(), table.size() * sizeof(storage::SnapshotSection));
  header.header_crc = 0;
  header.header_crc = Crc32(&header, sizeof(header));
  std::memcpy(image.data(), &header, sizeof(header));
  std::memcpy(image.data() + sizeof(header), table.data(),
              table.size() * sizeof(storage::SnapshotSection));
  return image;
}

TEST(ScrubTest, CleanStorePasses) {
  TempDir dir("recovery_scrub_clean");
  SeedStore(dir.path());
  Database db;
  ASSERT_TRUE(db.Attach(dir.path(), SnapshotOpenMode::kCopy).ok());
  ScrubOptions deep;
  deep.deep = true;
  auto report = db.Scrub(deep);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->files_checked, 1u);
  EXPECT_EQ(report->corrupt, 0u);
  EXPECT_GT(report->bytes_read, 0u);
  EXPECT_TRUE(report->quarantined.empty());
}

TEST(ScrubTest, DetectsEverySingleBitFlipBehindRecomputedChecksums) {
  // The acceptance sweep: corruptions whose in-file checksums were all
  // recomputed pass VerifySnapshotImage, yet the scrubber must catch 100%
  // of them via the manifest CRC — and quarantine without disturbing
  // queries against the already-loaded copy.
  TempDir dir("recovery_scrub_bits");
  SeedStore(dir.path());
  Rng rng(5);
  int detected = 0;
  constexpr int kTrials = 8;
  for (int trial = 0; trial < kTrials; ++trial) {
    Database db;
    ASSERT_TRUE(db.Attach(dir.path(), SnapshotOpenMode::kCopy).ok());
    // Each trial re-finds the live snapshot: quarantine + re-persist below
    // move the document to a fresh generation file.
    const std::string victim = OnlySnapshotIn(dir.path());
    const std::string pristine = ReadRaw(victim);
    ASSERT_FALSE(pristine.empty());
    const std::string corrupt = CorruptBehindRecomputedChecksums(
        pristine, rng.Next() % (pristine.size() / 2));
    ASSERT_NE(corrupt, pristine);
    // The in-file checksums really are consistent: deep verification of
    // the corrupted image succeeds or fails only on *structural* grounds,
    // shallow (checksum-level) verification must pass.
    ASSERT_TRUE(storage::VerifySnapshotImage(
                    std::span<const char>(corrupt.data(), corrupt.size()),
                    /*deep=*/false)
                    .ok());
    WriteRaw(victim, corrupt);

    auto report = db.Scrub(ScrubOptions{});
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    if (report->corrupt == 1) ++detected;
    ASSERT_EQ(report->quarantined.size(), 1u);
    EXPECT_NE(report->quarantined[0].find("whole-file checksum"),
              std::string::npos)
        << report->quarantined[0];
    // The document keeps serving from its validated in-memory copy, and
    // results carry the degradation note.
    auto result = db.Query("count(doc(\"bib.xml\")//book)");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->value.at(0).StringValue(), "12");
    EXPECT_TRUE(result->degraded);
    EXPECT_NE(result->degradation.find("quarantined"), std::string::npos)
        << result->degradation;

    // Reset the store for the next trial: put the pristine bytes back and
    // re-commit them under a fresh registration.
    std::filesystem::remove(victim + ".quarantined");
    ASSERT_TRUE(db.Persist("bib.xml").ok());
  }
  EXPECT_EQ(detected, kTrials);
}

TEST(ScrubTest, ParallelScrubDetectsSameBitFlipsAsSerial) {
  // Parity sweep for the morsel-parallel read path: each trial plants the
  // same cover-your-tracks corruption twice — once scrubbed serially, once
  // at parallelism 4 (chunked CRC + per-record fan-out) — and both must
  // detect and quarantine identically, 8/8.
  TempDir dir("recovery_scrub_par_bits");
  SeedStore(dir.path());
  Rng rng(5);
  int serial_detected = 0, parallel_detected = 0;
  constexpr int kTrials = 8;
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t offset_seed = rng.Next();
    for (const uint32_t parallelism : {1u, 4u}) {
      Database db;
      ASSERT_TRUE(
          db.Attach(dir.path(), SnapshotOpenMode::kCopy, parallelism).ok());
      const std::string victim = OnlySnapshotIn(dir.path());
      const std::string pristine = ReadRaw(victim);
      ASSERT_FALSE(pristine.empty());
      const std::string corrupt = CorruptBehindRecomputedChecksums(
          pristine, offset_seed % (pristine.size() / 2));
      ASSERT_NE(corrupt, pristine);
      WriteRaw(victim, corrupt);

      ScrubOptions scrub;
      scrub.parallelism = parallelism;
      auto report = db.Scrub(scrub);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_EQ(report->files_checked, 1u);
      if (report->corrupt == 1) {
        ++(parallelism == 1 ? serial_detected : parallel_detected);
      }
      ASSERT_EQ(report->quarantined.size(), 1u) << "p" << parallelism;
      EXPECT_NE(report->quarantined[0].find("whole-file checksum"),
                std::string::npos)
          << report->quarantined[0];
      EXPECT_TRUE(std::filesystem::exists(victim + ".quarantined"))
          << "p" << parallelism;

      // Reset for the next round: drop the evidence, re-commit pristine
      // content under a fresh generation.
      std::filesystem::remove(victim + ".quarantined");
      ASSERT_TRUE(db.Persist("bib.xml").ok());
    }
  }
  EXPECT_EQ(serial_detected, kTrials);
  EXPECT_EQ(parallel_detected, kTrials);
}

TEST(ScrubTest, ParallelDeepScrubOnLargeSnapshotMatchesSerial) {
  // A snapshot big enough to cross ParallelCrc32's 2 MiB chunking floor, so
  // the parallel scrub really folds per-chunk CRCs with Crc32Combine; both
  // shallow and deep parallel reports must match the serial ones field for
  // field on a clean store.
  TempDir dir("recovery_scrub_par_large");
  {
    Database db;
    ASSERT_TRUE(db.Attach(dir.path(), SnapshotOpenMode::kCopy).ok());
    ASSERT_TRUE(db.RegisterDocument("big.xml", MakeBib(20000)).ok());
    ASSERT_TRUE(db.Persist("big.xml").ok());
  }
  const std::string snapshot = OnlySnapshotIn(dir.path());
  ASSERT_GT(std::filesystem::file_size(snapshot), 2u << 20)
      << "snapshot too small to exercise chunked CRC";
  Database db;
  ASSERT_TRUE(db.Attach(dir.path(), SnapshotOpenMode::kMap, 4).ok());
  for (const bool deep : {false, true}) {
    ScrubOptions serial;
    serial.deep = deep;
    auto serial_report = db.Scrub(serial);
    ASSERT_TRUE(serial_report.ok()) << serial_report.status().ToString();

    ScrubOptions parallel = serial;
    parallel.parallelism = 4;
    auto parallel_report = db.Scrub(parallel);
    ASSERT_TRUE(parallel_report.ok()) << parallel_report.status().ToString();

    EXPECT_EQ(parallel_report->files_checked, serial_report->files_checked);
    EXPECT_EQ(parallel_report->bytes_read, serial_report->bytes_read);
    EXPECT_EQ(parallel_report->corrupt, 0u);
    EXPECT_EQ(serial_report->corrupt, 0u);
    EXPECT_TRUE(parallel_report->quarantined.empty());
  }
}

TEST(ScrubTest, MappedDocumentNeverCrashesOnCorruption) {
  TempDir dir("recovery_scrub_map");
  SeedStore(dir.path());
  Database db;
  ASSERT_TRUE(db.Attach(dir.path(), SnapshotOpenMode::kMap).ok());
  const std::string victim = OnlySnapshotIn(dir.path());
  std::string bytes = ReadRaw(victim);
  bytes[bytes.size() - 1] ^= 0x01;  // last payload byte, plain flip
  WriteRaw(victim, bytes);

  auto report = db.Scrub(ScrubOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->corrupt, 1u);
  ASSERT_EQ(report->notes.size(), 1u);
  // Whatever the fallback decided (revalidated copy vs drop), queries must
  // not crash: they either serve flagged results or report the document
  // missing.
  auto result = db.Query("count(doc(\"bib.xml\")//book)");
  if (db.Contains("bib.xml")) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->degraded);
  } else {
    EXPECT_FALSE(result.ok());
  }
}

TEST(ScrubTest, BackgroundScrubberQuarantinesWhileServing) {
  TempDir dir("recovery_scrub_bg");
  SeedStore(dir.path());
  Database db;
  ASSERT_TRUE(db.Attach(dir.path(), SnapshotOpenMode::kCopy).ok());
  ASSERT_TRUE(db.StartScrubber(/*interval_ms=*/5).ok());
  EXPECT_TRUE(db.scrubber_running());
  EXPECT_FALSE(db.StartScrubber(5).ok());  // already running

  // Corrupt the snapshot under the running scrubber; queries keep flowing
  // the whole time (the loaded copy is what serves them).
  const std::string victim = OnlySnapshotIn(dir.path());
  std::string bytes = ReadRaw(victim);
  bytes[bytes.size() / 3] ^= 0x20;
  WriteRaw(victim, bytes);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool quarantined = false;
  while (std::chrono::steady_clock::now() < deadline) {
    auto result = db.Query("count(doc(\"bib.xml\")//book)");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->value.at(0).StringValue(), "12");
    if (std::filesystem::exists(victim + ".quarantined")) {
      quarantined = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  db.StopScrubber();
  EXPECT_FALSE(db.scrubber_running());
  EXPECT_TRUE(quarantined) << "scrubber never quarantined the corruption";
  EXPECT_GE(db.scrub_cycles(), 1u);
  auto result = db.Query("count(doc(\"bib.xml\")//book)");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->degraded);
  EXPECT_NE(result->degradation.find("quarantined"), std::string::npos);

  // Without a store there is nothing to scrub.
  Database unattached;
  EXPECT_FALSE(unattached.StartScrubber(5).ok());
  unattached.StopScrubber();  // no-op
}

}  // namespace
}  // namespace xmlq
