#include <gtest/gtest.h>

#include "xmlq/datagen/bib_gen.h"
#include "xmlq/datagen/random_tree.h"
#include "xmlq/storage/region_index.h"
#include "xmlq/storage/tag_dictionary.h"
#include "xmlq/storage/value_index.h"
#include "xmlq/xml/parser.h"

namespace xmlq::storage {
namespace {

TEST(RegionIndexTest, SmallDocumentRegions) {
  auto doc = xml::ParseDocument("<a><b><c/></b><b/></a>");
  ASSERT_TRUE(doc.ok());
  RegionIndex index(*doc);
  // Nodes: doc=0, a=1, b=2, c=3, b=4.
  ASSERT_EQ(index.elements().size(), 4u);
  EXPECT_EQ(index.EndOf(1), 4u);
  EXPECT_EQ(index.EndOf(2), 3u);
  EXPECT_EQ(index.EndOf(4), 4u);
  EXPECT_EQ(index.LevelOf(3), 3u);
  const auto b_stream = index.ElementStream(doc->pool().Find("b"));
  ASSERT_EQ(b_stream.size(), 2u);
  EXPECT_EQ(b_stream[0].start, 2u);
  EXPECT_EQ(b_stream[1].start, 4u);
  EXPECT_TRUE(index.RegionOf(1).Contains(index.RegionOf(3)));
  EXPECT_FALSE(index.RegionOf(2).Contains(index.RegionOf(4)));
  EXPECT_TRUE(index.RegionOf(2).IsParentOf(index.RegionOf(3)));
  EXPECT_FALSE(index.RegionOf(1).IsParentOf(index.RegionOf(3)));
}

TEST(RegionIndexTest, ContainmentMatchesAncestorRelationOnRandomTrees) {
  for (uint64_t seed : {3ull, 8ull, 21ull}) {
    datagen::RandomTreeOptions options;
    options.seed = seed;
    options.num_elements = 120;
    auto doc = datagen::GenerateRandomTree(options);
    RegionIndex index(*doc);
    // Reference ancestor check by chasing parents.
    const auto is_ancestor = [&](xml::NodeId a, xml::NodeId d) {
      for (xml::NodeId p = doc->Parent(d); p != xml::kNullNode;
           p = doc->Parent(p)) {
        if (p == a) return true;
      }
      return false;
    };
    for (xml::NodeId a = 0; a < doc->NodeCount(); a += 3) {
      for (xml::NodeId d = 0; d < doc->NodeCount(); d += 7) {
        const bool expected = is_ancestor(a, d);
        const bool interval = index.RegionOf(a).Contains(index.RegionOf(d));
        ASSERT_EQ(interval, expected)
            << "a=" << a << " d=" << d << " seed=" << seed;
      }
    }
  }
}

TEST(RegionIndexTest, AttributeStreams) {
  auto doc =
      xml::ParseDocument("<r><x id=\"1\"/><y id=\"2\" class=\"k\"/></r>");
  ASSERT_TRUE(doc.ok());
  RegionIndex index(*doc);
  const auto ids = index.AttributeStream(doc->pool().Find("id"));
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_LT(ids[0].start, ids[1].start);
  EXPECT_EQ(index.AttributeStream(doc->pool().Find("class")).size(), 1u);
  EXPECT_TRUE(index.ElementStream(xml::kInvalidName).empty());
}

TEST(TagDictionaryTest, CountsElementsAndAttributes) {
  auto doc = xml::ParseDocument(
      "<r><a id=\"1\"/><a/><b id=\"2\" x=\"3\"/></r>");
  ASSERT_TRUE(doc.ok());
  TagDictionary dict(*doc);
  EXPECT_EQ(dict.ElementCount(doc->pool().Find("a")), 2u);
  EXPECT_EQ(dict.ElementCount(doc->pool().Find("b")), 1u);
  EXPECT_EQ(dict.AttributeCount(doc->pool().Find("id")), 2u);
  EXPECT_EQ(dict.AttributeCount(doc->pool().Find("x")), 1u);
  EXPECT_EQ(dict.TotalElements(), 4u);
  EXPECT_EQ(dict.TotalAttributes(), 3u);
  EXPECT_EQ(dict.DistinctElementNames(), 3u);
}

TEST(ValueIndexTest, ElementLookup) {
  auto doc = xml::ParseDocument(
      "<r><p>10</p><p>20</p><p>10</p><q>10</q><mixed>a<u/>b</mixed></r>");
  ASSERT_TRUE(doc.ok());
  ValueIndex index(*doc);
  const xml::NameId p = doc->pool().Find("p");
  const auto tens = index.Lookup(p, "10", /*attribute=*/false);
  EXPECT_EQ(tens.size(), 2u);
  EXPECT_TRUE(index.Lookup(p, "30", false).empty());
  // q with the same value is a different key.
  EXPECT_EQ(index.Lookup(doc->pool().Find("q"), "10", false).size(), 1u);
  // Mixed-content elements are not data elements and are not indexed.
  EXPECT_TRUE(index.Lookup(doc->pool().Find("mixed"), "ab", false).empty());
}

TEST(ValueIndexTest, AttributeLookupAndNumericRange) {
  auto doc = xml::ParseDocument(
      "<r><i price=\"5\"/><i price=\"15\"/><i price=\"25\"/>"
      "<i price=\"cheap\"/></r>");
  ASSERT_TRUE(doc.ok());
  ValueIndex index(*doc);
  const xml::NameId price = doc->pool().Find("price");
  EXPECT_EQ(index.Lookup(price, "15", true).size(), 1u);
  const auto in_range = index.LookupNumericRange(price, 5, false, 25, true,
                                                 /*attribute=*/true);
  EXPECT_EQ(in_range.size(), 2u);  // 15 and 25; 5 excluded, "cheap" skipped
  const auto all = index.LookupNumericRange(price, 0, true, 100, true, true);
  EXPECT_EQ(all.size(), 3u);
}

TEST(ValueIndexTest, BibliographyPriceRange) {
  datagen::BibOptions options;
  options.num_books = 200;
  auto doc = datagen::GenerateBibliography(options);
  ValueIndex index(*doc);
  const xml::NameId price = doc->pool().Find("price");
  const auto all =
      index.LookupNumericRange(price, 0, true, 1e9, true, false);
  EXPECT_EQ(all.size(), 200u);
  const auto some =
      index.LookupNumericRange(price, 0, true, 80, true, false);
  EXPECT_GT(some.size(), 0u);
  EXPECT_LT(some.size(), 200u);
  // Results are element NodeIds in document order.
  for (size_t i = 1; i < some.size(); ++i) {
    EXPECT_LT(some[i - 1], some[i]);
  }
  // Cross-check one hit against the document.
  ASSERT_FALSE(some.empty());
  const double v = std::stod(doc->StringValue(some[0]));
  EXPECT_LE(v, 80.0);
}

}  // namespace
}  // namespace xmlq::storage
