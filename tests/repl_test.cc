// Replication & follower serving (DESIGN.md §13): payload codecs against
// hostile bytes, the staleness gate, follower read-only enforcement, full
// primary->follower convergence proven by the shared 54-query oracle, live
// catch-up and census-driven removal, the interleaved-frame client demux,
// a chaos matrix over every repl.* and net.* fault site (convergence once
// faults clear, zero fd leaks), divergence quarantine (degrade, never
// drop), and a fork+kill-point crash matrix over ApplyReplicated asserting
// every crash recovers to exactly the old or exactly the new generation.
//
// Coordinated failover (DESIGN.md §14): epoch persistence and compaction
// survival, promotion with its own fork+kill-point matrix, the split-brain
// fence at the subscribe ack, at mid-stream frames and on the server side,
// auto-demotion of a stale primary back into a converged follower, the
// structured follower write refusal, backoff reset only after an applied
// shipment, and self-healing quarantine recovery (both the divergence path
// and the scrubber path).
//
// All temp paths are relative, so they land under the build tree.

#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "oracle_queries.h"
#include "xmlq/api/database.h"
#include "xmlq/base/fault_injector.h"
#include "xmlq/base/file_io.h"
#include "xmlq/datagen/auction_gen.h"
#include "xmlq/datagen/bib_gen.h"
#include "xmlq/exec/admission.h"
#include "xmlq/net/client.h"
#include "xmlq/net/protocol.h"
#include "xmlq/net/server.h"
#include "xmlq/repl/replication.h"
#include "xmlq/storage/manifest.h"
#include "xmlq/xml/serializer.h"

namespace xmlq {
namespace {

using api::Database;
using repl::ReplicationClient;
using repl::ReplicationConfig;
using repl::ReplicationStats;
using storage::ManifestOp;
using storage::ManifestRecord;
using storage::SnapshotOpenMode;

// ctest runs every test as its own concurrent process in a shared working
// directory, so temp paths carry the pid to keep concurrently running tests
// out of each other's stores.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix)
      : path_(prefix + "." + std::to_string(::getpid())) {
    std::filesystem::remove_all(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::unique_ptr<xml::Document> MakeBib(size_t books) {
  datagen::BibOptions options;
  options.num_books = books;
  return datagen::GenerateBibliography(options);
}

std::unique_ptr<xml::Document> MakeAuction() {
  datagen::AuctionOptions options;
  options.scale = 0.06;
  options.seed = 11;
  return datagen::GenerateAuctionSite(options);
}

std::string DocImage(const Database& db, const std::string& name) {
  const exec::IndexedDocument* doc = db.Get(name);
  return doc == nullptr ? std::string() : xml::Serialize(*doc->dom);
}

size_t OpenFdCount() {
  size_t count = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++count;
  }
  return count;
}

/// Polls `predicate` until true or the deadline passes.
bool WaitFor(const std::function<bool()>& predicate,
             uint64_t deadline_millis = 20'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_millis);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

ReplicationConfig FastReplConfig(uint16_t port, std::string store_dir) {
  ReplicationConfig config;
  config.host = "127.0.0.1";
  config.port = port;
  config.store_dir = std::move(store_dir);
  config.base_backoff_micros = 5'000;
  config.max_backoff_micros = 100'000;
  config.client.io_timeout_micros = 2'000'000;
  return config;
}

net::ServerConfig FastServerConfig() {
  net::ServerConfig config;
  config.port = 0;  // ephemeral
  config.workers = 2;
  config.repl_heartbeat_micros = 50'000;
  return config;
}

// ---------------------------------------------------------------------------
// Payload codecs: round-trips and hostile bytes

TEST(ReplCodecTest, SubscribeRoundTripAndHostile) {
  net::ReplSubscribePayload subscribe;
  subscribe.from_generation = 42;
  subscribe.epoch = 7;
  subscribe.refetch_generation = 9;
  const std::string wire = net::EncodeReplSubscribe(subscribe);
  ASSERT_EQ(wire.size(), 24u);  // three u64s, nothing else
  net::ReplSubscribePayload out;
  ASSERT_TRUE(net::DecodeReplSubscribe(wire, &out));
  EXPECT_EQ(out.from_generation, 42u);
  EXPECT_EQ(out.epoch, 7u);
  EXPECT_EQ(out.refetch_generation, 9u);
  EXPECT_FALSE(net::DecodeReplSubscribe("", &out));
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(net::DecodeReplSubscribe(wire.substr(0, len), &out))
        << "accepted truncation at " << len;
  }
  EXPECT_FALSE(net::DecodeReplSubscribe(wire + "x", &out));  // trailing
}

TEST(ReplCodecTest, RecordRoundTripAndHostile) {
  net::ReplRecordPayload record;
  record.op = static_cast<uint32_t>(ManifestOp::kRegister);
  record.generation = 7;
  record.snapshot_size = 1234;
  record.snapshot_crc = 0xDEADBEEF;
  record.epoch = 3;
  record.name = "auction.xml";
  record.file = "auction.xml.g7.xqpack";
  const std::string wire = net::EncodeReplRecord(record);
  net::ReplRecordPayload out;
  ASSERT_TRUE(net::DecodeReplRecord(wire, &out));
  EXPECT_EQ(out.op, record.op);
  EXPECT_EQ(out.generation, 7u);
  EXPECT_EQ(out.snapshot_size, 1234u);
  EXPECT_EQ(out.snapshot_crc, 0xDEADBEEFu);
  EXPECT_EQ(out.epoch, 3u);
  EXPECT_EQ(out.name, record.name);
  EXPECT_EQ(out.file, record.file);
  // Hostile: truncation anywhere in the fixed fields or the name must be
  // rejected, never over-read. (The file field is the payload remainder by
  // design — truncating it yields a *shorter file name*, which the apply
  // path's ".xqpack" validation rejects; see HostileRecordsRejected.)
  const size_t kFixedAndName = 36 + record.name.size();
  for (size_t len = 0; len < kFixedAndName; ++len) {
    EXPECT_FALSE(net::DecodeReplRecord(wire.substr(0, len), &out))
        << "accepted truncation at " << len;
  }
  ASSERT_TRUE(net::DecodeReplRecord(wire.substr(0, kFixedAndName), &out));
  EXPECT_TRUE(out.file.empty());
}

TEST(ReplCodecTest, ChunkRoundTripAndHostile) {
  net::ReplChunkPayload chunk;
  chunk.generation = 9;
  chunk.offset = 100;
  chunk.total_size = 200;
  chunk.epoch = 5;
  chunk.bytes = std::string(50, 'x');
  const std::string wire = net::EncodeReplChunk(chunk);
  net::ReplChunkPayload out;
  ASSERT_TRUE(net::DecodeReplChunk(wire, &out));
  EXPECT_EQ(out.generation, 9u);
  EXPECT_EQ(out.offset, 100u);
  EXPECT_EQ(out.total_size, 200u);
  EXPECT_EQ(out.epoch, 5u);
  EXPECT_EQ(out.bytes, chunk.bytes);
  // offset past total_size.
  chunk.offset = 300;
  EXPECT_FALSE(net::DecodeReplChunk(net::EncodeReplChunk(chunk), &out));
  // bytes overrunning total_size.
  chunk.offset = 180;
  EXPECT_FALSE(net::DecodeReplChunk(net::EncodeReplChunk(chunk), &out));
  for (size_t len = 0; len < 32; ++len) {
    EXPECT_FALSE(net::DecodeReplChunk(wire.substr(0, len), &out));
  }
}

TEST(ReplCodecTest, HeartbeatRoundTripAndHostile) {
  net::ReplHeartbeatPayload heartbeat;
  heartbeat.epoch = 2;
  heartbeat.max_generation = 31;
  heartbeat.live.push_back({"a.xml", 30});
  heartbeat.live.push_back({"b.xml", 31});
  const std::string wire = net::EncodeReplHeartbeat(heartbeat);
  net::ReplHeartbeatPayload out;
  ASSERT_TRUE(net::DecodeReplHeartbeat(wire, &out));
  EXPECT_EQ(out.epoch, 2u);
  EXPECT_EQ(out.max_generation, 31u);
  ASSERT_EQ(out.live.size(), 2u);
  EXPECT_EQ(out.live[0].name, "a.xml");
  EXPECT_EQ(out.live[0].generation, 30u);
  EXPECT_EQ(out.live[1].name, "b.xml");
  EXPECT_EQ(out.live[1].generation, 31u);
  // Empty census is legal (an empty store heartbeats too).
  net::ReplHeartbeatPayload empty;
  empty.max_generation = 0;
  ASSERT_TRUE(net::DecodeReplHeartbeat(net::EncodeReplHeartbeat(empty), &out));
  EXPECT_TRUE(out.live.empty());
  // Hostile: truncations and a census count far beyond the payload (the
  // classic pre-allocation bomb) must be rejected before any allocation.
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(net::DecodeReplHeartbeat(wire.substr(0, len), &out))
        << "accepted truncation at " << len;
  }
  std::string bomb = wire.substr(0, 16);  // [u64 epoch][u64 max_generation]
  bomb += std::string("\xff\xff\xff\xff", 4);  // live_count = 2^32-1
  EXPECT_FALSE(net::DecodeReplHeartbeat(bomb, &out));
}

// ---------------------------------------------------------------------------
// Staleness gate

TEST(StalenessGateTest, UnboundedPolicyAdmitsHoweverStale) {
  exec::StalenessGate gate;  // default policy: no bounds
  EXPECT_TRUE(gate.Admit().ok());  // no heartbeat ever — still serves
  gate.Publish(/*generation_lag=*/1'000'000, /*heartbeat_micros=*/1);
  EXPECT_TRUE(gate.Admit().ok());
}

TEST(StalenessGateTest, GenerationLagBoundShedsWithRetryHint) {
  exec::StalenessGate gate;
  gate.Configure({/*max_generation_lag=*/2, /*max_heartbeat_age_micros=*/0});
  gate.Publish(2, 0);
  EXPECT_TRUE(gate.Admit().ok());
  gate.Publish(3, 0);
  const Status status = gate.Admit();
  ASSERT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(exec::RetryAfterMicrosFromStatus(status), 0u);
}

TEST(StalenessGateTest, HeartbeatAgeBoundSheds) {
  exec::StalenessGate gate;
  gate.Configure({0, /*max_heartbeat_age_micros=*/50'000'000});
  // No heartbeat yet: age is unknown (UINT64_MAX), must shed.
  EXPECT_EQ(gate.Admit().code(), StatusCode::kResourceExhausted);
  gate.Publish(0, std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
  EXPECT_TRUE(gate.Admit().ok());
  EXPECT_LT(gate.HeartbeatAgeMicros(), 50'000'000u);
}

TEST(StalenessGateTest, DatabaseRunChecksInstalledGate) {
  Database db;
  ASSERT_TRUE(db.RegisterDocument("bib.xml", MakeBib(3)).ok());
  auto gate = std::make_shared<exec::StalenessGate>();
  gate->Configure({/*max_generation_lag=*/1, 0});
  gate->Publish(/*generation_lag=*/5, 0);
  db.SetReadGate(gate);
  auto shed = db.QueryPath("//book/title");
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  gate->Publish(0, 0);
  EXPECT_TRUE(db.QueryPath("//book/title").ok());
  db.SetReadGate(nullptr);
  gate->Publish(5, 0);
  EXPECT_TRUE(db.QueryPath("//book/title").ok());
}

// ---------------------------------------------------------------------------
// Follower mode is read-only

TEST(FollowerModeTest, PersistAndRemoveRefuse) {
  TempDir dir("repl_follower_ro_store");
  Database db;
  ASSERT_TRUE(db.Attach(dir.path()).ok());
  ASSERT_TRUE(db.RegisterDocument("bib.xml", MakeBib(3)).ok());
  db.SetFollower(true);
  EXPECT_EQ(db.Persist("bib.xml").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Remove("bib.xml").code(), StatusCode::kInvalidArgument);
  // Queries still serve.
  EXPECT_TRUE(db.QueryPath("//book/title").ok());
  db.SetFollower(false);
  EXPECT_TRUE(db.Persist("bib.xml").ok());
}

// ---------------------------------------------------------------------------
// End-to-end: primary server + follower client

class ReplEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Instance().Reset();
    primary_dir_ = std::make_unique<TempDir>("repl_primary_store");
    follower_dir_ = std::make_unique<TempDir>("repl_follower_store");
    primary_db_ = std::make_unique<Database>();
    ASSERT_TRUE(primary_db_->Attach(primary_dir_->path()).ok());
    StartServer();
  }

  void TearDown() override {
    if (follower_ != nullptr) follower_->Stop();
    follower_.reset();
    follower_db_.reset();
    if (server_ != nullptr) (void)server_->Shutdown();
    server_.reset();
    primary_db_.reset();
    FaultInjector::Instance().Reset();
  }

  void StartServer() {
    net::ServerConfig config = FastServerConfig();
    config.port = port_;  // 0 on first start; the bound port on restarts
    server_ = std::make_unique<net::Server>(primary_db_.get(), config);
    ASSERT_TRUE(server_->Start().ok());
    port_ = server_->port();
  }

  void StartFollower(ReplicationConfig config) {
    follower_db_ = std::make_unique<Database>();
    follower_ = std::make_unique<ReplicationClient>(follower_db_.get(),
                                                    std::move(config));
    ASSERT_TRUE(follower_->Start().ok());
  }
  void StartFollower() {
    StartFollower(FastReplConfig(port_, follower_dir_->path()));
  }

  uint64_t PrimaryGeneration() {
    auto delta = primary_db_->ReplDeltaFrom(0);
    return delta.ok() ? delta->max_generation : 0;
  }

  /// True once the follower has applied everything the primary has.
  bool Converged() {
    return follower_->stats().cursor == PrimaryGeneration();
  }

  std::unique_ptr<TempDir> primary_dir_;
  std::unique_ptr<TempDir> follower_dir_;
  std::unique_ptr<Database> primary_db_;
  std::unique_ptr<Database> follower_db_;
  std::unique_ptr<net::Server> server_;
  std::unique_ptr<ReplicationClient> follower_;
  uint16_t port_ = 0;
};

TEST_F(ReplEndToEndTest, FollowerConvergesAndServesOracleByteIdentically) {
  ASSERT_TRUE(primary_db_->RegisterDocument("auction.xml", MakeAuction()).ok());
  ASSERT_TRUE(primary_db_->Persist("auction.xml").ok());
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(20)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());

  StartFollower();
  ASSERT_TRUE(WaitFor([&] { return Converged(); }))
      << follower_->stats().ToString();

  // The acceptance oracle: all 54 shared queries, byte-identical.
  for (const char* path : tests::kAuctionXPaths) {
    auto want = primary_db_->QueryPath(path, "auction.xml");
    auto got = follower_db_->QueryPath(path, "auction.xml");
    ASSERT_TRUE(want.ok()) << path;
    ASSERT_TRUE(got.ok()) << path << ": " << got.status().ToString();
    EXPECT_EQ(Database::ToXml(*got), Database::ToXml(*want)) << path;
  }
  for (const char* path : tests::kRandomTreeXPaths) {
    // The random-tree vocabulary never matches the auction document; both
    // sides must agree on the empty result too.
    auto want = primary_db_->QueryPath(path, "auction.xml");
    auto got = follower_db_->QueryPath(path, "auction.xml");
    ASSERT_TRUE(want.ok()) << path;
    ASSERT_TRUE(got.ok()) << path;
    EXPECT_EQ(Database::ToXml(*got), Database::ToXml(*want)) << path;
  }
  for (const char* query : tests::kAuctionXQueries) {
    auto want = primary_db_->Query(query);
    auto got = follower_db_->Query(query);
    ASSERT_TRUE(want.ok()) << query;
    ASSERT_TRUE(got.ok()) << query << ": " << got.status().ToString();
    EXPECT_EQ(Database::ToXml(*got), Database::ToXml(*want)) << query;
  }

  const ReplicationStats stats = follower_->stats();
  EXPECT_TRUE(stats.connected);
  EXPECT_EQ(stats.records_applied, 2u);
  EXPECT_EQ(stats.generation_lag, 0u);
  EXPECT_LT(stats.heartbeat_age_micros, 10'000'000u);
}

TEST_F(ReplEndToEndTest, LiveCatchUpReplaceAndCensusRemoval) {
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(5)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());
  StartFollower();
  ASSERT_TRUE(WaitFor([&] { return Converged(); }));
  EXPECT_EQ(DocImage(*follower_db_, "bib.xml"),
            DocImage(*primary_db_, "bib.xml"));

  // Live catch-up: a new document persisted while the follower streams.
  ASSERT_TRUE(primary_db_->RegisterDocument("more.xml", MakeBib(9)).ok());
  ASSERT_TRUE(primary_db_->Persist("more.xml").ok());
  ASSERT_TRUE(WaitFor([&] {
    return Converged() && follower_db_->Contains("more.xml");
  })) << follower_->stats().ToString();
  EXPECT_EQ(DocImage(*follower_db_, "more.xml"),
            DocImage(*primary_db_, "more.xml"));

  // Replace: a higher generation of an existing document.
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(12)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());
  ASSERT_TRUE(WaitFor([&] {
    return Converged() && DocImage(*follower_db_, "bib.xml") ==
                              DocImage(*primary_db_, "bib.xml");
  })) << follower_->stats().ToString();

  // Removal propagates through the heartbeat census (its journal record
  // may never ship).
  ASSERT_TRUE(primary_db_->Remove("more.xml").ok());
  ASSERT_TRUE(WaitFor([&] { return !follower_db_->Contains("more.xml"); }))
      << follower_->stats().ToString();
  EXPECT_GE(follower_->stats().removes_applied, 1u);
  // The survivor still serves.
  EXPECT_EQ(DocImage(*follower_db_, "bib.xml"),
            DocImage(*primary_db_, "bib.xml"));
}

TEST_F(ReplEndToEndTest, FollowerServesThroughPrimaryDeathAndReconnects) {
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(7)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());
  StartFollower();
  ASSERT_TRUE(WaitFor([&] { return Converged(); }));
  const std::string image = DocImage(*follower_db_, "bib.xml");
  ASSERT_FALSE(image.empty());

  // Primary dies. The follower must keep serving the same bytes and report
  // growing staleness, not fail.
  ASSERT_TRUE(server_->Shutdown().ok());
  server_.reset();
  ASSERT_TRUE(WaitFor([&] { return !follower_->stats().connected; }));
  EXPECT_EQ(DocImage(*follower_db_, "bib.xml"), image);
  EXPECT_TRUE(follower_db_->QueryPath("//book/title", "bib.xml").ok());
  const uint64_t age1 = follower_->stats().heartbeat_age_micros;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_GT(follower_->stats().heartbeat_age_micros, age1);

  // Primary returns (same port) with more data; the follower catches up
  // from its durable cursor without operator intervention.
  ASSERT_TRUE(primary_db_->RegisterDocument("late.xml", MakeBib(4)).ok());
  ASSERT_TRUE(primary_db_->Persist("late.xml").ok());
  StartServer();
  ASSERT_TRUE(WaitFor([&] {
    return follower_->stats().connected && Converged() &&
           follower_db_->Contains("late.xml");
  })) << follower_->stats().ToString();
  EXPECT_EQ(DocImage(*follower_db_, "late.xml"),
            DocImage(*primary_db_, "late.xml"));
  EXPECT_GE(follower_->stats().reconnects, 1u);
}

// The satellite regression: one connection carrying pipelined query
// responses AND the replication stream must demux by frame type — a
// heartbeat arriving before a response must not be mis-delivered as one.
TEST_F(ReplEndToEndTest, ClientDemuxesInterleavedResponseAndReplFrames) {
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(3)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());

  auto client = net::Client::Connect("127.0.0.1", port_);
  ASSERT_TRUE(client.ok());
  auto ack = client->Subscribe(0);
  ASSERT_TRUE(ack.ok());
  ASSERT_EQ(ack->code, StatusCode::kOk) << ack->body;

  // Let the stream frames (record + chunks + heartbeats) pile up first.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // A query issued now gets its response *behind* buffered stream frames;
  // ReadResponse must skip past them without losing either kind.
  auto request_id = client->SendQuery("//book/title");
  ASSERT_TRUE(request_id.ok());
  auto response = client->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->first, *request_id);
  EXPECT_EQ(response->second.code, StatusCode::kOk);
  EXPECT_NE(response->second.body.find("<title>"), std::string::npos);

  // The stashed stream frames come out of ReadReplFrame, starting with the
  // shipment announcement, in order.
  auto first = client->ReadReplFrame();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->type, net::FrameType::kReplRecord);
  bool saw_heartbeat = false;
  for (int i = 0; i < 10 && !saw_heartbeat; ++i) {
    auto frame = client->ReadReplFrame();
    ASSERT_TRUE(frame.ok());
    saw_heartbeat = frame->type == net::FrameType::kReplHeartbeat;
  }
  EXPECT_TRUE(saw_heartbeat);

  // And the connection still answers queries afterwards.
  auto again = client->Query("//book/title");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->code, StatusCode::kOk);
}

// ---------------------------------------------------------------------------
// Chaos: every repl.* and net.* fault, torn shipments, convergence after

TEST_F(ReplEndToEndTest, ChaosFaultsEventuallyConvergeWithoutFdLeaks) {
  ASSERT_TRUE(primary_db_->RegisterDocument("auction.xml", MakeAuction()).ok());
  ASSERT_TRUE(primary_db_->Persist("auction.xml").ok());
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(15)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());

  const size_t fds_before = OpenFdCount();

  // Every fault site on both halves, re-armed with finite counts so the
  // system must ride through repeated failures and then converge:
  //  - repl.ship.read / repl.ship.send: primary drops the subscriber
  //    mid-ship (torn shipment on the wire);
  //  - net.read / net.write: the serving tier's own link faults;
  //  - repl.apply.chunk: shipped bytes corrupted in flight — the CRC gate
  //    must reject the apply (count kept under max_apply_attempts so the
  //    re-ship eventually lands; the quarantine path has its own test).
  FaultInjector::Instance().Arm("repl.ship.read", /*skip=*/1, /*count=*/2);
  FaultInjector::Instance().Arm("repl.ship.send", /*skip=*/2, /*count=*/2);
  FaultInjector::Instance().Arm("net.write", /*skip=*/5, /*count=*/2);
  FaultInjector::Instance().Arm("net.read", /*skip=*/3, /*count=*/1);
  FaultInjector::Instance().Arm("repl.apply.chunk", /*skip=*/1, /*count=*/2);

  StartFollower();

  // While the link is being tortured, keep the primary moving.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(
        primary_db_->RegisterDocument("churn.xml", MakeBib(3 + round)).ok());
    ASSERT_TRUE(primary_db_->Persist("churn.xml").ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Once the armed counts are exhausted the stream must converge.
  ASSERT_TRUE(WaitFor([&] { return Converged(); }, 30'000))
      << follower_->stats().ToString();
  FaultInjector::Instance().Reset();

  for (const char* name : {"auction.xml", "bib.xml", "churn.xml"}) {
    EXPECT_EQ(DocImage(*follower_db_, name), DocImage(*primary_db_, name))
        << name;
  }
  // No torn state: the follower's store re-attaches cleanly to the same
  // catalog (proof the journal holds only committed generations).
  follower_->Stop();
  const std::string churn_image = DocImage(*follower_db_, "churn.xml");
  follower_db_.reset();
  Database reattached;
  auto report = reattached.Attach(follower_dir_->path());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->quarantined.empty()) << report->ToString();
  EXPECT_EQ(DocImage(reattached, "churn.xml"), churn_image);

  // Zero fd leaks across connects, faults, reconnects and shutdowns.
  follower_.reset();
  ASSERT_TRUE(server_->Shutdown().ok());
  server_.reset();
  const size_t fds_after = OpenFdCount();
  EXPECT_LE(fds_after, fds_before) << "fd leak: " << fds_before << " -> "
                                   << fds_after;
}

// Divergence: a shipment that keeps failing verification is quarantined —
// the follower keeps serving the previous generation and picks up the next
// clean one. Degrade, never drop.
TEST_F(ReplEndToEndTest, PersistentCorruptionQuarantinesGenerationKeepsOld) {
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(5)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());
  StartFollower();
  ASSERT_TRUE(WaitFor([&] { return Converged(); }));
  const std::string v1 = DocImage(*follower_db_, "bib.xml");

  // Every shipped chunk corrupts from here on: v2 can never verify.
  FaultInjector::Instance().Arm("repl.apply.chunk");
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(25)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());
  ASSERT_TRUE(WaitFor([&] {
    return follower_->stats().divergence_quarantines >= 1;
  })) << follower_->stats().ToString();

  // Quarantined generation: cursor moved past it, previous keeps serving.
  EXPECT_TRUE(WaitFor([&] { return Converged(); }));
  EXPECT_EQ(DocImage(*follower_db_, "bib.xml"), v1);
  EXPECT_TRUE(follower_db_->QueryPath("//book/title", "bib.xml").ok());

  // Corruption clears; the next generation ships clean and replaces v1.
  FaultInjector::Instance().Reset();
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(40)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());
  ASSERT_TRUE(WaitFor([&] {
    return Converged() && DocImage(*follower_db_, "bib.xml") ==
                              DocImage(*primary_db_, "bib.xml");
  })) << follower_->stats().ToString();
  EXPECT_NE(DocImage(*follower_db_, "bib.xml"), v1);
}

// ---------------------------------------------------------------------------
// Crash matrix: fork a child, kill it at every ApplyReplicated write
// boundary, assert recovery yields exactly the old or exactly the new
// generation — never a torn hybrid — and that the orphan sweep leaves no
// stray files.

struct Shipment {
  ManifestRecord record;
  std::string bytes;
};

/// Builds a primary store holding one persisted bib of `books` books and
/// returns its shipment (the manifest record + snapshot bytes a follower
/// would receive).
Shipment BuildShipment(const std::string& dir, size_t books) {
  Database db;
  EXPECT_TRUE(db.Attach(dir).ok());
  EXPECT_TRUE(db.RegisterDocument("bib.xml", MakeBib(books)).ok());
  EXPECT_TRUE(db.Persist("bib.xml").ok());
  auto delta = db.ReplDeltaFrom(0);
  EXPECT_TRUE(delta.ok());
  EXPECT_EQ(delta->pending.size(), 1u);
  Shipment shipment;
  shipment.record = delta->pending.front();
  auto bytes = FileBytes::ReadWhole(dir + "/" + shipment.record.file);
  EXPECT_TRUE(bytes.ok());
  shipment.bytes.assign(bytes->data(), bytes->size());
  return shipment;
}

/// Forks a child that attaches `dir`, arms XMLQ_CRASH=`site`, and applies
/// the shipment. 2 = killed at the site, 0 = completed without hitting it.
int RunApplyCrashChild(const std::string& dir, const Shipment& shipment,
                       const std::string& site) {
  const pid_t pid = fork();
  if (pid == 0) {
    // In the child: only _exit() paths from here on (no gtest teardown).
    Database db;
    if (!db.Attach(dir, SnapshotOpenMode::kCopy).ok()) _exit(3);
    ::setenv("XMLQ_CRASH", site.c_str(), 1);
    const Status status = db.ApplyReplicated(shipment.record, shipment.bytes);
    _exit(status.ok() ? 0 : 4);
  }
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
}

/// Files in `dir` (names only), for the no-stray-files assertion.
std::vector<std::string> StoreFiles(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    names.push_back(entry.path().filename().string());
  }
  return names;
}

TEST(ReplCrashMatrixTest, EveryApplyKillPointRecoversToOldOrNew) {
  // Every write boundary of ApplyReplicated: its own kill points plus the
  // atomic-write and manifest-append sites it runs through.
  const char* kSites[] = {
      "repl.apply.begin",
      "file.atomic.torn",
      "file.atomic.tmp_written",
      "file.atomic.tmp_synced",
      "file.atomic.renamed",
      "repl.apply.snapshot_written",
      "file.append.torn",
      "file.append.written",
      "file.append.synced",
      "repl.apply.committed",
  };

  TempDir source_v1("repl_crash_src_v1");
  TempDir source_v2("repl_crash_src_v2");
  const Shipment v1 = BuildShipment(source_v1.path(), 12);
  Shipment v2 = BuildShipment(source_v2.path(), 25);
  // Make v2 a *replacement* shipped after v1: same name, higher generation,
  // distinct file (generations never share file names).
  v2.record.generation = v1.record.generation + 1;
  v2.record.file = "bib.xml.g" + std::to_string(v2.record.generation) +
                   ".xqpack";

  Database oracle_v1, oracle_v2;
  ASSERT_TRUE(oracle_v1.RegisterDocument("bib.xml", MakeBib(12)).ok());
  ASSERT_TRUE(oracle_v2.RegisterDocument("bib.xml", MakeBib(25)).ok());
  const std::string old_image = DocImage(oracle_v1, "bib.xml");
  const std::string new_image = DocImage(oracle_v2, "bib.xml");

  for (const char* site : kSites) {
    for (const bool replace : {false, true}) {
      SCOPED_TRACE(std::string(site) + (replace ? " [replace]" : " [fresh]"));
      TempDir dir("repl_crash_follower");
      if (replace) {
        // Seed the follower with v1 committed, then crash applying v2.
        Database seed;
        ASSERT_TRUE(seed.Attach(dir.path()).ok());
        ASSERT_TRUE(seed.ApplyReplicated(v1.record, v1.bytes).ok());
      }
      const Shipment& shipment = replace ? v2 : v1;
      const int code = RunApplyCrashChild(dir.path(), shipment, site);
      ASSERT_EQ(code, 2) << "site not reached";

      // Recovery: exactly old or exactly new, and the orphan sweep leaves
      // only the journal plus the live snapshots.
      Database recovered;
      auto report = recovered.Attach(dir.path());
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_TRUE(report->quarantined.empty()) << report->ToString();
      const std::string got = DocImage(recovered, "bib.xml");
      const std::string expect_old = replace ? old_image : std::string();
      const std::string expect_new = replace ? new_image : old_image;
      EXPECT_TRUE(got == expect_old || got == expect_new)
          << "torn state: " << got.size() << " bytes matches neither image";
      auto delta = recovered.ReplDeltaFrom(0);
      ASSERT_TRUE(delta.ok());
      const size_t live_docs = delta->live.size();
      const std::vector<std::string> files = StoreFiles(dir.path());
      EXPECT_EQ(files.size(), 1 + live_docs) << "stray files left behind";
    }
  }
}

// Applying the same shipment twice (re-ship after a crash or reconnect)
// must be a no-op the second time — idempotence by name and generation.
TEST(ReplCrashMatrixTest, ReShippedRecordIsIdempotent) {
  TempDir source("repl_idem_src");
  const Shipment shipment = BuildShipment(source.path(), 8);
  TempDir dir("repl_idem_follower");
  Database db;
  ASSERT_TRUE(db.Attach(dir.path()).ok());
  ASSERT_TRUE(db.ApplyReplicated(shipment.record, shipment.bytes).ok());
  const std::string image = DocImage(db, "bib.xml");
  ASSERT_TRUE(db.ApplyReplicated(shipment.record, shipment.bytes).ok());
  EXPECT_EQ(DocImage(db, "bib.xml"), image);
  auto delta = db.ReplDeltaFrom(0);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->max_generation, shipment.record.generation);
  // Corrupted re-ship of an already-applied generation is also a no-op
  // (skipped before verification), not an error.
  std::string corrupt = shipment.bytes;
  corrupt[0] ^= 0x01;
  EXPECT_TRUE(db.ApplyReplicated(shipment.record, corrupt).ok());
  EXPECT_EQ(DocImage(db, "bib.xml"), image);
}

// Hostile records must be rejected before any disk write: bad op, empty
// name, path traversal in the file name, wrong-size and wrong-CRC bytes.
TEST(ReplCrashMatrixTest, HostileRecordsRejected) {
  TempDir source("repl_hostile_src");
  const Shipment good = BuildShipment(source.path(), 4);
  TempDir dir("repl_hostile_follower");
  Database db;
  ASSERT_TRUE(db.Attach(dir.path()).ok());

  ManifestRecord record = good.record;
  record.op = ManifestOp::kRemove;
  EXPECT_FALSE(db.ApplyReplicated(record, good.bytes).ok());

  record = good.record;
  record.name.clear();
  EXPECT_FALSE(db.ApplyReplicated(record, good.bytes).ok());

  record = good.record;
  record.file = "../escape.xqpack";
  EXPECT_FALSE(db.ApplyReplicated(record, good.bytes).ok());

  record = good.record;
  record.file = "not_a_pack.txt";
  EXPECT_FALSE(db.ApplyReplicated(record, good.bytes).ok());

  record = good.record;
  record.snapshot_size = good.bytes.size() + 1;
  EXPECT_FALSE(db.ApplyReplicated(record, good.bytes).ok());

  record = good.record;
  record.snapshot_crc ^= 0x1;
  EXPECT_FALSE(db.ApplyReplicated(record, good.bytes).ok());

  // Nothing was committed; the store is still empty and attachable.
  auto delta = db.ReplDeltaFrom(0);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->live.empty());
  EXPECT_TRUE(db.ApplyReplicated(good.record, good.bytes).ok());
}

// The injected apply fault (the chaos matrix's handle on "apply failed
// after the bytes arrived intact") must fail cleanly and leave no state.
TEST(ReplCrashMatrixTest, InjectedApplyCommitFaultLeavesNoState) {
  TempDir source("repl_fault_src");
  const Shipment shipment = BuildShipment(source.path(), 6);
  TempDir dir("repl_fault_follower");
  Database db;
  ASSERT_TRUE(db.Attach(dir.path()).ok());
  FaultInjector::Instance().Arm("repl.apply.commit", 0, 1);
  EXPECT_FALSE(db.ApplyReplicated(shipment.record, shipment.bytes).ok());
  FaultInjector::Instance().Reset();
  EXPECT_FALSE(db.Contains("bib.xml"));
  // Retry succeeds.
  EXPECT_TRUE(db.ApplyReplicated(shipment.record, shipment.bytes).ok());
  EXPECT_TRUE(db.Contains("bib.xml"));
}

// ---------------------------------------------------------------------------
// The replication epoch (DESIGN.md §14): persisted in the manifest, replayed
// on open, monotone, and a compaction survivor.

TEST(ManifestEpochTest, PersistsReplaysMonotoneAndSurvivesCompaction) {
  TempDir dir("repl_epoch_manifest");
  {
    auto manifest = storage::Manifest::Open(dir.path());
    ASSERT_TRUE(manifest.ok());
    EXPECT_EQ(manifest->epoch(), 0u);
    ManifestRecord epoch_record;
    epoch_record.op = ManifestOp::kEpoch;
    epoch_record.generation = 3;  // kEpoch stores the term in `generation`
    ASSERT_TRUE(manifest->Append(epoch_record).ok());
    EXPECT_EQ(manifest->epoch(), 3u);
    // Monotone: a stale/lower term replayed later never regresses it.
    epoch_record.generation = 2;
    ASSERT_TRUE(manifest->Append(epoch_record).ok());
    EXPECT_EQ(manifest->epoch(), 3u);
    // The epoch is not the generation clock, and it never ships: the
    // subscriber delta carries registrations only.
    EXPECT_EQ(manifest->max_generation(), 0u);
    EXPECT_TRUE(manifest->LiveRecordsAbove(0).empty());
  }
  {
    auto reopened = storage::Manifest::Open(dir.path());
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened->epoch(), 3u);
    ASSERT_TRUE(reopened->Compact().ok());
    EXPECT_EQ(reopened->epoch(), 3u);
  }
  auto compacted = storage::Manifest::Open(dir.path());
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ(compacted->epoch(), 3u);
}

TEST(PromoteTest, BumpsPersistsAndLiftsFollowerMode) {
  TempDir dir("repl_promote_store");
  {
    Database db;
    ASSERT_TRUE(db.Attach(dir.path()).ok());
    EXPECT_EQ(db.epoch(), 0u);
    db.SetFollower(true);
    auto epoch = db.Promote();
    ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
    EXPECT_EQ(*epoch, 1u);
    EXPECT_EQ(db.epoch(), 1u);
    // Follower mode lifted: writes accepted again.
    ASSERT_TRUE(db.RegisterDocument("bib.xml", MakeBib(3)).ok());
    EXPECT_TRUE(db.Persist("bib.xml").ok());
    // AdoptEpoch is monotone: lower or equal terms are no-ops, higher
    // terms persist.
    ASSERT_TRUE(db.AdoptEpoch(1).ok());
    EXPECT_EQ(db.epoch(), 1u);
    ASSERT_TRUE(db.AdoptEpoch(9).ok());
    EXPECT_EQ(db.epoch(), 9u);
  }
  // The epoch is durable and the next promotion continues from it.
  Database reopened;
  ASSERT_TRUE(reopened.Attach(dir.path()).ok());
  EXPECT_EQ(reopened.epoch(), 9u);
  auto epoch = reopened.Promote();
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 10u);
}

TEST(PromoteTest, WithoutStoreRefuses) {
  Database db;
  EXPECT_EQ(db.Promote().status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.AdoptEpoch(5).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(db.AdoptEpoch(0).ok());  // no-op needs no store
}

// Satellite: the follower write refusal is structured — it names the
// primary (when known) and carries a machine-readable retry-after hint.
TEST(FollowerModeTest, RefusalNamesPrimaryAndCarriesRetryHint) {
  TempDir dir("repl_refusal_store");
  Database db;
  ASSERT_TRUE(db.Attach(dir.path()).ok());
  ASSERT_TRUE(db.RegisterDocument("bib.xml", MakeBib(3)).ok());
  db.SetFollower(true);
  // Primary unknown: still a structured refusal with a retry hint.
  Status status = db.Persist("bib.xml");
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("primary unknown"), std::string::npos)
      << status.message();
  EXPECT_GT(exec::RetryAfterMicrosFromStatus(status), 0u);
  // With the hint installed (ReplicationClient::Start does this), the
  // refusal tells the client exactly where writes go.
  db.SetPrimaryHint("10.1.2.3:7227");
  status = db.Remove("bib.xml");
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("10.1.2.3:7227"), std::string::npos)
      << status.message();
  EXPECT_GT(exec::RetryAfterMicrosFromStatus(status), 0u);
}

// ---------------------------------------------------------------------------
// Promotion crash matrix: fork a child, kill it at every write boundary of
// Promote(), assert recovery lands on exactly the old or exactly the new
// epoch — never torn, never skipped ahead.

/// Forks a child that attaches `dir`, arms XMLQ_CRASH=`site`, and promotes.
/// 2 = killed at the site, 0 = completed without hitting it.
int RunPromoteCrashChild(const std::string& dir, const std::string& site) {
  const pid_t pid = fork();
  if (pid == 0) {
    // In the child: only _exit() paths from here on (no gtest teardown).
    Database db;
    if (!db.Attach(dir, SnapshotOpenMode::kCopy).ok()) _exit(3);
    ::setenv("XMLQ_CRASH", site.c_str(), 1);
    auto epoch = db.Promote();
    _exit(epoch.ok() ? 0 : 4);
  }
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
}

TEST(PromoteCrashMatrixTest, EveryPromoteKillPointYieldsOldOrNewEpoch) {
  // Promote() is one fsync'd manifest append, so its boundaries are its own
  // kill points plus the append sites it runs through.
  const char* kSites[] = {
      "promote.begin",
      "file.append.torn",
      "file.append.written",
      "file.append.synced",
      "promote.committed",
  };
  for (const char* site : kSites) {
    SCOPED_TRACE(site);
    TempDir dir("repl_promote_crash");
    {
      // Seed: a store with data and a non-zero starting term.
      Database seed;
      ASSERT_TRUE(seed.Attach(dir.path()).ok());
      ASSERT_TRUE(seed.RegisterDocument("bib.xml", MakeBib(4)).ok());
      ASSERT_TRUE(seed.Persist("bib.xml").ok());
      ASSERT_TRUE(seed.AdoptEpoch(2).ok());
    }
    ASSERT_EQ(RunPromoteCrashChild(dir.path(), site), 2) << "site not reached";

    Database recovered;
    auto report = recovered.Attach(dir.path());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->quarantined.empty()) << report->ToString();
    // Exactly the old or exactly the new term.
    EXPECT_TRUE(recovered.epoch() == 2u || recovered.epoch() == 3u)
        << "torn epoch: " << recovered.epoch();
    // The store still serves, and the next promotion still lands.
    EXPECT_TRUE(recovered.QueryPath("//book/title", "bib.xml").ok());
    auto epoch = recovered.Promote();
    ASSERT_TRUE(epoch.ok());
    EXPECT_TRUE(*epoch == 3u || *epoch == 4u) << *epoch;
  }
}

// ---------------------------------------------------------------------------
// Split-brain prevention: the epoch fence at every layer (DESIGN.md §14)

// Server-side fence: a subscriber announcing a term from the future (it was
// promoted; we are the stale side) is refused at the subscribe ack, and the
// refused follower is not harmed — it keeps serving, keeps its epoch, and
// backs off instead of spinning (a refused stream never resets the rung).
TEST_F(ReplEndToEndTest, ServerFencesSubscriberFromTheFuture) {
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(5)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());
  StartFollower();
  ASSERT_TRUE(WaitFor([&] { return Converged(); }));
  const std::string image = DocImage(*follower_db_, "bib.xml");
  follower_->Stop();
  follower_.reset();
  follower_db_.reset();

  // The follower's store learns of a promotion this primary never saw.
  {
    Database db;
    ASSERT_TRUE(db.Attach(follower_dir_->path()).ok());
    ASSERT_TRUE(db.AdoptEpoch(5).ok());
  }
  StartFollower();
  ASSERT_TRUE(WaitFor([&] {
    return follower_->stats().fenced_rejections >= 1;
  })) << follower_->stats().ToString();
  EXPECT_GE(server_->stats().repl_fenced_subscribes, 1u);
  // Fencing never corrupts the follower: it keeps serving its catalog and
  // its adopted term.
  EXPECT_EQ(DocImage(*follower_db_, "bib.xml"), image);
  EXPECT_EQ(follower_db_->epoch(), 5u);
  EXPECT_EQ(follower_->stats().epoch, 5u);
  // The backoff reset is earned by an applied shipment; refused streams
  // climb the rungs.
  ASSERT_TRUE(WaitFor([&] {
    return follower_->stats().backoff_attempt >= 3;
  })) << follower_->stats().ToString();
}

// Client-side fence, heartbeat and record cells. The stream is ordered, so
// whichever frame type arrives first after a local term change must trip
// the fence (CheckFrameEpoch guards the ack, record, chunk, heartbeat and
// the apply commit identically).
TEST_F(ReplEndToEndTest, MidStreamTermChangeFencesHeartbeatAndRecordFrames) {
  // Heartbeat cell: a caught-up stream carries only heartbeats; adopting a
  // newer term locally fences the very next one.
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(5)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());
  StartFollower();
  ASSERT_TRUE(WaitFor([&] { return Converged(); }));
  ASSERT_TRUE(follower_db_->AdoptEpoch(3).ok());
  ASSERT_TRUE(WaitFor([&] {
    return follower_->stats().fenced_rejections >= 1;
  })) << follower_->stats().ToString();
  const std::string image = DocImage(*follower_db_, "bib.xml");
  EXPECT_EQ(DocImage(*primary_db_, "bib.xml"), image);
  follower_->Stop();
  follower_.reset();
  follower_db_.reset();

  // Record cell: restart the primary with heartbeats effectively off and a
  // fresh follower store. Once caught up (silent link), adopt a newer term
  // locally, then persist on the primary — the fence must trip on the
  // record frame itself.
  ASSERT_TRUE(server_->Shutdown().ok());
  server_.reset();
  net::ServerConfig quiet = FastServerConfig();
  quiet.port = port_;
  quiet.repl_heartbeat_micros = 60'000'000;
  server_ = std::make_unique<net::Server>(primary_db_.get(), quiet);
  ASSERT_TRUE(server_->Start().ok());
  port_ = server_->port();
  TempDir fresh_dir("repl_fence_record_store");
  StartFollower(FastReplConfig(port_, fresh_dir.path()));
  ASSERT_TRUE(WaitFor([&] { return Converged(); }))
      << follower_->stats().ToString();
  const uint64_t fenced_before = follower_->stats().fenced_rejections;
  ASSERT_TRUE(follower_db_->AdoptEpoch(7).ok());
  ASSERT_TRUE(primary_db_->RegisterDocument("late.xml", MakeBib(4)).ok());
  ASSERT_TRUE(primary_db_->Persist("late.xml").ok());
  ASSERT_TRUE(WaitFor([&] {
    return follower_->stats().fenced_rejections > fenced_before;
  })) << follower_->stats().ToString();
  // The fenced shipment never applied, and the store re-attaches clean.
  EXPECT_FALSE(follower_db_->Contains("late.xml"));
  EXPECT_EQ(DocImage(*follower_db_, "bib.xml"),
            DocImage(*primary_db_, "bib.xml"));
  follower_->Stop();
  follower_.reset();
  follower_db_.reset();
  Database reattached;
  auto report = reattached.Attach(fresh_dir.path());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->quarantined.empty()) << report->ToString();
  EXPECT_EQ(reattached.epoch(), 7u);
  EXPECT_FALSE(reattached.Contains("late.xml"));
}

// The full failover story at library level, driven over the wire: promote
// the follower with the kPromote admin frame, write on both sides of the
// partition, then re-point the stale primary at the new one — it must
// auto-demote (adopt the term durably), drop its forked write via the
// census, resync what it lacks, and refuse writes from then on.
TEST_F(ReplEndToEndTest, PromoteOverWireStalePrimaryAutoDemotesAndReconverges) {
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(6)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());
  ASSERT_TRUE(primary_db_->RegisterDocument("keep.xml", MakeBib(3)).ok());
  ASSERT_TRUE(primary_db_->Persist("keep.xml").ok());
  StartFollower();
  ASSERT_TRUE(WaitFor([&] { return Converged(); }));

  // Stand the follower up as a server with the promote hook wired the way
  // xmlq_serve wires it: stop replicating first, then bump the epoch.
  net::ServerConfig new_primary_config = FastServerConfig();
  new_primary_config.on_promote = [this]() -> Result<uint64_t> {
    if (follower_ != nullptr) follower_->Stop();
    return follower_db_->Promote();
  };
  net::Server new_primary(follower_db_.get(), new_primary_config);
  ASSERT_TRUE(new_primary.Start().ok());

  auto admin = net::Client::Connect("127.0.0.1", new_primary.port());
  ASSERT_TRUE(admin.ok());
  auto ack = admin->Promote();
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  ASSERT_EQ(ack->code, StatusCode::kOk) << ack->body;
  EXPECT_NE(ack->body.find("epoch=1"), std::string::npos) << ack->body;
  EXPECT_EQ(follower_db_->epoch(), 1u);
  EXPECT_GE(new_primary.stats().promotes, 1u);

  // The new primary accepts writes; the old one diverges behind the
  // partition (a split-brain write that must not survive).
  ASSERT_TRUE(follower_db_->RegisterDocument("new.xml", MakeBib(9)).ok());
  ASSERT_TRUE(follower_db_->Persist("new.xml").ok());
  ASSERT_TRUE(primary_db_->RegisterDocument("fork.xml", MakeBib(2)).ok());
  ASSERT_TRUE(primary_db_->Persist("fork.xml").ok());

  // Operators (and failover_smoke.sh) read the term off the stats frame.
  auto stats_body = admin->Stats();
  ASSERT_TRUE(stats_body.ok());
  EXPECT_NE(stats_body->body.find("epoch=1\n"), std::string::npos)
      << stats_body->body;

  // The stale primary comes back and is re-pointed at the new one.
  ASSERT_TRUE(server_->Shutdown().ok());
  server_.reset();
  auto demoted = std::make_unique<ReplicationClient>(
      primary_db_.get(),
      FastReplConfig(new_primary.port(), primary_dir_->path()));
  ASSERT_TRUE(demoted->Start().ok());
  ASSERT_TRUE(WaitFor([&] {
    return primary_db_->epoch() == 1 && !primary_db_->Contains("fork.xml") &&
           primary_db_->Contains("new.xml");
  })) << demoted->stats().ToString();
  for (const char* name : {"bib.xml", "keep.xml", "new.xml"}) {
    EXPECT_EQ(DocImage(*primary_db_, name), DocImage(*follower_db_, name))
        << name;
  }
  // Demoted means read-only, with the refusal pointing at the new primary.
  const Status refused = primary_db_->Persist("bib.xml");
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(refused.message().find(std::to_string(new_primary.port())),
            std::string::npos)
      << refused.message();
  demoted->Stop();
  demoted.reset();
  // The adopted term is durable on the demoted side.
  primary_db_.reset();
  primary_db_ = std::make_unique<Database>();
  ASSERT_TRUE(primary_db_->Attach(primary_dir_->path()).ok());
  EXPECT_EQ(primary_db_->epoch(), 1u);
  ASSERT_TRUE(new_primary.Shutdown().ok());
}

// A server without the promote hook refuses the admin frame cleanly.
TEST_F(ReplEndToEndTest, PromoteFrameWithoutHookRefuses) {
  auto client = net::Client::Connect("127.0.0.1", port_);
  ASSERT_TRUE(client.ok());
  auto ack = client->Promote();
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->code, StatusCode::kInvalidArgument) << ack->body;
  EXPECT_EQ(server_->stats().promotes, 0u);
}

// ---------------------------------------------------------------------------
// Satellite: the reconnect backoff resets to base only after a stream that
// actually applied a shipment — connect-and-refused (or connect-and-idle)
// streams keep climbing.

TEST_F(ReplEndToEndTest, ReconnectBackoffResetsOnlyAfterAppliedShipment) {
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(4)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());
  // Phase 1: no server — the rung climbs and stays climbed.
  ASSERT_TRUE(server_->Shutdown().ok());
  server_.reset();
  ReplicationConfig config = FastReplConfig(port_, follower_dir_->path());
  config.base_backoff_micros = 30'000;
  config.max_backoff_micros = 240'000;
  StartFollower(config);
  ASSERT_TRUE(WaitFor([&] {
    return follower_->stats().backoff_attempt >= 4;
  })) << follower_->stats().ToString();

  // Phase 2: the primary returns; the stream applies the shipment.
  StartServer();
  ASSERT_TRUE(WaitFor([&] { return Converged(); }))
      << follower_->stats().ToString();
  ASSERT_GE(follower_->stats().records_applied, 1u);

  // Phase 3: kill it again. Because the last stream applied, the schedule
  // restarts at the base rung — observable as the attempt counter dropping
  // below phase 1's high-water mark before climbing again.
  ASSERT_TRUE(server_->Shutdown().ok());
  server_.reset();
  bool saw_reset = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (std::chrono::steady_clock::now() < deadline && !saw_reset) {
    const uint64_t rung = follower_->stats().backoff_attempt;
    saw_reset = rung >= 1 && rung <= 2;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(saw_reset) << follower_->stats().ToString();
}

// ---------------------------------------------------------------------------
// Self-healing quarantine recovery (DESIGN.md §14)

// Transient in-flight corruption exhausts the apply budget and quarantines
// the generation; the scheduled re-fetch then repairs it with no operator
// action and the quarantine gauge returns to zero.
TEST_F(ReplEndToEndTest, DivergenceQuarantineSelfHealsWithoutOperator) {
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(5)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());
  ReplicationConfig config = FastReplConfig(port_, follower_dir_->path());
  config.heal_base_backoff_micros = 10'000;
  config.heal_max_backoff_micros = 100'000;
  StartFollower(config);
  ASSERT_TRUE(WaitFor([&] { return Converged(); }));
  const std::string v1 = DocImage(*follower_db_, "bib.xml");

  // v2 corrupts in flight exactly max_apply_attempts times, then clears —
  // the transient fault self-heal exists for.
  FaultInjector::Instance().Arm("repl.apply.chunk", /*skip=*/0, /*count=*/3);
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(25)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());
  ASSERT_TRUE(WaitFor([&] {
    return follower_->stats().divergence_quarantines >= 1;
  })) << follower_->stats().ToString();

  ASSERT_TRUE(WaitFor([&] {
    const ReplicationStats stats = follower_->stats();
    return stats.refetch_successes >= 1 && stats.quarantined == 0;
  })) << follower_->stats().ToString();
  ASSERT_TRUE(WaitFor([&] {
    return DocImage(*follower_db_, "bib.xml") ==
           DocImage(*primary_db_, "bib.xml");
  })) << follower_->stats().ToString();
  EXPECT_NE(DocImage(*follower_db_, "bib.xml"), v1);
  EXPECT_GE(follower_->stats().refetch_attempts, 1u);
}

// The scrubber path: local disk rot on the replica quarantines a snapshot;
// the quarantine hook hands the generation to the replication client, which
// re-fetches it from the primary instead of leaving a hole.
TEST_F(ReplEndToEndTest, ScrubberQuarantineSelfHealsFromPrimary) {
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(8)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());
  ReplicationConfig config = FastReplConfig(port_, follower_dir_->path());
  config.heal_base_backoff_micros = 10'000;
  config.heal_max_backoff_micros = 100'000;
  config.mode = SnapshotOpenMode::kCopy;  // serve from memory, not the bad disk
  StartFollower(config);
  ASSERT_TRUE(WaitFor([&] { return Converged(); }));
  const std::string image = DocImage(*follower_db_, "bib.xml");
  ASSERT_FALSE(image.empty());

  // Flip one byte of the replica's snapshot file on disk.
  std::string snapshot_file;
  for (const auto& entry :
       std::filesystem::directory_iterator(follower_dir_->path())) {
    const std::string name = entry.path().filename().string();
    if (name.find(".xqpack") != std::string::npos) {
      snapshot_file = entry.path().string();
    }
  }
  ASSERT_FALSE(snapshot_file.empty());
  {
    std::fstream file(snapshot_file,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(100);
    char byte = 0;
    file.get(byte);
    file.seekp(100);
    file.put(static_cast<char>(byte ^ 0x01));
  }

  // The scrubber quarantines it — and, because a replication client is
  // attached, the quarantine hook schedules the re-fetch.
  auto report = follower_db_->Scrub();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->corrupt, 1u) << report->ToString();

  // Self-heal: the document comes back byte-identical, the gauge drops to
  // zero, and the store re-attaches clean.
  ASSERT_TRUE(WaitFor([&] {
    const ReplicationStats stats = follower_->stats();
    return stats.refetch_successes >= 1 && stats.quarantined == 0 &&
           follower_db_->Contains("bib.xml");
  })) << follower_->stats().ToString();
  EXPECT_EQ(DocImage(*follower_db_, "bib.xml"), image);
  follower_->Stop();
  follower_.reset();
  follower_db_.reset();
  Database reattached;
  auto reattach = reattached.Attach(follower_dir_->path());
  ASSERT_TRUE(reattach.ok());
  EXPECT_TRUE(reattach->quarantined.empty()) << reattach->ToString();
  EXPECT_EQ(DocImage(reattached, "bib.xml"), image);
}

// Bounded attempts: when the primary keeps shipping bytes that cannot
// verify, the heal budget runs out and the quarantine becomes terminal —
// no infinite re-fetch loop — while the previous generation keeps serving.
TEST_F(ReplEndToEndTest, SelfHealGivesUpAfterBoundedAttempts) {
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(5)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());
  ReplicationConfig config = FastReplConfig(port_, follower_dir_->path());
  config.heal_base_backoff_micros = 5'000;
  config.heal_max_backoff_micros = 20'000;
  config.max_heal_attempts = 2;
  StartFollower(config);
  ASSERT_TRUE(WaitFor([&] { return Converged(); }));
  const std::string v1 = DocImage(*follower_db_, "bib.xml");

  // Permanent corruption: every shipped chunk rots, so every re-fetch
  // fails verification too.
  FaultInjector::Instance().Arm("repl.apply.chunk");
  ASSERT_TRUE(primary_db_->RegisterDocument("bib.xml", MakeBib(25)).ok());
  ASSERT_TRUE(primary_db_->Persist("bib.xml").ok());
  ASSERT_TRUE(WaitFor([&] {
    return follower_->stats().divergence_quarantines >= 1;
  })) << follower_->stats().ToString();
  // The budgeted re-fetches run and stop; the gauge stays at one (terminal)
  // and v1 keeps serving.
  ASSERT_TRUE(WaitFor([&] {
    return follower_->stats().refetch_attempts >= config.max_heal_attempts;
  })) << follower_->stats().ToString();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_LE(follower_->stats().refetch_attempts,
            uint64_t{config.max_heal_attempts} + 1);
  EXPECT_EQ(follower_->stats().refetch_successes, 0u);
  EXPECT_EQ(DocImage(*follower_db_, "bib.xml"), v1);
  FaultInjector::Instance().Reset();
}

}  // namespace
}  // namespace xmlq
