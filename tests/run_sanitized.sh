#!/usr/bin/env bash
# Builds the test suite under a sanitizer and runs it.
#
#   tests/run_sanitized.sh            # AddressSanitizer (default)
#   tests/run_sanitized.sh undefined  # UBSan
#   tests/run_sanitized.sh address,undefined
#
# Uses a separate build tree per sanitizer so instrumented and plain builds
# never mix. The fuzz + fault-injection tests are the main beneficiaries:
# they drive the parser and storage builders through their failure paths
# with memory checking enabled.
set -euo pipefail

SANITIZER="${1:-address}"
if [[ $# -gt 0 ]]; then shift; fi  # remaining args go to ctest
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${ROOT}/build-san-${SANITIZER//,/+}"

cmake -B "${BUILD_DIR}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DXMLQ_SANITIZE="${SANITIZER}" \
  -DXMLQ_BUILD_BENCHMARKS=OFF \
  -DXMLQ_BUILD_EXAMPLES=OFF \
  -DXMLQ_BUILD_TOOLS=OFF
cmake --build "${BUILD_DIR}" -j "$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure "$@"
