// xqpack snapshot store: round-trip fidelity, corruption rejection
// (truncation, trailing garbage, per-section CRC, header damage), a seeded
// byte-level fuzz over the on-disk image, and the fault-injection sites.
//
// All temp files use relative paths, so they land under the build tree
// (the ctest working directory).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "xmlq/api/database.h"
#include "xmlq/base/crc32.h"
#include "xmlq/base/fault_injector.h"
#include "xmlq/base/file_io.h"
#include "xmlq/base/random.h"
#include "xmlq/datagen/auction_gen.h"
#include "xmlq/datagen/bib_gen.h"
#include "xmlq/storage/snapshot.h"
#include "xmlq/xml/serializer.h"

namespace xmlq {
namespace {

using api::Database;
using api::QueryOptions;
using storage::OpenSnapshot;
using storage::OpenSnapshotFromBytes;
using storage::SnapshotOpenMode;

/// Removes `path` on scope exit so failed assertions don't leak temp files
/// into later runs.
class TempFile {
 public:
  explicit TempFile(std::string path) : path_(std::move(path)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void LoadCorpusDocs(Database* db) {
  datagen::BibOptions bib;
  bib.num_books = 40;
  ASSERT_TRUE(
      db->RegisterDocument("bib.xml", datagen::GenerateBibliography(bib)).ok());
  datagen::AuctionOptions auction;
  auction.scale = 0.01;
  ASSERT_TRUE(
      db->RegisterDocument("auction.xml",
                           datagen::GenerateAuctionSite(auction))
          .ok());
}

/// Queries spanning both documents and every front end: navigation,
/// predicates, FLWOR with construction, aggregation.
std::vector<std::string> QueryCorpus() {
  return {
      "doc(\"bib.xml\")//book/title",
      "count(doc(\"bib.xml\")//author)",
      "for $b in doc(\"bib.xml\")//book where $b/price > 60 "
      "order by $b/price descending "
      "return <pick year=\"{$b/@year}\">{$b/title}</pick>",
      "doc(\"auction.xml\")//person/name",
      "avg(doc(\"auction.xml\")//closed_auction/price)",
      "count(for $i in doc(\"auction.xml\")//item "
      "where $i/payment = 'Cash' return $i)",
  };
}

/// Serialized results of the whole corpus — the byte-identical fidelity
/// oracle for the round-trip property.
std::string RunCorpus(Database& db) {
  std::string out;
  for (const std::string& query : QueryCorpus()) {
    auto result = db.Query(query);
    EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
    if (!result.ok()) continue;
    out += Database::ToXml(*result, /*indent=*/true);
    out += '\n';
  }
  auto path = db.QueryPath("//person[address][phone]/name", "auction.xml");
  EXPECT_TRUE(path.ok()) << path.status().ToString();
  if (path.ok()) out += Database::ToXml(*path);
  return out;
}

std::string ReadFileOrDie(const std::string& path) {
  auto bytes = FileBytes::ReadWhole(path);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return std::string(bytes->data(), bytes->size());
}

void WriteFileOrDie(const std::string& path, std::string_view data) {
  ASSERT_TRUE(WriteFileAtomic(path, data).ok());
}

TEST(SnapshotTest, RoundTripPreservesQueryResults) {
  Database db;
  LoadCorpusDocs(&db);
  const std::string reference = RunCorpus(db);
  ASSERT_FALSE(reference.empty());
  const std::string bib_xml =
      xml::Serialize(*db.Get("bib.xml")->dom, db.Get("bib.xml")->dom->root(),
                     {});

  TempFile bib_file("rt_bib.xqpack");
  TempFile auction_file("rt_auction.xqpack");
  ASSERT_TRUE(db.Save("bib.xml", bib_file.path()).ok());
  ASSERT_TRUE(db.Save("auction.xml", auction_file.path()).ok());

  for (const SnapshotOpenMode mode :
       {SnapshotOpenMode::kMap, SnapshotOpenMode::kCopy}) {
    SCOPED_TRACE(mode == SnapshotOpenMode::kMap ? "mmap" : "copy");
    Database reopened;
    ASSERT_TRUE(reopened.Open("bib.xml", bib_file.path(), mode).ok());
    ASSERT_TRUE(reopened.Open("auction.xml", auction_file.path(), mode).ok());

    // Byte-identical query results and document serialization.
    EXPECT_EQ(RunCorpus(reopened), reference);
    EXPECT_EQ(xml::Serialize(*reopened.Get("bib.xml")->dom,
                             reopened.Get("bib.xml")->dom->root(), {}),
              bib_xml);

    // Both open paths borrow the succinct structures from the backing bytes
    // (mapping or aligned heap copy): zero owned heap for them either way.
    auto report = reopened.Report("auction.xml");
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->from_snapshot);
    EXPECT_EQ(report->mapped, mode == SnapshotOpenMode::kMap);
    EXPECT_GT(report->snapshot_file_bytes, 0u);
    EXPECT_EQ(report->succinct_heap_bytes, 0u);
    EXPECT_EQ(report->region_index_heap_bytes, 0u);
    // The value index materializes string_views over the restored DOM text.
    EXPECT_GT(report->value_index_heap_bytes, 0u);
    EXPECT_EQ(report->node_count, db.Report("auction.xml")->node_count);
  }
}

TEST(SnapshotTest, RoundTripTinyAndTextHeavyDocuments) {
  const char* kDocs[] = {
      "<a/>",
      "<r a=\"1\" b=\"two\"><x>t</x><x/><y z=\"3\">mixed <i>in</i> "
      "tail</y></r>",
      "<deep><deep><deep><deep>leaf text</deep></deep></deep></deep>",
  };
  int index = 0;
  for (const char* text : kDocs) {
    SCOPED_TRACE(text);
    Database db;
    ASSERT_TRUE(db.LoadDocument("d.xml", text).ok());
    const std::string before =
        xml::Serialize(*db.Get("d.xml")->dom, db.Get("d.xml")->dom->root(), {});
    TempFile file("rt_tiny_" + std::to_string(index++) + ".xqpack");
    ASSERT_TRUE(db.Save("d.xml", file.path()).ok());
    for (const SnapshotOpenMode mode :
         {SnapshotOpenMode::kMap, SnapshotOpenMode::kCopy}) {
      Database reopened;
      ASSERT_TRUE(reopened.Open("d.xml", file.path(), mode).ok());
      EXPECT_EQ(xml::Serialize(*reopened.Get("d.xml")->dom,
                               reopened.Get("d.xml")->dom->root(), {}),
                before);
    }
  }
}

TEST(SnapshotTest, WriteInfoDescribesEverySection) {
  Database db;
  datagen::BibOptions bib;
  bib.num_books = 10;
  ASSERT_TRUE(
      db.RegisterDocument("bib.xml", datagen::GenerateBibliography(bib)).ok());
  TempFile file("info.xqpack");
  auto info = db.Save("bib.xml", file.path());
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->sections.size(), storage::kSnapshotSectionCount);
  EXPECT_EQ(info->file_size, ReadFileOrDie(file.path()).size());
  uint64_t prev_end = 0;
  for (size_t i = 0; i < info->sections.size(); ++i) {
    const auto& section = info->sections[i];
    EXPECT_EQ(section.id, i + 1);
    EXPECT_STRNE(section.name, "?");
    EXPECT_EQ(section.offset % 64, 0u) << section.name;
    EXPECT_GE(section.offset, prev_end) << section.name;
    prev_end = section.offset + section.size;
  }
  EXPECT_LE(prev_end, info->file_size);
}

TEST(SnapshotTest, SaveUnknownDocumentAndOpenMissingFile) {
  Database db;
  EXPECT_EQ(db.Save("nope.xml", "unused.xqpack").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.Open("x", "does_not_exist.xqpack").code(),
            StatusCode::kNotFound);
}

TEST(SnapshotTest, TruncatedFilesRejectedWithPosition) {
  Database db;
  datagen::BibOptions bib;
  bib.num_books = 8;
  ASSERT_TRUE(
      db.RegisterDocument("bib.xml", datagen::GenerateBibliography(bib)).ok());
  TempFile file("trunc_src.xqpack");
  ASSERT_TRUE(db.Save("bib.xml", file.path()).ok());
  const std::string image = ReadFileOrDie(file.path());

  TempFile cut("trunc_cut.xqpack");
  for (const size_t keep :
       {size_t{0}, size_t{1}, size_t{63}, size_t{64}, size_t{100},
        size_t{1280}, image.size() / 2, image.size() - 1}) {
    SCOPED_TRACE(keep);
    WriteFileOrDie(cut.path(), std::string_view(image).substr(0, keep));
    for (const SnapshotOpenMode mode :
         {SnapshotOpenMode::kMap, SnapshotOpenMode::kCopy}) {
      auto opened = OpenSnapshot(cut.path(), mode);
      ASSERT_FALSE(opened.ok());
      EXPECT_EQ(opened.status().code(), StatusCode::kParseError);
      EXPECT_NE(opened.status().message().find("xqpack"), std::string::npos);
      EXPECT_NE(opened.status().message().find("offset"), std::string::npos)
          << opened.status().ToString();
    }
  }
}

TEST(SnapshotTest, TrailingGarbageRejected) {
  Database db;
  datagen::BibOptions bib;
  bib.num_books = 8;
  ASSERT_TRUE(
      db.RegisterDocument("bib.xml", datagen::GenerateBibliography(bib)).ok());
  TempFile file("garbage.xqpack");
  ASSERT_TRUE(db.Save("bib.xml", file.path()).ok());
  std::string image = ReadFileOrDie(file.path());
  image += "extra bytes after the last section";
  WriteFileOrDie(file.path(), image);
  auto opened = OpenSnapshot(file.path(), SnapshotOpenMode::kCopy);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kParseError);
  EXPECT_NE(opened.status().message().find("truncated or trailing garbage"),
            std::string::npos)
      << opened.status().ToString();
}

TEST(SnapshotTest, CorruptHeaderRejected) {
  Database db;
  datagen::BibOptions bib;
  bib.num_books = 8;
  ASSERT_TRUE(
      db.RegisterDocument("bib.xml", datagen::GenerateBibliography(bib)).ok());
  TempFile file("header_src.xqpack");
  ASSERT_TRUE(db.Save("bib.xml", file.path()).ok());
  const std::string image = ReadFileOrDie(file.path());

  // magic, version, section_count, file_size, table_crc, header_crc,
  // reserved bytes, and a section-table entry.
  const size_t kOffsets[] = {0, 7, 8, 12, 16, 24, 28, 40, 64, 96, 1248};
  TempFile bad("header_bad.xqpack");
  for (const size_t offset : kOffsets) {
    SCOPED_TRACE(offset);
    std::string mutated = image;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0x5a);
    WriteFileOrDie(bad.path(), mutated);
    auto opened = OpenSnapshot(bad.path(), SnapshotOpenMode::kCopy);
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), StatusCode::kParseError);
    EXPECT_FALSE(opened.status().message().empty());
  }
}

TEST(SnapshotTest, CorruptSectionPayloadNamesTheSection) {
  Database db;
  datagen::BibOptions bib;
  bib.num_books = 8;
  ASSERT_TRUE(
      db.RegisterDocument("bib.xml", datagen::GenerateBibliography(bib)).ok());
  TempFile file("section_src.xqpack");
  auto info = db.Save("bib.xml", file.path());
  ASSERT_TRUE(info.ok());
  const std::string image = ReadFileOrDie(file.path());

  TempFile bad("section_bad.xqpack");
  for (const auto& section : info->sections) {
    if (section.size == 0) continue;
    SCOPED_TRACE(section.name);
    std::string mutated = image;
    const size_t target = section.offset + section.size / 2;
    mutated[target] = static_cast<char>(mutated[target] ^ 0xff);
    WriteFileOrDie(bad.path(), mutated);
    auto opened = OpenSnapshot(bad.path(), SnapshotOpenMode::kCopy);
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), StatusCode::kParseError);
    EXPECT_NE(opened.status().message().find(section.name), std::string::npos)
        << opened.status().ToString();
    EXPECT_NE(opened.status().message().find("offset"), std::string::npos);
  }
}

/// Recomputes every checksum (section CRCs from the section table, then the
/// table CRC, then the header CRC) so payload mutations reach the semantic
/// validators instead of being stopped at the CRC wall.
void FixChecksums(std::string* image) {
  using storage::SnapshotHeader;
  using storage::SnapshotSection;
  if (image->size() < sizeof(SnapshotHeader)) return;
  SnapshotHeader header;
  std::memcpy(&header, image->data(), sizeof(header));
  const size_t table_bytes =
      size_t{header.section_count} * sizeof(SnapshotSection);
  if (header.section_count > 1024 ||
      image->size() < sizeof(header) + table_bytes) {
    return;
  }
  std::vector<SnapshotSection> table(header.section_count);
  std::memcpy(table.data(), image->data() + sizeof(header), table_bytes);
  for (SnapshotSection& section : table) {
    if (section.offset > image->size() ||
        section.size > image->size() - section.offset) {
      continue;
    }
    section.crc = Crc32(image->data() + section.offset, section.size);
  }
  std::memcpy(image->data() + sizeof(header), table.data(), table_bytes);
  header.table_crc = Crc32(image->data() + sizeof(header), table_bytes);
  SnapshotHeader crc_input = header;
  crc_input.header_crc = 0;
  header.header_crc = Crc32(&crc_input, sizeof(crc_input));
  std::memcpy(image->data(), &header, sizeof(header));
}

/// A surviving mutant must behave like a document: walk it the way a query
/// would, so any out-of-bounds reference trips ASan rather than lurking.
void ExerciseOpened(const storage::OpenedSnapshot& snapshot) {
  EXPECT_TRUE(snapshot.dom->IsPreorder());
  const std::string out =
      xml::Serialize(*snapshot.dom, snapshot.dom->root(), {});
  (void)out;
  size_t checksum = snapshot.succinct->NodeCount();
  for (const auto& region : snapshot.regions->elements()) {
    checksum += region.start + region.end;
  }
  (void)checksum;
}

void FuzzOpen(std::string image) {
  FileBytes bytes = FileBytes::Copy(image);
  auto opened = OpenSnapshotFromBytes(std::move(bytes), SnapshotOpenMode::kCopy);
  if (opened.ok()) {
    ExerciseOpened(*opened);
  } else {
    EXPECT_FALSE(opened.status().message().empty());
  }
}

TEST(SnapshotTest, FuzzRawImageMutations) {
  Database db;
  datagen::BibOptions bib;
  bib.num_books = 6;
  ASSERT_TRUE(
      db.RegisterDocument("bib.xml", datagen::GenerateBibliography(bib)).ok());
  TempFile file("fuzz_raw.xqpack");
  ASSERT_TRUE(db.Save("bib.xml", file.path()).ok());
  const std::string pristine = ReadFileOrDie(file.path());

  Rng rng(20260805);
  for (int i = 0; i < 900; ++i) {
    std::string image = pristine;
    const int mutations = 1 + static_cast<int>(rng.Below(4));
    for (int m = 0; m < mutations && !image.empty(); ++m) {
      switch (rng.Below(5)) {
        case 0: {  // flip one bit
          const size_t pos = rng.Below(image.size());
          image[pos] = static_cast<char>(image[pos] ^ (1 << rng.Below(8)));
          break;
        }
        case 1:  // truncate
          image.resize(rng.Below(image.size()));
          break;
        case 2: {  // overwrite a span with a random byte
          const size_t begin = rng.Below(image.size());
          const size_t len =
              std::min(image.size() - begin, size_t{1} + rng.Below(64));
          std::memset(image.data() + begin,
                      static_cast<int>(rng.Below(256)), len);
          break;
        }
        case 3: {  // delete a span
          const size_t begin = rng.Below(image.size());
          image.erase(begin, 1 + rng.Below(128));
          break;
        }
        default: {  // duplicate a span (grows the file)
          const size_t begin = rng.Below(image.size());
          const size_t len =
              std::min(image.size() - begin, size_t{1} + rng.Below(64));
          image.insert(rng.Below(image.size() + 1),
                       image.substr(begin, len));
          break;
        }
      }
    }
    FuzzOpen(std::move(image));
    if (HasFatalFailure()) FAIL() << "iteration " << i;
  }
}

TEST(SnapshotTest, FuzzHeaderAndTableMutations) {
  Database db;
  datagen::BibOptions bib;
  bib.num_books = 6;
  ASSERT_TRUE(
      db.RegisterDocument("bib.xml", datagen::GenerateBibliography(bib)).ok());
  TempFile file("fuzz_table.xqpack");
  ASSERT_TRUE(db.Save("bib.xml", file.path()).ok());
  const std::string pristine = ReadFileOrDie(file.path());
  const size_t kTableEnd =
      sizeof(storage::SnapshotHeader) +
      storage::kSnapshotSectionCount * sizeof(storage::SnapshotSection);

  Rng rng(424242);
  for (int i = 0; i < 600; ++i) {
    std::string image = pristine;
    // Mutate only header/table bytes, then re-seal the header checksums for
    // half the runs so table-field validation (not just the CRC) gets hit.
    const int mutations = 1 + static_cast<int>(rng.Below(3));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.Below(kTableEnd);
      switch (rng.Below(3)) {
        case 0:
          image[pos] = static_cast<char>(image[pos] ^ (1 << rng.Below(8)));
          break;
        case 1:
          image[pos] = static_cast<char>(rng.Below(256));
          break;
        default:
          image[pos] = static_cast<char>(0xff);
          break;
      }
    }
    if (rng.Below(2) == 0) FixChecksums(&image);
    FuzzOpen(std::move(image));
    if (HasFatalFailure()) FAIL() << "iteration " << i;
  }
}

TEST(SnapshotTest, FuzzPayloadMutationsBehindValidChecksums) {
  Database db;
  datagen::BibOptions bib;
  bib.num_books = 6;
  ASSERT_TRUE(
      db.RegisterDocument("bib.xml", datagen::GenerateBibliography(bib)).ok());
  TempFile file("fuzz_payload.xqpack");
  ASSERT_TRUE(db.Save("bib.xml", file.path()).ok());
  const std::string pristine = ReadFileOrDie(file.path());
  const size_t kPayloadStart =
      ((sizeof(storage::SnapshotHeader) +
        storage::kSnapshotSectionCount * sizeof(storage::SnapshotSection)) +
       63) /
      64 * 64;
  ASSERT_LT(kPayloadStart, pristine.size());

  Rng rng(7);
  for (int i = 0; i < 600; ++i) {
    std::string image = pristine;
    // Overwrite-only mutations inside payload bytes, then recompute every
    // checksum: the semantic validators are the only remaining line of
    // defence, and they must reject or yield a safely walkable document.
    const int mutations = 1 + static_cast<int>(rng.Below(4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos =
          kPayloadStart + rng.Below(image.size() - kPayloadStart);
      switch (rng.Below(4)) {
        case 0:
          image[pos] = static_cast<char>(image[pos] ^ (1 << rng.Below(8)));
          break;
        case 1:
          image[pos] = static_cast<char>(rng.Below(256));
          break;
        case 2: {  // zero a span
          const size_t len =
              std::min(image.size() - pos, size_t{1} + rng.Below(48));
          std::memset(image.data() + pos, 0, len);
          break;
        }
        default: {  // saturate a span
          const size_t len =
              std::min(image.size() - pos, size_t{1} + rng.Below(48));
          std::memset(image.data() + pos, 0xff, len);
          break;
        }
      }
    }
    FixChecksums(&image);
    FuzzOpen(std::move(image));
    if (HasFatalFailure()) FAIL() << "iteration " << i;
  }
}

TEST(SnapshotTest, FaultInjectionAtWriteMapAndVerify) {
  Database db;
  datagen::BibOptions bib;
  bib.num_books = 8;
  ASSERT_TRUE(
      db.RegisterDocument("bib.xml", datagen::GenerateBibliography(bib)).ok());
  TempFile file("faults.xqpack");

  FaultInjector::Instance().Arm("store.snapshot.write", 0, 1);
  auto save = db.Save("bib.xml", file.path());
  FaultInjector::Instance().Reset();
  ASSERT_FALSE(save.ok());
  EXPECT_EQ(save.status().code(), StatusCode::kInternal);

  ASSERT_TRUE(db.Save("bib.xml", file.path()).ok());

  FaultInjector::Instance().Arm("store.snapshot.map", 0, 1);
  Database map_db;
  const Status map_status =
      map_db.Open("bib.xml", file.path(), SnapshotOpenMode::kMap);
  // The copy path has no mmap step, so the armed site must not affect it.
  Database copy_db;
  const Status copy_status =
      copy_db.Open("bib.xml", file.path(), SnapshotOpenMode::kCopy);
  FaultInjector::Instance().Reset();
  ASSERT_FALSE(map_status.ok());
  EXPECT_EQ(map_status.code(), StatusCode::kInternal);
  EXPECT_TRUE(copy_status.ok()) << copy_status.ToString();

  FaultInjector::Instance().Arm("store.snapshot.verify", 0, 1);
  Database verify_db;
  const Status verify_status =
      verify_db.Open("bib.xml", file.path(), SnapshotOpenMode::kCopy);
  FaultInjector::Instance().Reset();
  ASSERT_FALSE(verify_status.ok());
  EXPECT_EQ(verify_status.code(), StatusCode::kParseError);
  EXPECT_NE(verify_status.message().find("injected verification failure"),
            std::string::npos)
      << verify_status.ToString();
}

}  // namespace
}  // namespace xmlq
