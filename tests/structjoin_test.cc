#include <gtest/gtest.h>

#include "xmlq/base/random.h"
#include "xmlq/datagen/random_tree.h"
#include "xmlq/exec/structural_join.h"
#include "xmlq/xml/parser.h"

namespace xmlq::exec {
namespace {

using storage::Region;
using storage::RegionIndex;

std::vector<Region> Stream(const RegionIndex& index, const xml::Document& doc,
                           std::string_view tag) {
  std::vector<Region> out;
  const auto span = index.ElementStream(doc.pool().Find(tag));
  out.assign(span.begin(), span.end());
  return out;
}

TEST(StructuralJoinTest, SmallAncestorDescendant) {
  auto doc = xml::ParseDocument(
      "<r><a><b/><a><b/></a></a><b/><a/></r>");
  ASSERT_TRUE(doc.ok());
  RegionIndex index(*doc);
  // Nodes: r=1, a=2, b=3, a=4, b=5, b=6, a=7.
  const auto a_stream = Stream(index, *doc, "a");
  const auto b_stream = Stream(index, *doc, "b");
  const auto pairs = StructuralJoinPairs(a_stream, b_stream, false);
  // (2,3), (2,5), (4,5) — b=6 and a=7 unmatched.
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0].ancestor, 2u);
  EXPECT_EQ(pairs[0].descendant, 3u);
  const auto desc = StructuralSemiJoinDesc(a_stream, b_stream, false);
  EXPECT_EQ(desc, (NodeList{3, 5}));
  const auto anc = StructuralSemiJoinAnc(a_stream, b_stream, false);
  EXPECT_EQ(anc, (NodeList{2, 4}));
}

TEST(StructuralJoinTest, ParentChildFiltersByLevel) {
  auto doc = xml::ParseDocument("<r><a><x><b/></x><b/></a></r>");
  ASSERT_TRUE(doc.ok());
  RegionIndex index(*doc);
  const auto a_stream = Stream(index, *doc, "a");
  const auto b_stream = Stream(index, *doc, "b");
  const auto pc = StructuralJoinPairs(a_stream, b_stream, true);
  ASSERT_EQ(pc.size(), 1u);  // only the direct b child
  const auto ad = StructuralJoinPairs(a_stream, b_stream, false);
  EXPECT_EQ(ad.size(), 2u);
}

TEST(StructuralJoinTest, EmptyInputs) {
  auto doc = xml::ParseDocument("<r><a/></r>");
  ASSERT_TRUE(doc.ok());
  RegionIndex index(*doc);
  const std::vector<Region> empty;
  const auto a_stream = Stream(index, *doc, "a");
  EXPECT_TRUE(StructuralJoinPairs(empty, a_stream, false).empty());
  EXPECT_TRUE(StructuralJoinPairs(a_stream, empty, false).empty());
  EXPECT_TRUE(StructuralSemiJoinAnc(empty, empty, false).empty());
}

/// Property: the merge join equals the quadratic nested-loop join.
class StructuralJoinPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(StructuralJoinPropertyTest, MatchesNestedLoopReference) {
  datagen::RandomTreeOptions options;
  options.seed = GetParam();
  options.num_elements = 250;
  options.tag_vocabulary = 3;  // dense tag collisions → many pairs
  auto doc = datagen::GenerateRandomTree(options);
  RegionIndex index(*doc);
  for (const char* anc_tag : {"t0", "t1"}) {
    for (const char* desc_tag : {"t0", "t2"}) {
      for (const bool parent_child : {false, true}) {
        const auto anc = Stream(index, *doc, anc_tag);
        const auto desc = Stream(index, *doc, desc_tag);
        auto got = StructuralJoinPairs(anc, desc, parent_child);
        std::vector<JoinPair> expected;
        for (const Region& a : anc) {
          for (const Region& d : desc) {
            if (!a.Contains(d)) continue;
            if (parent_child && a.level + 1 != d.level) continue;
            expected.push_back(JoinPair{a.start, d.start});
          }
        }
        const auto key = [](const JoinPair& p) {
          return (uint64_t{p.ancestor} << 32) | p.descendant;
        };
        std::sort(got.begin(), got.end(),
                  [&](auto x, auto y) { return key(x) < key(y); });
        std::sort(expected.begin(), expected.end(),
                  [&](auto x, auto y) { return key(x) < key(y); });
        ASSERT_EQ(got.size(), expected.size())
            << anc_tag << "//" << desc_tag << " pc=" << parent_child;
        for (size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(key(got[i]), key(expected[i]));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructuralJoinPropertyTest,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 42ull));

TEST(FilterEdgePairsTest, BottomUpAndTopDownFiltering) {
  // Pattern root -> a -> b with a side branch a -> c.
  algebra::PatternGraph graph;
  const auto a = graph.AddVertex(graph.root(), algebra::Axis::kChild, "a");
  const auto b = graph.AddVertex(a, algebra::Axis::kChild, "b");
  const auto c = graph.AddVertex(a, algebra::Axis::kChild, "c");
  graph.SetOutput(b);
  // Two a-candidates (10, 20); only 10 has both b and c support; b=11
  // hangs off 10, b=21 hangs off 20 (which lacks c).
  std::vector<std::vector<JoinPair>> pairs(graph.VertexCount());
  pairs[a] = {{0, 10}, {0, 20}};
  pairs[b] = {{10, 11}, {20, 21}};
  pairs[c] = {{10, 12}};
  const NodeList result = FilterEdgePairs(graph, b, pairs, 0);
  EXPECT_EQ(result, (NodeList{11}));
  // With output = a, only 10 survives.
  EXPECT_EQ(FilterEdgePairs(graph, a, pairs, 0), (NodeList{10}));
}

TEST(BinaryJoinPlanTest, JoinOrderAffectsIntermediateSizeNotResult) {
  auto dom = xml::ParseDocument(
      "<r><a><b><c/></b><b/></a><a><b><c/><c/></b></a><b/></r>");
  ASSERT_TRUE(dom.ok());
  storage::RegionIndex regions(*dom);
  storage::SuccinctDocument succinct = storage::SuccinctDocument::Build(*dom);
  IndexedDocument doc{&*dom, &succinct, &regions, nullptr};
  algebra::PatternGraph graph;
  const auto a = graph.AddVertex(graph.root(), algebra::Axis::kDescendant, "a");
  const auto b = graph.AddVertex(a, algebra::Axis::kChild, "b");
  const auto c = graph.AddVertex(b, algebra::Axis::kChild, "c");
  graph.SetOutput(c);
  JoinPlanStats stats_top_down;
  JoinPlanStats stats_bottom_up;
  const algebra::VertexId top_down[] = {a, b, c};
  const algebra::VertexId bottom_up[] = {c, b, a};
  auto r1 = BinaryJoinPlanMatch(doc, graph, top_down, &stats_top_down);
  auto r2 = BinaryJoinPlanMatch(doc, graph, bottom_up, &stats_bottom_up);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);
  EXPECT_EQ(r1->size(), 3u);
  EXPECT_GT(stats_top_down.pairs_produced, 0u);
  EXPECT_GT(stats_bottom_up.pairs_produced, 0u);
}

TEST(BinaryJoinPlanTest, RejectsBadOrders) {
  auto dom = xml::ParseDocument("<r><a/></r>");
  ASSERT_TRUE(dom.ok());
  storage::RegionIndex regions(*dom);
  IndexedDocument doc{&*dom, nullptr, &regions, nullptr};
  algebra::PatternGraph graph;
  const auto a = graph.AddVertex(graph.root(), algebra::Axis::kChild, "a");
  graph.SetOutput(a);
  const algebra::VertexId dup[] = {a, a};
  EXPECT_FALSE(BinaryJoinPlanMatch(doc, graph, dup, nullptr).ok());
}

}  // namespace
}  // namespace xmlq::exec
