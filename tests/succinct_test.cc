#include <gtest/gtest.h>

#include "xmlq/datagen/auction_gen.h"
#include "xmlq/datagen/random_tree.h"
#include "xmlq/storage/succinct_doc.h"
#include "xmlq/xml/parser.h"

namespace xmlq::storage {
namespace {

TEST(SuccinctDocTest, SmallDocumentNavigation) {
  auto dom = xml::ParseDocument(
      "<bib><book year=\"94\"><title>t</title></book><paper/></bib>");
  ASSERT_TRUE(dom.ok());
  SuccinctDocument doc = SuccinctDocument::Build(*dom);
  ASSERT_EQ(doc.NodeCount(), dom->NodeCount());

  // Ranks equal NodeIds: document=0, bib=1, book=2, @year=3, title=4,
  // text=5, paper=6.
  EXPECT_EQ(doc.Kind(0), xml::NodeKind::kDocument);
  EXPECT_EQ(doc.LabelStr(1), "bib");
  EXPECT_EQ(doc.Kind(3), xml::NodeKind::kAttribute);
  EXPECT_EQ(doc.Text(3), "94");
  EXPECT_EQ(doc.FirstChild(0), 1u);
  EXPECT_EQ(doc.FirstChild(1), 2u);
  EXPECT_EQ(doc.FirstChild(2), 4u);  // skips the attribute
  EXPECT_EQ(doc.FirstAttr(2), 3u);
  EXPECT_EQ(doc.FirstAttr(1), SuccinctDocument::kNoNode);
  EXPECT_EQ(doc.NextSibling(2), 6u);
  EXPECT_EQ(doc.NextSibling(6), SuccinctDocument::kNoNode);
  EXPECT_EQ(doc.Parent(4), 2u);
  EXPECT_EQ(doc.Parent(0), SuccinctDocument::kNoNode);
  EXPECT_EQ(doc.StringValue(2), "t");
  EXPECT_EQ(doc.SubtreeSize(2), 4u);
  EXPECT_EQ(doc.Depth(4), 3u);
  EXPECT_TRUE(doc.IsAncestor(1, 5));
  EXPECT_FALSE(doc.IsAncestor(2, 6));
}

/// Exhaustive navigation equivalence against the DOM on random trees.
class SuccinctEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SuccinctEquivalenceTest, AgreesWithDomEverywhere) {
  datagen::RandomTreeOptions options;
  options.seed = GetParam();
  options.num_elements = 300;
  auto dom = datagen::GenerateRandomTree(options);
  ASSERT_TRUE(dom->IsPreorder());
  SuccinctDocument doc = SuccinctDocument::Build(*dom);
  ASSERT_EQ(doc.NodeCount(), dom->NodeCount());
  const auto to_rank = [](xml::NodeId id) {
    return id == xml::kNullNode ? SuccinctDocument::kNoNode : id;
  };
  for (xml::NodeId id = 0; id < dom->NodeCount(); ++id) {
    ASSERT_EQ(doc.Kind(id), dom->Kind(id)) << "kind of " << id;
    ASSERT_EQ(doc.Label(id), dom->Name(id)) << "label of " << id;
    if (dom->Kind(id) != xml::NodeKind::kAttribute) {
      ASSERT_EQ(doc.FirstChild(id), to_rank(dom->FirstChild(id)))
          << "first child of " << id;
      ASSERT_EQ(doc.FirstAttr(id), to_rank(dom->FirstAttr(id)))
          << "first attr of " << id;
    }
    ASSERT_EQ(doc.NextSibling(id), to_rank(dom->NextSibling(id)))
        << "next sibling of " << id;
    ASSERT_EQ(doc.Parent(id), to_rank(dom->Parent(id))) << "parent of " << id;
    ASSERT_EQ(doc.Depth(id), dom->Depth(id)) << "depth of " << id;
    ASSERT_EQ(doc.StringValue(id), dom->StringValue(id))
        << "string-value of " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuccinctEquivalenceTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           17ull, 99ull, 12345ull));

TEST(SuccinctDocTest, ContentSeparationAccounting) {
  datagen::AuctionOptions options;
  options.scale = 0.02;
  auto dom = datagen::GenerateAuctionSite(options);
  SuccinctDocument doc = SuccinctDocument::Build(*dom);
  // Structure must be far smaller than the DOM arena representation
  // (the point of the succinct scheme, paper §4.2).
  EXPECT_LT(doc.StructureBytes(), dom->MemoryUsage() / 3);
  EXPECT_GT(doc.ContentBytes(), 0u);
  // Every content-bearing node round-trips its text.
  size_t checked = 0;
  for (uint32_t r = 0; r < doc.NodeCount(); ++r) {
    if (doc.HasContent(r)) {
      ASSERT_EQ(doc.Text(r), dom->Text(r));
      ++checked;
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST(SuccinctDocTest, SubtreeRanksAreContiguous) {
  datagen::RandomTreeOptions options;
  options.seed = 77;
  options.num_elements = 150;
  auto dom = datagen::GenerateRandomTree(options);
  SuccinctDocument doc = SuccinctDocument::Build(*dom);
  for (uint32_t r = 0; r < doc.NodeCount(); ++r) {
    const uint32_t size = doc.SubtreeSize(r);
    // Every node in (r, r+size) has r as an ancestor; the node right after
    // the range does not.
    for (uint32_t d = r + 1; d < r + size; ++d) {
      ASSERT_TRUE(doc.IsAncestor(r, d));
    }
    if (r + size < doc.NodeCount()) {
      ASSERT_FALSE(doc.IsAncestor(r, r + size));
    }
  }
}

}  // namespace
}  // namespace xmlq::storage
