#include <gtest/gtest.h>

#include "xmlq/datagen/random_tree.h"
#include "xmlq/xml/document.h"
#include "xmlq/xml/parser.h"
#include "xmlq/xml/serializer.h"

namespace xmlq::xml {
namespace {

TEST(NamePoolTest, InternIsStableAndDense) {
  NamePool pool;
  const NameId a = pool.Intern("alpha");
  const NameId b = pool.Intern("beta");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(pool.Intern("alpha"), a);
  EXPECT_EQ(pool.NameOf(a), "alpha");
  EXPECT_EQ(pool.Find("beta"), b);
  EXPECT_EQ(pool.Find("gamma"), kInvalidName);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(NamePoolTest, ViewsSurviveGrowth) {
  NamePool pool;
  const std::string_view first = pool.NameOf(pool.Intern("first"));
  for (int i = 0; i < 1000; ++i) {
    pool.Intern("name" + std::to_string(i));
  }
  EXPECT_EQ(first, "first");
  EXPECT_EQ(pool.Find("first"), 0u);
}

TEST(DocumentTest, BuildSmallTree) {
  Document doc;
  const NodeId root = doc.AddElement(doc.root(), "bib");
  doc.AddAttribute(root, "version", "1");
  const NodeId book = doc.AddElement(root, "book");
  const NodeId title = doc.AddElement(book, "title");
  doc.AddText(title, "TCP/IP Illustrated");

  EXPECT_EQ(doc.RootElement(), root);
  EXPECT_EQ(doc.NameStr(root), "bib");
  EXPECT_EQ(doc.Parent(book), root);
  EXPECT_EQ(doc.FirstChild(book), title);
  EXPECT_EQ(doc.NextSibling(title), kNullNode);
  EXPECT_EQ(doc.Depth(title), 3u);
  bool found = false;
  EXPECT_EQ(doc.AttributeValue(root, "version", &found), "1");
  EXPECT_TRUE(found);
  doc.AttributeValue(root, "missing", &found);
  EXPECT_FALSE(found);
  EXPECT_TRUE(doc.IsPreorder());
}

TEST(DocumentTest, StringValueConcatenatesDescendantText) {
  Document doc;
  const NodeId root = doc.AddElement(doc.root(), "a");
  doc.AddText(root, "x");
  const NodeId b = doc.AddElement(root, "b");
  doc.AddText(b, "y");
  doc.AddText(root, "z");
  EXPECT_EQ(doc.StringValue(root), "xyz");
  EXPECT_EQ(doc.StringValue(b), "y");
}

TEST(DocumentTest, PreorderNextVisitsAllNonAttributeNodes) {
  Document doc;
  const NodeId a = doc.AddElement(doc.root(), "a");
  const NodeId b = doc.AddElement(a, "b");
  doc.AddText(b, "t");
  doc.AddElement(a, "c");
  size_t visited = 0;
  for (NodeId n = doc.root(); n != kNullNode; n = doc.PreorderNext(n)) {
    ++visited;
  }
  EXPECT_EQ(visited, 5u);  // document, a, b, text, c
}

TEST(ParserTest, ParsesElementsAttributesText) {
  auto doc = ParseDocument(
      "<bib><book year=\"1994\"><title>TCP/IP</title></book></bib>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const NodeId bib = doc->RootElement();
  EXPECT_EQ(doc->NameStr(bib), "bib");
  const NodeId book = doc->FirstChild(bib);
  EXPECT_EQ(doc->AttributeValue(book, "year"), "1994");
  EXPECT_EQ(doc->StringValue(book), "TCP/IP");
  EXPECT_TRUE(doc->IsPreorder());
}

TEST(ParserTest, DecodesEntitiesAndCharRefs) {
  auto doc = ParseDocument("<a b=\"x &lt; y\">&amp;&#65;&#x42;</a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const NodeId a = doc->RootElement();
  EXPECT_EQ(doc->AttributeValue(a, "b"), "x < y");
  EXPECT_EQ(doc->StringValue(a), "&AB");
}

TEST(ParserTest, HandlesSelfClosingAndCdataAndComments) {
  ParseOptions options;
  options.keep_comments = true;
  auto doc = ParseDocument(
      "<r><empty/><!-- note --><![CDATA[a<b&c]]></r>", options);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const NodeId r = doc->RootElement();
  const NodeId empty = doc->FirstChild(r);
  EXPECT_EQ(doc->NameStr(empty), "empty");
  const NodeId comment = doc->NextSibling(empty);
  EXPECT_EQ(doc->Kind(comment), NodeKind::kComment);
  EXPECT_EQ(doc->Text(comment), " note ");
  const NodeId cdata = doc->NextSibling(comment);
  EXPECT_EQ(doc->Kind(cdata), NodeKind::kText);
  EXPECT_EQ(doc->Text(cdata), "a<b&c");
}

TEST(ParserTest, SkipsPrologDoctypeAndPIs) {
  auto doc = ParseDocument(
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE r [ <!ELEMENT r ANY> ]>\n"
      "<?target data?>\n"
      "<r>ok</r>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->StringValue(doc->RootElement()), "ok");
}

TEST(ParserTest, DropsWhitespaceTextByDefault) {
  auto doc = ParseDocument("<r>\n  <a/>\n  <b/>\n</r>");
  ASSERT_TRUE(doc.ok());
  const NodeId r = doc->RootElement();
  EXPECT_EQ(doc->NameStr(doc->FirstChild(r)), "a");
  EXPECT_EQ(doc->NodeCount(), 4u);  // document, r, a, b
}

TEST(ParserTest, PreservesWhitespaceWhenAsked) {
  ParseOptions options;
  options.drop_whitespace_text = false;
  auto doc = ParseDocument("<r> <a/> </r>", options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->NodeCount(), 5u);  // document, r, ws, a, ws
}

TEST(ParserTest, NormalizesCrLf) {
  auto doc = ParseDocument("<r>line1&#13;\r\nline2</r>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  // CRLF becomes LF; the explicit char-ref CR survives decoding.
  EXPECT_EQ(doc->StringValue(doc->RootElement()), "line1\r\nline2");
}

struct BadInput {
  const char* name;
  const char* text;
};

class ParserErrorTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(ParserErrorTest, RejectsMalformedInput) {
  auto doc = ParseDocument(GetParam().text);
  EXPECT_FALSE(doc.ok()) << "input: " << GetParam().text;
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParserErrorTest,
    ::testing::Values(
        BadInput{"unclosed", "<a><b></a>"},
        BadInput{"bare_text", "hello"},
        BadInput{"two_roots", "<a/><b/>"},
        BadInput{"bad_entity", "<a>&unknown;</a>"},
        BadInput{"dup_attr", "<a x=\"1\" x=\"2\"/>"},
        BadInput{"unterminated_attr", "<a x=\"1/>"},
        BadInput{"lt_in_attr", "<a x=\"<\"/>"},
        BadInput{"unterminated_comment", "<a><!-- foo</a>"},
        BadInput{"empty", ""},
        BadInput{"unmatched_end", "</a>"},
        BadInput{"truncated_tag", "<a"},
        BadInput{"text_outside_root", "<a/>junk"}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      return info.param.name;
    });

TEST(SerializerTest, EscapesSpecialCharacters) {
  EXPECT_EQ(EscapeText("a<b&c>d"), "a&lt;b&amp;c&gt;d");
  EXPECT_EQ(EscapeAttribute("say \"hi\"\n"), "say &quot;hi&quot;&#10;");
}

TEST(SerializerTest, RoundTripsSimpleDocument) {
  const std::string input =
      "<bib><book year=\"1994\"><title>TCP/IP &amp; more</title>"
      "<empty/></book></bib>";
  auto doc = ParseDocument(input);
  ASSERT_TRUE(doc.ok());
  const std::string output = Serialize(*doc);
  auto doc2 = ParseDocument(output);
  ASSERT_TRUE(doc2.ok()) << doc2.status().ToString();
  EXPECT_EQ(Serialize(*doc2), output);
  EXPECT_EQ(output, input);
}

TEST(SerializerTest, IndentedOutputReparsesToSameStringValues) {
  auto doc = ParseDocument("<r><a><b>x</b></a><c>y</c></r>");
  ASSERT_TRUE(doc.ok());
  SerializeOptions options;
  options.indent = true;
  const std::string pretty = Serialize(*doc, options);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto doc2 = ParseDocument(pretty);
  ASSERT_TRUE(doc2.ok());
  EXPECT_EQ(doc2->StringValue(doc2->RootElement()), "xy");
}

TEST(SerializerTest, RoundTripPropertyOnRandomTrees) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    datagen::RandomTreeOptions options;
    options.seed = seed;
    options.num_elements = 80;
    auto doc = datagen::GenerateRandomTree(options);
    const std::string once = Serialize(*doc);
    auto reparsed = ParseDocument(once);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(Serialize(*reparsed), once) << "seed " << seed;
    EXPECT_EQ(reparsed->NodeCount(), doc->NodeCount()) << "seed " << seed;
  }
}

TEST(StreamParserTest, EmitsEventsInDocumentOrder) {
  StreamParser parser("<a x=\"1\"><b>t</b><c/></a>");
  std::vector<ParseEvent::Kind> kinds;
  std::vector<std::string> names;
  while (true) {
    auto ev = parser.Next();
    ASSERT_TRUE(ev.ok()) << ev.status().ToString();
    kinds.push_back(ev->kind);
    names.push_back(std::string(ev->name));
    if (ev->kind == ParseEvent::Kind::kEndDocument) break;
  }
  using K = ParseEvent::Kind;
  const std::vector<K> expected = {
      K::kStartElement, K::kStartElement, K::kText,       K::kEndElement,
      K::kStartElement, K::kEndElement,   K::kEndElement, K::kEndDocument};
  EXPECT_EQ(kinds, expected);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(names[4], "c");
}

TEST(StreamParserTest, AttributesAvailableAtStartElement) {
  StreamParser parser("<a x=\"1\" y=\"two &gt; one\"/>");
  auto ev = parser.Next();
  ASSERT_TRUE(ev.ok());
  ASSERT_EQ(parser.attributes().size(), 2u);
  EXPECT_EQ(parser.attributes()[0].name, "x");
  EXPECT_EQ(parser.attributes()[0].value, "1");
  EXPECT_EQ(parser.attributes()[1].value, "two > one");
}

TEST(StreamParserTest, ErrorsCarryLineAndColumn) {
  StreamParser parser("<a>\n<b></c>");
  (void)parser.Next();  // <a>
  (void)parser.Next();  // <b>
  auto ev = parser.Next();
  ASSERT_FALSE(ev.ok());
  EXPECT_NE(ev.status().message().find("line 2"), std::string::npos)
      << ev.status().ToString();
}

}  // namespace
}  // namespace xmlq::xml
