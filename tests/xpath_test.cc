#include <gtest/gtest.h>

#include "xmlq/xpath/compiler.h"
#include "xmlq/xpath/lexer.h"
#include "xmlq/xpath/nok_partition.h"
#include "xmlq/xpath/parser.h"

namespace xmlq::xpath {
namespace {

using algebra::Axis;
using algebra::CompareOp;

TEST(LexerTest, TokenizesOperatorsAndLiterals) {
  auto tokens = Tokenize("/a//b[@id = 'x'][n >= 4.5]");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  const std::vector<TokenKind> expected = {
      TokenKind::kSlash,    TokenKind::kName,     TokenKind::kDoubleSlash,
      TokenKind::kName,     TokenKind::kLBracket, TokenKind::kAt,
      TokenKind::kName,     TokenKind::kEq,       TokenKind::kString,
      TokenKind::kRBracket, TokenKind::kLBracket, TokenKind::kName,
      TokenKind::kGe,       TokenKind::kNumber,   TokenKind::kRBracket,
      TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
  EXPECT_EQ((*tokens)[8].text, "x");
  EXPECT_EQ((*tokens)[13].text, "4.5");
}

TEST(LexerTest, RejectsBadCharacters) {
  EXPECT_FALSE(Tokenize("/a[b % 2]").ok());
  EXPECT_FALSE(Tokenize("/a['unterminated]").ok());
  EXPECT_FALSE(Tokenize("/a[b ! c]").ok());
}

TEST(ParserTest, SimplePath) {
  auto path = ParsePath("/bib/book//title");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  ASSERT_EQ(path->steps.size(), 3u);
  EXPECT_EQ(path->steps[0].axis, Axis::kChild);
  EXPECT_EQ(path->steps[0].name, "bib");
  EXPECT_EQ(path->steps[2].axis, Axis::kDescendant);
  EXPECT_EQ(path->steps[2].name, "title");
}

TEST(ParserTest, AttributesWildcardsPredicates) {
  auto path = ParsePath("//book[@year = '1994'][price < 50]/*");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  ASSERT_EQ(path->steps.size(), 2u);
  const StepAst& book = path->steps[0];
  ASSERT_EQ(book.predicates.size(), 2u);
  EXPECT_TRUE(book.predicates[0].path[0].is_attribute);
  EXPECT_EQ(book.predicates[0].literal, "1994");
  EXPECT_FALSE(book.predicates[0].numeric);
  EXPECT_EQ(book.predicates[1].op, CompareOp::kLt);
  EXPECT_TRUE(book.predicates[1].numeric);
  EXPECT_EQ(path->steps[1].name, "*");
}

TEST(ParserTest, ConjunctionAndNestedPredicatePaths) {
  auto path = ParsePath("/a[b/c = 'x' and d]//e[. != 'y']");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  const StepAst& a = path->steps[0];
  ASSERT_EQ(a.predicates.size(), 2u);
  ASSERT_EQ(a.predicates[0].path.size(), 2u);
  EXPECT_EQ(a.predicates[0].path[1].name, "c");
  EXPECT_FALSE(a.predicates[1].has_comparison);  // existence of d
  const StepAst& e = path->steps[1];
  ASSERT_EQ(e.predicates.size(), 1u);
  EXPECT_TRUE(e.predicates[0].path.empty());  // '.' comparison
  EXPECT_EQ(e.predicates[0].op, CompareOp::kNe);
}

TEST(ParserTest, RejectsOutsideSubset) {
  EXPECT_EQ(ParsePath("/a[1]").status().code(), StatusCode::kUnsupported);
  EXPECT_EQ(ParsePath("/a[b or c]").status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(ParsePath("a/b").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParsePath("/").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParsePath("/a]").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParsePath("").status().code(), StatusCode::kParseError);
}

TEST(ParserTest, ExplicitAxisSyntax) {
  auto path = ParsePath(
      "/child::a/descendant::b/following-sibling::c/attribute::id");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  ASSERT_EQ(path->steps.size(), 4u);
  EXPECT_EQ(path->steps[0].axis, Axis::kChild);
  EXPECT_EQ(path->steps[1].axis, Axis::kDescendant);
  EXPECT_EQ(path->steps[2].axis, Axis::kFollowingSibling);
  EXPECT_EQ(path->steps[3].axis, Axis::kAttribute);
  EXPECT_TRUE(path->steps[3].is_attribute);
  EXPECT_EQ(ParsePath("/self::a").status().ok(), true);
  EXPECT_EQ(ParsePath("/ancestor::a").status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(ParsePath("//following-sibling::a").status().code(),
            StatusCode::kParseError);
}

TEST(CompilerTest, BuildsTwigFromPredicates) {
  auto path = ParsePath("/bib/book[author/last = 'Stevens']//title");
  ASSERT_TRUE(path.ok());
  auto graph = CompileToPattern(*path);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  // root, bib, book, author, last, title = 6 vertices.
  EXPECT_EQ(graph->VertexCount(), 6u);
  const auto out = graph->SoleOutput();
  EXPECT_EQ(graph->vertex(out).label, "title");
  EXPECT_EQ(graph->vertex(out).incoming_axis, Axis::kDescendant);
  // The comparison lands on `last`.
  bool found = false;
  for (algebra::VertexId v = 0; v < graph->VertexCount(); ++v) {
    if (graph->vertex(v).label == "last") {
      ASSERT_EQ(graph->vertex(v).predicates.size(), 1u);
      EXPECT_EQ(graph->vertex(v).predicates[0].literal, "Stevens");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CompilerTest, NavigationChainForSimplePaths) {
  auto path = ParsePath("/bib/book/title");
  ASSERT_TRUE(path.ok());
  auto chain = CompileToNavigationChain(*path, "d");
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ((*chain)->op, algebra::LogicalOp::kNavigate);
  // Structural predicates cannot be expressed as a chain.
  auto twig = ParsePath("/bib/book[author]");
  ASSERT_TRUE(twig.ok());
  EXPECT_EQ(CompileToNavigationChain(*twig, "d").status().code(),
            StatusCode::kUnsupported);
}

TEST(CompilerTest, CompilePathProducesTreePatternPlan) {
  auto plan = CompilePath("//book[price < 50]/title", "bib.xml");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->op, algebra::LogicalOp::kTreePattern);
  EXPECT_EQ((*plan)->children[0]->str, "bib.xml");
}

TEST(NokPartitionTest, ChildOnlyPathIsOnePart) {
  auto path = ParsePath("/bib/book/title");
  auto graph = CompileToPattern(*path);
  ASSERT_TRUE(graph.ok());
  const NokPartition partition = PartitionNok(*graph);
  ASSERT_EQ(partition.parts.size(), 1u);
  EXPECT_EQ(partition.parts[0].head, graph->root());
  EXPECT_EQ(partition.parts[0].vertices.size(), 4u);
}

TEST(NokPartitionTest, DescendantArcsCutParts) {
  auto path = ParsePath("/a/b//c/d[@x]//e");
  auto graph = CompileToPattern(*path);
  ASSERT_TRUE(graph.ok());
  const NokPartition partition = PartitionNok(*graph);
  // Parts: {root,a,b}, {c,d,@x}, {e}.
  ASSERT_EQ(partition.parts.size(), 3u);
  EXPECT_EQ(partition.parts[0].vertices.size(), 3u);
  EXPECT_EQ(partition.parts[1].vertices.size(), 3u);
  EXPECT_EQ(partition.parts[2].vertices.size(), 1u);
  // Seams: part1 hangs off b (in part0); part2 hangs off d (in part1).
  EXPECT_EQ(partition.parts[1].parent_part, 0);
  EXPECT_EQ(graph->vertex(partition.parts[1].attach_vertex).label, "b");
  EXPECT_EQ(partition.parts[2].parent_part, 1);
  EXPECT_EQ(graph->vertex(partition.parts[2].attach_vertex).label, "d");
  // part_of is consistent.
  for (size_t p = 0; p < partition.parts.size(); ++p) {
    for (auto v : partition.parts[p].vertices) {
      EXPECT_EQ(partition.part_of[v], static_cast<int>(p));
    }
  }
  const std::string rendered = partition.ToString(*graph);
  EXPECT_NE(rendered.find("part 1"), std::string::npos);
}

TEST(NokPartitionTest, LeadingDescendantSplitsFromRoot) {
  auto path = ParsePath("//book/title");
  auto graph = CompileToPattern(*path);
  ASSERT_TRUE(graph.ok());
  const NokPartition partition = PartitionNok(*graph);
  ASSERT_EQ(partition.parts.size(), 2u);
  EXPECT_EQ(partition.parts[0].vertices.size(), 1u);  // just the root
  EXPECT_EQ(graph->vertex(partition.parts[1].head).label, "book");
  EXPECT_EQ(partition.parts[1].vertices.size(), 2u);
}

}  // namespace
}  // namespace xmlq::xpath
