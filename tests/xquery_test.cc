#include <gtest/gtest.h>

#include "xmlq/xquery/parser.h"
#include "xmlq/xquery/schema_extract.h"
#include "xmlq/xquery/translate.h"

namespace xmlq::xquery {
namespace {

using algebra::LogicalOp;

ExprPtr Parse(std::string_view query) {
  auto ast = ParseQuery(query);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  return ast.ok() ? std::move(*ast) : std::make_unique<Expr>(ExprKind::kSequence);
}

TEST(XQueryParserTest, Literals) {
  EXPECT_EQ(Parse("42")->kind, ExprKind::kNumberLiteral);
  EXPECT_EQ(Parse("3.5")->number, 3.5);
  EXPECT_EQ(Parse("\"hi\"")->str, "hi");
  EXPECT_EQ(Parse("'it''s'")->str, "it's");
  EXPECT_EQ(Parse("$x")->kind, ExprKind::kVarRef);
}

TEST(XQueryParserTest, ArithmeticPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3).
  ExprPtr e = Parse("1 + 2 * 3");
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->binop, algebra::BinaryOp::kAdd);
  EXPECT_EQ(e->children[1]->binop, algebra::BinaryOp::kMul);
  ExprPtr m = Parse("6 div 2 mod 2");
  EXPECT_EQ(m->binop, algebra::BinaryOp::kMod);
}

TEST(XQueryParserTest, ComparisonAndLogic) {
  ExprPtr e = Parse("$a < 5 and $b = 'x' or $c");
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->binop, algebra::BinaryOp::kOr);
  EXPECT_EQ(e->children[0]->binop, algebra::BinaryOp::kAnd);
  EXPECT_EQ(Parse("$a ge 3")->binop, algebra::BinaryOp::kGe);
}

TEST(XQueryParserTest, Paths) {
  ExprPtr e = Parse("doc(\"bib.xml\")/bib/book//title/@lang");
  ASSERT_EQ(e->kind, ExprKind::kPath);
  ASSERT_EQ(e->children.size(), 1u);  // the doc() base
  EXPECT_EQ(e->children[0]->kind, ExprKind::kFunctionCall);
  ASSERT_EQ(e->steps.size(), 4u);
  EXPECT_EQ(e->steps[1].name, "book");
  EXPECT_EQ(e->steps[2].axis, algebra::Axis::kDescendant);
  EXPECT_TRUE(e->steps[3].is_attribute);

  ExprPtr abs = Parse("//book/title");
  EXPECT_TRUE(abs->children.empty());  // absolute: default document
  EXPECT_EQ(abs->steps.size(), 2u);
}

TEST(XQueryParserTest, Flwor) {
  ExprPtr e = Parse(
      "for $b in //book, $a in $b/author "
      "let $t := $b/title "
      "where $b/price > 50 "
      "order by $t descending "
      "return $t");
  ASSERT_EQ(e->kind, ExprKind::kFlwor);
  ASSERT_EQ(e->clauses.size(), 5u);
  EXPECT_EQ(e->clauses[0].kind, ClauseAst::Kind::kFor);
  EXPECT_EQ(e->clauses[0].var, "b");
  EXPECT_EQ(e->clauses[1].kind, ClauseAst::Kind::kFor);
  EXPECT_EQ(e->clauses[1].var, "a");
  EXPECT_EQ(e->clauses[2].kind, ClauseAst::Kind::kLet);
  EXPECT_EQ(e->clauses[3].kind, ClauseAst::Kind::kWhere);
  EXPECT_EQ(e->clauses[4].kind, ClauseAst::Kind::kOrderBy);
  EXPECT_TRUE(e->clauses[4].descending);
  // children: 5 clause exprs + return.
  EXPECT_EQ(e->children.size(), 6u);
}

TEST(XQueryParserTest, Constructors) {
  ExprPtr e = Parse(
      "<results count=\"{count($x)}\" kind=\"all\">"
      "text {$x} <nested>{1 + 2}</nested> tail</results>");
  ASSERT_EQ(e->kind, ExprKind::kConstructor);
  EXPECT_EQ(e->str, "results");
  ASSERT_EQ(e->attrs.size(), 2u);
  EXPECT_NE(e->attrs[0].expr_child, AttrAst::kNoChild);
  EXPECT_EQ(e->attrs[1].literal, "all");
  // Content: "text ", {$x}, <nested>, " tail".
  ASSERT_EQ(e->content.size(), 4u);
  EXPECT_EQ(e->content[0].text, "text ");
  EXPECT_NE(e->content[1].expr_child, ContentAst::kNoChild);
  EXPECT_EQ(e->children[e->content[2].expr_child]->kind,
            ExprKind::kConstructor);
}

TEST(XQueryParserTest, IfAndComments) {
  ExprPtr e = Parse("if ($x > 1) then 'big' else 'small' (: trailing :)");
  ASSERT_EQ(e->kind, ExprKind::kIf);
  EXPECT_EQ(e->children.size(), 3u);
  EXPECT_EQ(Parse("(: a (: nested :) comment :) 7")->number, 7.0);
}

TEST(XQueryParserTest, EscapedBracesInContent) {
  ExprPtr e = Parse("<a>{{literal}}</a>");
  ASSERT_EQ(e->content.size(), 1u);
  EXPECT_EQ(e->content[0].text, "{literal}");
}

TEST(XQueryParserTest, RejectsOutsideSubset) {
  EXPECT_EQ(ParseQuery("declare function f() { 1 }; f()").status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(ParseQuery("for $x in //a[1] return $x").status().code(),
            StatusCode::kUnsupported);  // positional predicate
  EXPECT_FALSE(ParseQuery("for $x return 1").ok());
  EXPECT_FALSE(ParseQuery("title/text").ok());  // no context
  EXPECT_FALSE(ParseQuery("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseQuery("1 +").ok());
  EXPECT_FALSE(ParseQuery("").ok());
}

TEST(XQueryParserTest, PathPredicatesDelegateToXPathGrammar) {
  ExprPtr e = Parse("doc(\"d\")//book[author/last = 'Stevens'][@year]/title");
  ASSERT_EQ(e->kind, ExprKind::kPath);
  ASSERT_EQ(e->steps.size(), 2u);
  const PathStep& book = e->steps[0];
  ASSERT_EQ(book.predicates.size(), 2u);
  ASSERT_EQ(book.predicates[0].path.size(), 2u);
  EXPECT_EQ(book.predicates[0].literal, "Stevens");
  EXPECT_TRUE(book.predicates[1].path[0].is_attribute);
  EXPECT_FALSE(book.predicates[1].has_comparison);
  // Nested brackets and quoted ']' survive extraction.
  ExprPtr nested = Parse("$v/a[b[c = ']']]");
  ASSERT_EQ(nested->steps.size(), 1u);
  ASSERT_EQ(nested->steps[0].predicates.size(), 1u);
  EXPECT_EQ(nested->steps[0].predicates[0].path[0].predicates.size(), 1u);
}

TEST(TranslateTest, PathPredicatesFoldIntoPattern) {
  TranslateOptions options;
  options.default_document = "d";
  auto plan = CompileQuery("//book[price < 50]/title", options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Rewrites graft the filter and fold the chain into one TreePattern.
  ASSERT_EQ((*plan)->op, LogicalOp::kTreePattern);
  bool found_pred = false;
  for (algebra::VertexId v = 0; v < (*plan)->pattern->VertexCount(); ++v) {
    if (!(*plan)->pattern->vertex(v).predicates.empty()) found_pred = true;
  }
  EXPECT_TRUE(found_pred);
}

TEST(TranslateTest, VariableRootedPredicateStaysAsFilter) {
  TranslateOptions options;
  auto plan = CompileQuery(
      "for $b in //book return $b/author[last = 'Stevens']", options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // The return expression filters per node (no document scan to fold into).
  const auto& ret = *(*plan)->children.back();
  EXPECT_EQ(ret.op, LogicalOp::kPatternFilter);
  EXPECT_EQ(ret.children[0]->op, LogicalOp::kNavigate);
}

TEST(TranslateTest, PathBecomesTreePatternViaRewrites) {
  TranslateOptions options;
  options.default_document = "bib.xml";
  auto plan = CompileQuery("//book/title", options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->op, LogicalOp::kTreePattern);
  EXPECT_EQ((*plan)->children[0]->str, "bib.xml");
  EXPECT_EQ((*plan)->pattern->VertexCount(), 3u);
}

TEST(TranslateTest, RewritesCanBeDisabled) {
  TranslateOptions options;
  options.default_document = "d";
  options.apply_rewrites = false;
  auto plan = CompileQuery("//book/title", options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->op, LogicalOp::kNavigate);
}

TEST(TranslateTest, FlworShape) {
  TranslateOptions options;
  options.default_document = "d";
  auto plan = CompileQuery(
      "for $b in //book where $b/price > 50 return $b/title", options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ((*plan)->op, LogicalOp::kFlwor);
  ASSERT_EQ((*plan)->clauses.size(), 2u);
  // The for-binding expression folded into a TreePattern.
  const auto& for_expr =
      *(*plan)->children[(*plan)->clauses[0].expr_child];
  EXPECT_EQ(for_expr.op, LogicalOp::kTreePattern);
  // The return expression navigates from $b.
  const auto& ret = *(*plan)->children.back();
  EXPECT_EQ(ret.op, LogicalOp::kNavigate);
  EXPECT_EQ(ret.children[0]->op, LogicalOp::kVarRef);
}

TEST(TranslateTest, ConstructorBecomesGammaWithInlinedSchema) {
  TranslateOptions options;
  auto plan = CompileQuery(
      "<result id=\"{$i}\"><name>{$n}</name><tag/></result>", options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ((*plan)->op, LogicalOp::kConstruct);
  ASSERT_NE((*plan)->schema, nullptr);
  // Nested <name> is inlined into one schema tree (no nested γ).
  EXPECT_EQ((*plan)->schema->NodeCount(), 4u);  // result, name, {$n}, tag
  EXPECT_EQ((*plan)->children.size(), 2u);      // $i and $n slots
}

TEST(SchemaExtractTest, Figure1SchemaTree) {
  // The paper's Fig. 1(a) query.
  ExprPtr ast = Parse(
      "<results>{"
      " for $b in doc(\"bib.xml\")/bib/book"
      " let $t := $b/title"
      " let $a := $b/author"
      " return <result>{$t} {$a}</result>"
      "}</results>");
  auto extracted = ExtractSchemaTree(*ast);
  ASSERT_TRUE(extracted.ok()) << extracted.status().ToString();
  const std::string rendered = extracted->tree.ToString();
  // Fig. 1(b): results -> result (with ϕ arc) -> two placeholders.
  EXPECT_NE(rendered.find("<results>"), std::string::npos);
  EXPECT_NE(rendered.find("<result>"), std::string::npos);
  EXPECT_NE(rendered.find("phi="), std::string::npos);
  // ϕ is described as the comprehension over $b, $t, $a.
  bool found_phi = false;
  for (const std::string& desc : extracted->slot_descriptions) {
    if (desc.find("$b <- ") != std::string::npos &&
        desc.find("$t := ") != std::string::npos) {
      found_phi = true;
    }
  }
  EXPECT_TRUE(found_phi);
  EXPECT_EQ(extracted->tree.NodeCount(), 4u);
}

TEST(SchemaExtractTest, RenderExprRoundImpression) {
  ExprPtr ast = Parse("for $x in //a order by $x return count($x)");
  const std::string rendered = RenderExpr(*ast);
  EXPECT_NE(rendered.find("$x <- "), std::string::npos);
  EXPECT_NE(rendered.find("order by"), std::string::npos);
}

}  // namespace
}  // namespace xmlq::xquery
