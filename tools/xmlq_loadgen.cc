// xmlq_loadgen — the wire-level load generator behind experiment R6:
// N client threads fire queries at an xmlq_serve instance, honor
// retry-after hints with jittered exponential backoff, and report QPS plus
// latency percentiles over the *admitted* (responded) requests.
//
//   xmlq_loadgen --port 7227 --clients 8 --duration-s 10
//   xmlq_loadgen --port 7227 --query '//book/title' --clients 4

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "xmlq/base/status.h"
#include "xmlq/net/client.h"

namespace {

struct WorkerReport {
  std::vector<double> latencies_micros;  // responded requests only
  uint64_t responses = 0;
  uint64_t overloads = 0;     // gave up after retries
  uint64_t retries = 0;       // extra attempts spent on backoff
  uint64_t conn_errors = 0;
  uint64_t reconnects = 0;
  uint64_t backoff_micros = 0;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port N] [--clients N]\n"
               "          [--duration-s N] [--query Q] [--max-attempts N]\n"
               "          [--repeat-mix N] [--parallelism N]\n"
               "          [--once Q] [--stats] [--promote]\n"
               "  --repeat-mix N  instead of one fixed query, draw each\n"
               "                  request Zipf-style from N value-predicate\n"
               "                  variants (exercises the server plan cache)\n"
               "  --parallelism N intra-query worker lanes per request\n"
               "                  (1 = serial, 0 = all server hw threads)\n"
               "  --once Q        send Q once, print the raw response body\n"
               "                  to stdout and exit by status (scripts\n"
               "                  byte-compare primary vs follower answers)\n"
               "  --stats         fetch and print the server's stats body\n"
               "                  once, then exit (a follower's body carries\n"
               "                  epoch= and the self-heal counters)\n"
               "  --promote       send the kPromote admin frame (coordinated\n"
               "                  failover: the server stops replicating,\n"
               "                  bumps+persists its epoch and lifts follower\n"
               "                  mode), print the ack body, exit by status\n",
               argv0);
  return 2;
}

/// The --once / --stats / --promote one-shot path: one request, raw body to
/// stdout, exit 0 only on an OK response. Retries overloads (a follower
/// shedding stale reads answers retryably) but not transport errors.
int RunOnce(const std::string& host, uint16_t port, const std::string& query,
            bool stats_mode, bool promote_mode, uint32_t max_attempts) {
  auto client = xmlq::net::Client::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  if (stats_mode || promote_mode) {
    const auto response = promote_mode ? client->Promote() : client->Stats();
    if (!response.ok()) {
      std::fprintf(stderr, "%s: %s\n", promote_mode ? "promote" : "stats",
                   response.status().ToString().c_str());
      return 1;
    }
    std::fwrite(response->body.data(), 1, response->body.size(), stdout);
    if (!response->body.empty() && response->body.back() != '\n') {
      std::fputc('\n', stdout);
    }
    return response->code == xmlq::StatusCode::kOk ? 0 : 1;
  }
  std::mt19937_64 rng(0x9E3779B97F4A7C15ull);
  xmlq::net::RetryPolicy policy;
  policy.max_attempts = max_attempts;
  const xmlq::net::CallResult call =
      client->QueryWithRetry(query, policy, &rng);
  if (call.outcome != xmlq::net::CallOutcome::kResponse ||
      call.response.code != xmlq::StatusCode::kOk) {
    std::fprintf(stderr, "query failed (%s): %s\n",
                 std::string(xmlq::net::CallOutcomeName(call.outcome)).c_str(),
                 call.outcome == xmlq::net::CallOutcome::kConnectionError
                     ? call.transport_error.ToString().c_str()
                     : call.response.body.c_str());
    return 1;
  }
  std::fwrite(call.response.body.data(), 1, call.response.body.size(),
              stdout);
  return 0;
}

/// The --repeat-mix workload: N variants of the same query shape differing
/// only in a comparison literal, so a plan cache keyed on the normalized
/// (bind-slot) text serves all of them from one template. Selection is
/// Zipf-like (weight 1/rank): a few hot variants dominate, a long tail
/// stays cold — the repeat-heavy mix real ad-hoc traffic shows.
std::vector<std::string> RepeatMix(uint32_t variants) {
  std::vector<std::string> queries;
  queries.reserve(variants);
  for (uint32_t v = 0; v < variants; ++v) {
    queries.push_back("//book[@year = \"" + std::to_string(1985 + v % 20) +
                      "\"]/title");
  }
  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7227;
  uint32_t clients = 4;
  uint32_t duration_s = 10;
  uint32_t max_attempts = 6;
  uint32_t repeat_mix = 0;
  uint32_t parallelism = 1;
  std::string query = "//book/title";
  std::string once;
  bool stats_mode = false;
  bool promote_mode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = next())) host = v;
    else if (arg == "--port" && (v = next()))
      port = static_cast<uint16_t>(std::atoi(v));
    else if (arg == "--clients" && (v = next()))
      clients = static_cast<uint32_t>(std::atoi(v));
    else if (arg == "--duration-s" && (v = next()))
      duration_s = static_cast<uint32_t>(std::atoi(v));
    else if (arg == "--max-attempts" && (v = next()))
      max_attempts = static_cast<uint32_t>(std::atoi(v));
    else if (arg == "--repeat-mix" && (v = next()))
      repeat_mix = static_cast<uint32_t>(std::atoi(v));
    else if (arg == "--parallelism" && (v = next()))
      parallelism = static_cast<uint32_t>(std::atoi(v));
    else if (arg == "--query" && (v = next())) query = v;
    else if (arg == "--once" && (v = next())) once = v;
    else if (arg == "--stats") stats_mode = true;
    else if (arg == "--promote") promote_mode = true;
    else
      return Usage(argv[0]);
  }

  if (!once.empty() || stats_mode || promote_mode) {
    return RunOnce(host, port, once, stats_mode, promote_mode, max_attempts);
  }

  const std::vector<std::string> mix =
      repeat_mix > 0 ? RepeatMix(repeat_mix) : std::vector<std::string>{query};
  std::vector<double> mix_weights(mix.size());
  for (size_t q = 0; q < mix.size(); ++q) {
    mix_weights[q] = 1.0 / static_cast<double>(q + 1);  // Zipf s=1
  }

  std::atomic<bool> stop{false};
  std::vector<WorkerReport> reports(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto start = std::chrono::steady_clock::now();

  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      WorkerReport& report = reports[c];
      std::mt19937_64 rng(0x9E3779B97F4A7C15ull ^ c);
      xmlq::net::RetryPolicy policy;
      policy.max_attempts = max_attempts;
      std::discrete_distribution<size_t> pick(mix_weights.begin(),
                                              mix_weights.end());
      auto client = xmlq::net::Client::Connect(host, port);
      while (!stop.load(std::memory_order_acquire)) {
        if (!client.ok()) {
          ++report.conn_errors;
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          client = xmlq::net::Client::Connect(host, port);
          if (client.ok()) ++report.reconnects;
          continue;
        }
        const auto begin = std::chrono::steady_clock::now();
        const xmlq::net::CallResult call =
            client->QueryWithRetry(mix[pick(rng)], policy, &rng, parallelism);
        const double micros =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - begin)
                .count();
        report.retries += call.attempts - 1;
        report.backoff_micros += call.backoff_micros;
        switch (call.outcome) {
          case xmlq::net::CallOutcome::kResponse:
            ++report.responses;
            report.latencies_micros.push_back(micros);
            break;
          case xmlq::net::CallOutcome::kOverload:
            ++report.overloads;
            break;
          case xmlq::net::CallOutcome::kConnectionError:
            ++report.conn_errors;
            // Reconnect on the next iteration.
            client = xmlq::net::Client::Connect(host, port);
            if (client.ok()) ++report.reconnects;
            break;
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(duration_s));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();

  WorkerReport total;
  for (const WorkerReport& r : reports) {
    total.responses += r.responses;
    total.overloads += r.overloads;
    total.retries += r.retries;
    total.conn_errors += r.conn_errors;
    total.reconnects += r.reconnects;
    total.backoff_micros += r.backoff_micros;
    total.latencies_micros.insert(total.latencies_micros.end(),
                                  r.latencies_micros.begin(),
                                  r.latencies_micros.end());
  }
  std::sort(total.latencies_micros.begin(), total.latencies_micros.end());

  if (repeat_mix > 0) {
    std::printf("clients=%u duration=%.1fs repeat-mix=%u variants\n", clients,
                elapsed_s, repeat_mix);
  } else {
    std::printf("clients=%u duration=%.1fs query=%s\n", clients, elapsed_s,
                query.c_str());
  }
  std::printf("responses=%llu overloads=%llu retries=%llu "
              "conn_errors=%llu reconnects=%llu\n",
              static_cast<unsigned long long>(total.responses),
              static_cast<unsigned long long>(total.overloads),
              static_cast<unsigned long long>(total.retries),
              static_cast<unsigned long long>(total.conn_errors),
              static_cast<unsigned long long>(total.reconnects));
  std::printf("qps=%.1f backoff_total=%.1fms\n",
              static_cast<double>(total.responses) / elapsed_s,
              static_cast<double>(total.backoff_micros) / 1000.0);
  std::printf("latency_micros p50=%.0f p95=%.0f p99=%.0f max=%.0f\n",
              Percentile(total.latencies_micros, 0.50),
              Percentile(total.latencies_micros, 0.95),
              Percentile(total.latencies_micros, 0.99),
              total.latencies_micros.empty()
                  ? 0.0
                  : total.latencies_micros.back());
  // Smoke-test contract: some traffic got through and nothing hard-failed.
  return total.responses > 0 ? 0 : 1;
}
