// xmlq_serve — the standalone serving binary: an api::Database behind the
// epoll front-end (net::Server), with graceful drain on SIGTERM/SIGINT.
//
//   xmlq_serve --port 7227 --doc bib=bib.xml
//   xmlq_serve --gen-bib 500 --max-concurrent 8 --max-queue 32
//
// With no --doc/--store/--gen-bib, serves a generated 200-book bibliography
// so a fresh checkout can smoke-test the wire path with zero setup.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "xmlq/api/database.h"
#include "xmlq/datagen/bib_gen.h"
#include "xmlq/net/server.h"
#include "xmlq/repl/replication.h"

namespace {

xmlq::net::Server* g_server = nullptr;

void HandleSignal(int) {
  // RequestDrain is async-signal-safe (atomic store + eventfd write).
  if (g_server != nullptr) g_server->RequestDrain();
}

/// SIGUSR1 = coordinated failover (DESIGN.md §14): promote this follower to
/// primary. The handler only sets a flag — promotion fsyncs, so the real
/// work runs on the watcher thread (and through the same mutex the wire
/// kPromote frame uses).
std::atomic<bool> g_promote_requested{false};

void HandlePromote(int) { g_promote_requested.store(true); }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --host H                bind address (default 127.0.0.1)\n"
      "  --port N                TCP port; 0 = ephemeral (default 7227)\n"
      "  --port-file PATH        write the bound port to PATH (for scripts\n"
      "                          using --port 0)\n"
      "  --workers N             query worker threads (default 4)\n"
      "  --doc NAME=FILE         load an XML file (repeatable)\n"
      "  --store DIR             attach a durable store directory\n"
      "  --gen-bib N             serve a generated bibliography of N books\n"
      "  --max-concurrent N      admission: concurrent queries (0 = off)\n"
      "  --max-queue N           admission: wait-queue length\n"
      "  --queue-deadline-ms N   admission: shed after waiting this long\n"
      "  --idle-timeout-ms N     close idle connections (default 60000)\n"
      "  --max-inflight N        per-connection in-flight cap (default 16)\n"
      "  --drain-deadline-ms N   graceful-drain budget (default 5000)\n"
      "  --parallelism N         intra-query worker lanes for plain query\n"
      "                          frames (1 = serial, 0 = all hw threads)\n"
      "  --persist               persist loaded/generated docs into --store\n"
      "                          (gives a primary shippable generations)\n"
      "  --follow HOST:PORT      run as a read-only follower replicating\n"
      "                          from the primary at HOST:PORT (needs\n"
      "                          --store for the local replica)\n"
      "  --max-lag N             follower: shed reads when trailing the\n"
      "                          primary by more than N generations (0 =\n"
      "                          serve however stale; default 0)\n"
      "  --max-stale-ms N        follower: shed reads when the last\n"
      "                          heartbeat is older than this (0 = no\n"
      "                          bound; default 0)\n"
      "signals: SIGTERM/SIGINT drain; SIGUSR1 promotes a --store server to\n"
      "primary (stops replication, bumps+persists the epoch, lifts follower\n"
      "mode) — same as the wire kPromote frame (xmlq_loadgen --promote)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  xmlq::net::ServerConfig config;
  config.port = 7227;
  xmlq::exec::AdmissionConfig admission;
  std::string store_dir;
  std::string port_file;
  std::string follow;  // "host:port" of the primary; empty = not a follower
  bool persist = false;
  xmlq::repl::ReplicationConfig repl_config;
  int gen_bib = 0;
  std::vector<std::pair<std::string, std::string>> docs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = next())) config.host = v;
    else if (arg == "--port" && (v = next()))
      config.port = static_cast<uint16_t>(std::atoi(v));
    else if (arg == "--port-file" && (v = next())) port_file = v;
    else if (arg == "--workers" && (v = next()))
      config.workers = static_cast<uint32_t>(std::atoi(v));
    else if (arg == "--doc" && (v = next())) {
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr) return Usage(argv[0]);
      docs.emplace_back(std::string(v, eq), std::string(eq + 1));
    } else if (arg == "--store" && (v = next())) store_dir = v;
    else if (arg == "--gen-bib" && (v = next())) gen_bib = std::atoi(v);
    else if (arg == "--max-concurrent" && (v = next()))
      admission.max_concurrent = static_cast<uint32_t>(std::atoi(v));
    else if (arg == "--max-queue" && (v = next()))
      admission.max_queue = static_cast<uint32_t>(std::atoi(v));
    else if (arg == "--queue-deadline-ms" && (v = next()))
      admission.queue_deadline_micros = std::strtoull(v, nullptr, 10) * 1000;
    else if (arg == "--idle-timeout-ms" && (v = next()))
      config.limits.idle_timeout_micros =
          std::strtoull(v, nullptr, 10) * 1000;
    else if (arg == "--max-inflight" && (v = next()))
      config.limits.max_inflight = static_cast<uint32_t>(std::atoi(v));
    else if (arg == "--drain-deadline-ms" && (v = next()))
      config.drain_deadline_micros = std::strtoull(v, nullptr, 10) * 1000;
    else if (arg == "--parallelism" && (v = next()))
      config.parallelism = static_cast<uint32_t>(std::atoi(v));
    else if (arg == "--persist") persist = true;
    else if (arg == "--follow" && (v = next())) follow = v;
    else if (arg == "--max-lag" && (v = next()))
      repl_config.gate.max_generation_lag = std::strtoull(v, nullptr, 10);
    else if (arg == "--max-stale-ms" && (v = next()))
      repl_config.gate.max_heartbeat_age_micros =
          std::strtoull(v, nullptr, 10) * 1000;
    else
      return Usage(argv[0]);
  }

  if (!follow.empty()) {
    const size_t colon = follow.rfind(':');
    if (colon == std::string::npos || store_dir.empty()) {
      std::fprintf(stderr,
                   "--follow needs HOST:PORT and a --store directory\n");
      return Usage(argv[0]);
    }
    repl_config.host = follow.substr(0, colon);
    repl_config.port =
        static_cast<uint16_t>(std::atoi(follow.c_str() + colon + 1));
    repl_config.store_dir = store_dir;
  }

  xmlq::api::Database db;
  if (!store_dir.empty()) {
    auto report = db.Attach(store_dir);
    if (!report.ok()) {
      std::fprintf(stderr, "attach %s: %s\n", store_dir.c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "%s", report->ToString().c_str());
  }
  for (const auto& [name, path] : docs) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const xmlq::Status status = db.LoadDocument(name, text.str());
    if (!status.ok()) {
      std::fprintf(stderr, "load %s: %s\n", path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded %s from %s\n", name.c_str(), path.c_str());
  }
  if (docs.empty() && store_dir.empty() && follow.empty()) {
    if (gen_bib <= 0) gen_bib = 200;
  }
  if (gen_bib > 0) {
    xmlq::datagen::BibOptions options;
    options.num_books = static_cast<size_t>(gen_bib);
    const xmlq::Status status = db.RegisterDocument(
        "bib.xml", xmlq::datagen::GenerateBibliography(options));
    if (!status.ok()) {
      std::fprintf(stderr, "gen-bib: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "serving generated bib.xml (%d books)\n", gen_bib);
  }
  if (admission.max_concurrent != 0) db.SetAdmission(admission);

  if (persist && !store_dir.empty() && follow.empty()) {
    if (gen_bib > 0) docs.emplace_back("bib.xml", "(generated)");
    for (const auto& [name, path] : docs) {
      const xmlq::Status status = db.Persist(name);
      if (!status.ok()) {
        std::fprintf(stderr, "persist %s: %s\n", name.c_str(),
                     status.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "persisted %s\n", name.c_str());
    }
  }

  std::unique_ptr<xmlq::repl::ReplicationClient> repl;
  if (!follow.empty()) {
    repl = std::make_unique<xmlq::repl::ReplicationClient>(&db, repl_config);
    const xmlq::Status status = repl->Start();
    if (!status.ok()) {
      std::fprintf(stderr, "follow %s: %s\n", follow.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    config.extra_stats = [&repl] { return repl->stats().ToString(); };
    std::fprintf(stderr, "following %s (store %s)\n", follow.c_str(),
                 store_dir.c_str());
  }

  // Coordinated failover (DESIGN.md §14): one promotion routine serves both
  // the wire kPromote frame and SIGUSR1. Order matters — the replication
  // client stops *first* so no shipment from the old primary can apply
  // concurrently with (or after) the epoch bump.
  std::mutex promote_mu;
  auto promote_now = [&db, &repl, &promote_mu]() -> xmlq::Result<uint64_t> {
    std::lock_guard<std::mutex> lock(promote_mu);
    if (repl != nullptr) repl->Stop();
    return db.Promote();
  };
  if (!store_dir.empty()) config.on_promote = promote_now;

  xmlq::net::Server server(&db, config);
  const xmlq::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
    return 1;
  }
  g_server = &server;
  (void)signal(SIGTERM, HandleSignal);
  (void)signal(SIGINT, HandleSignal);
  (void)signal(SIGUSR1, HandlePromote);
  (void)signal(SIGPIPE, SIG_IGN);
  std::atomic<bool> watcher_stop{false};
  std::thread promote_watcher([&] {
    while (!watcher_stop.load(std::memory_order_acquire)) {
      if (g_promote_requested.exchange(false)) {
        auto epoch = promote_now();
        if (epoch.ok()) {
          std::fprintf(stderr, "promoted; epoch=%llu\n",
                       static_cast<unsigned long long>(*epoch));
        } else {
          std::fprintf(stderr, "promote: %s\n",
                       epoch.status().ToString().c_str());
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  std::fprintf(stderr, "xmlq_serve listening on %s:%u (workers=%u)\n",
               config.host.c_str(), server.port(), config.workers);
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << "\n";
  }

  const xmlq::Status exit_status = server.Wait();
  watcher_stop.store(true, std::memory_order_release);
  promote_watcher.join();
  if (repl != nullptr) {
    repl->Stop();
    std::fprintf(stderr, "replication stopped:\n%s",
                 repl->stats().ToString().c_str());
  }
  const xmlq::net::ServerStats stats = server.stats();
  std::fprintf(stderr, "drained; final counters:\n%s",
               stats.ToString().c_str());
  if (!exit_status.ok()) {
    std::fprintf(stderr, "serve loop: %s\n", exit_status.ToString().c_str());
    return 1;
  }
  return 0;
}
